#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, formatting.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== bench --quick --check =="
cargo run --release -p paqoc-bench --bin bench -- --quick --check \
    --out target/BENCH_pipeline_quick.json

echo "== report compare: quick run vs committed baseline =="
# Hard-gates the deterministic columns (counts, ESP, latency) of the
# quick subset against the repo-root baseline; wall times are
# informational only (--counts-only). Regenerate the baseline with:
#   cargo run --release -p paqoc-bench --bin bench -- --check
cargo run --release -p paqoc-bench --bin report -- compare \
    target/BENCH_pipeline_quick.json BENCH_pipeline.json --counts-only

echo "== store corruption-injection suite =="
cargo test -q -p paqoc-store --test corruption

echo "== persistent store end-to-end (cold -> warm) =="
cargo test -q --test pulse_store

echo "== cross-process store contention (one writer, SIGKILL recovery) =="
cargo test -q -p paqoc-store --test contention

echo "== bench cold -> warm against a fresh pulse store =="
PULSE_DB="target/verify_pulse_store.db"
rm -f "$PULSE_DB" "$PULSE_DB.lock"
cargo run --release -p paqoc-bench --bin bench -- --quick \
    --out target/BENCH_pipeline_cold.json --pulse-db "$PULSE_DB"
cargo run --release -p paqoc-bench --bin bench -- --quick --check \
    --out target/BENCH_pipeline_warm.json --pulse-db "$PULSE_DB" --expect-warm

echo "== paqoc-store verify on the cold->warm store =="
cargo run --release -p paqoc-store --bin paqoc-store -- verify "$PULSE_DB"

echo "== executor determinism: 1-thread vs 4-thread stable dumps must be byte-identical =="
# No --pulse-db here: a pooled store lets concurrent compiles trade
# permutation-equivalent entries, which is legal cache reuse but
# schedule-dependent; the determinism contract is per-table.
PAQOC_THREADS=1 cargo run --release -p paqoc-bench --bin bench -- --quick \
    --out target/BENCH_pipeline_t1.json --stable-dump target/BENCH_stable_t1.json
PAQOC_THREADS=4 cargo run --release -p paqoc-bench --bin bench -- --quick --check \
    --out target/BENCH_pipeline_t4.json --stable-dump target/BENCH_stable_t4.json
cmp target/BENCH_stable_t1.json target/BENCH_stable_t4.json
echo "stable dumps identical"

# The wall-clock speedup gate only means something with real cores
# under it; CI containers with 1-2 CPUs run the determinism half only.
if [ "$(nproc)" -ge 4 ]; then
    echo "== executor speedup gate (>= 2x overlap on $(nproc) cores) =="
    cargo run --release -p paqoc-bench --bin bench -- \
        --out target/BENCH_pipeline_speedup.json --threads 4 --min-speedup 2.0
else
    echo "== executor speedup gate skipped ($(nproc) core(s) < 4) =="
fi

echo "== kernel-probe overhead gate (quick suite, probes on vs off) =="
cargo run --release -p paqoc-bench --bin probe_overhead

echo "== report hotspots / flame smoke over a kernel-probed trace =="
# A quick analytic batch compile still drives the mathkit kernels (the
# Weyl-invariant matmuls and eigensolves inside the latency model), so
# the trace must yield a non-empty hotspot ranking and folded stacks.
PAQOC_TRACE=target/verify_kernels.jsonl PAQOC_KERNEL_PROBES=1 \
    cargo run --release -p paqoc-bench --bin profile -- bv m0 --batch > /dev/null
cargo run --release -p paqoc-bench --bin report -- hotspots \
    target/verify_kernels.jsonl | tee target/verify_hotspots.txt
grep -q "mathkit.matmul" target/verify_hotspots.txt
grep -q "mathkit.eig" target/verify_hotspots.txt
cargo run --release -p paqoc-bench --bin report -- flame \
    target/verify_kernels.jsonl > target/verify_flame.txt
grep -q "mathkit.matmul" target/verify_flame.txt
echo "kernel trace smoke OK"

echo "== OpenPulse export smoke: one benchmark per backend, reimport-checked =="
# The exporter re-imports its own output and diffs sample-by-sample, so
# a pass here certifies the wire format end to end on every backend.
cargo build --release -p paqoc-backend
for BK in transmon-grid heavy-hex tunable-coupler; do
    ./target/release/paqoc-export mod5d2_64 --backend "$BK" \
        --reimport-check --out "target/verify_export_$BK.json"
done
echo "export smoke OK"

echo "== heavy-hex bench cold -> warm against a fresh namespaced store =="
# Same cold->warm contract as transmon-grid above, but through the
# namespaced (0xB5-tagged) fingerprint path of a snapshot backend.
HH_DB="target/verify_hh_store.db"
rm -f "$HH_DB" "$HH_DB.lock"
cargo run --release -p paqoc-bench --bin bench -- --quick \
    --backend heavy-hex --out target/BENCH_hh_cold.json --pulse-db "$HH_DB"
cargo run --release -p paqoc-bench --bin bench -- --quick \
    --backend heavy-hex --out target/BENCH_hh_warm.json --pulse-db "$HH_DB" \
    --expect-warm
cargo run --release -p paqoc-store --bin paqoc-store -- verify "$HH_DB"

echo "== paqoc-serve smoke: UDS daemon, replay load, shed + drain gates =="
# A resident daemon on a unix socket with a deliberately tiny queue and
# an injected per-pulse stall: the replay must see real answers AND real
# sheds, p99 must stay sane, SIGTERM must drain to exit 0, and the
# synced store must pass the paqoc-store verifier. The root release
# build does not build dependency-crate binaries, so build them here.
cargo build --release -p paqoc-serve
SERVE_SOCK="target/verify_serve.sock"
SERVE_DB="target/verify_serve_store.db"
SERVE_LOG="target/verify_serve.log"
rm -f "$SERVE_SOCK" "$SERVE_DB" "$SERVE_DB.lock"
./target/release/paqoc-serve \
    --uds "$SERVE_SOCK" --pulse-db "$SERVE_DB" --workers 2 \
    --queue-cap 2 --tenant-cap 2 --chaos-stall-ms 10 > "$SERVE_LOG" &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do [ -S "$SERVE_SOCK" ] && break; sleep 0.1; done
[ -S "$SERVE_SOCK" ]
./target/release/paqoc-load "unix:$SERVE_SOCK" replay \
    --requests 48 --concurrency 8 --tenants 3 \
    --expect-answers --expect-sheds --max-p99-ms 60000
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
grep -q '"event":"drained"' "$SERVE_LOG"
cargo run --release -p paqoc-store --bin paqoc-store -- verify "$SERVE_DB"
echo "serve smoke OK"

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "verify: OK"
