#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, formatting.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== bench --quick --check =="
cargo run --release -p paqoc-bench --bin bench -- --quick --check \
    --out target/BENCH_pipeline_quick.json

echo "== store corruption-injection suite =="
cargo test -q -p paqoc-store --test corruption

echo "== persistent store end-to-end (cold -> warm) =="
cargo test -q --test pulse_store

echo "== bench cold -> warm against a fresh pulse store =="
PULSE_DB="target/verify_pulse_store.db"
rm -f "$PULSE_DB"
cargo run --release -p paqoc-bench --bin bench -- --quick \
    --out target/BENCH_pipeline_cold.json --pulse-db "$PULSE_DB"
cargo run --release -p paqoc-bench --bin bench -- --quick --check \
    --out target/BENCH_pipeline_warm.json --pulse-db "$PULSE_DB" --expect-warm

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "verify: OK"
