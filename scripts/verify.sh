#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, formatting.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== bench --quick --check =="
cargo run --release -p paqoc-bench --bin bench -- --quick --check \
    --out target/BENCH_pipeline_quick.json

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "verify: OK"
