//! `paqoc-store` — operational CLI for the persistent pulse store.
//!
//! ```text
//! paqoc-store inspect <store>                 summarize header, records, live/dead bytes
//! paqoc-store verify  <store>                 like inspect; exit 2 unless fully clean
//! paqoc-store compact <store>                 rewrite live records (requires the writer lock)
//! paqoc-store merge   <dst> <src>             copy records missing from <dst> out of <src>
//! paqoc-store hammer  <store> <fp> <count> [--reader] [--forever]
//!                     [--sync-every N] [--max-bytes N] [--seed N]
//!                                             load generator for the cross-process tests;
//!                                             emits one JSON object per line on stdout
//! ```
//!
//! `inspect`/`verify` never take the writer lock and are safe against a
//! live writer. `compact` and `merge` need the lock and fail cleanly
//! when another process holds it.

use paqoc_device::FingerprintKind;
use paqoc_store::{inspect, PulseStore, StoreInspection, StoreOptions, StoreRole};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("inspect") => match it.next() {
            Some(path) => cmd_inspect(Path::new(path), false),
            None => usage(),
        },
        Some("verify") => match it.next() {
            Some(path) => cmd_inspect(Path::new(path), true),
            None => usage(),
        },
        Some("compact") => match it.next() {
            Some(path) => cmd_compact(Path::new(path)),
            None => usage(),
        },
        Some("merge") => match (it.next(), it.next()) {
            (Some(dst), Some(src)) => cmd_merge(Path::new(dst), Path::new(src)),
            _ => usage(),
        },
        Some("hammer") => cmd_hammer(&args[1..]),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: paqoc-store inspect|verify <store>\n\
         \x20      paqoc-store compact <store>\n\
         \x20      paqoc-store merge <dst> <src>\n\
         \x20      paqoc-store hammer <store> <fingerprint> <count> \
         [--reader] [--forever] [--sync-every N] [--max-bytes N] [--seed N]"
    );
    ExitCode::from(1)
}

/// `"<name> (ns <id>, cal <id>)"` for a namespaced fingerprint,
/// `"legacy"` for a raw-hash one.
fn describe_backend(fingerprint: u64) -> String {
    match paqoc_device::decode_fingerprint(fingerprint) {
        FingerprintKind::Legacy => "legacy".to_string(),
        FingerprintKind::Namespaced { ns_id, cal_id } => {
            let name = paqoc_device::namespace_name(ns_id).unwrap_or("unknown");
            format!("{name} (ns {ns_id}, cal {cal_id:#06x})")
        }
    }
}

fn print_inspection(path: &Path, ins: &StoreInspection) {
    println!("store            {}", path.display());
    println!("header_ok        {}", ins.header_ok);
    println!("version          {}", ins.version);
    println!("fingerprint      {:016x}", ins.fingerprint);
    println!("backend          {}", describe_backend(ins.fingerprint));
    println!("file_bytes       {}", ins.file_bytes);
    println!("records_scanned  {}", ins.records_scanned);
    println!("live_records     {}", ins.live_records);
    println!("live_bytes       {}", ins.live_bytes);
    println!("dead_bytes       {}", ins.dead_bytes);
    println!("quarantined      {}", ins.quarantined);
    println!("torn_tail_bytes  {}", ins.torn_tail_bytes);
    println!("total_hits       {}", ins.total_hits);
}

fn cmd_inspect(path: &Path, verify: bool) -> ExitCode {
    let ins = match inspect(path) {
        Ok(ins) => ins,
        Err(e) => {
            eprintln!("paqoc-store: {e}");
            return ExitCode::from(2);
        }
    };
    print_inspection(path, &ins);
    if verify {
        if ins.clean() {
            println!("verdict          clean");
        } else {
            println!("verdict          DAMAGED");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

/// Opens `path` as a writer using the fingerprint in its own header;
/// errors when the file is missing/unreadable or the lock is held.
fn open_own_writer(path: &Path) -> Result<PulseStore, String> {
    let ins = inspect(path).map_err(|e| e.to_string())?;
    if !ins.header_ok {
        return Err(format!("{}: not a readable pulse store", path.display()));
    }
    let store = PulseStore::open_with(path, ins.fingerprint, StoreOptions::default())
        .map_err(|e| e.to_string())?;
    if store.role() != StoreRole::Writer {
        return Err(format!(
            "{}: another process holds the writer lock",
            path.display()
        ));
    }
    Ok(store)
}

fn cmd_compact(path: &Path) -> ExitCode {
    let mut store = match open_own_writer(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("paqoc-store: {e}");
            return ExitCode::from(2);
        }
    };
    let before = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    if let Err(e) = store.compact_with_reason("cli") {
        eprintln!("paqoc-store: {e}");
        return ExitCode::from(2);
    }
    let after = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("records          {}", store.len());
    println!("bytes_before     {before}");
    println!("bytes_after      {after}");
    ExitCode::SUCCESS
}

fn cmd_merge(dst: &Path, src: &Path) -> ExitCode {
    let src_ins = match inspect(src) {
        Ok(ins) if ins.header_ok => ins,
        Ok(_) => {
            eprintln!("paqoc-store: {}: not a readable pulse store", src.display());
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("paqoc-store: {e}");
            return ExitCode::from(2);
        }
    };
    // Guard before opening: opening dst with src's fingerprint would
    // rotate (or cohabit) a mismatched destination instead of erroring.
    if let Ok(dst_ins) = inspect(dst) {
        if dst_ins.header_ok && dst_ins.fingerprint != src_ins.fingerprint {
            let (dst_kind, src_kind) = (
                paqoc_device::decode_fingerprint(dst_ins.fingerprint),
                paqoc_device::decode_fingerprint(src_ins.fingerprint),
            );
            if dst_kind != src_kind {
                eprintln!(
                    "paqoc-store: cross-backend merge refused: {} is {}, {} is {}",
                    dst.display(),
                    describe_backend(dst_ins.fingerprint),
                    src.display(),
                    describe_backend(src_ins.fingerprint)
                );
            } else {
                eprintln!(
                    "paqoc-store: fingerprint mismatch: {} is {:016x}, {} is {:016x}",
                    dst.display(),
                    dst_ins.fingerprint,
                    src.display(),
                    src_ins.fingerprint
                );
            }
            return ExitCode::from(2);
        }
    }
    let mut store = match PulseStore::open_with(dst, src_ins.fingerprint, StoreOptions::default()) {
        Ok(s) if s.role() == StoreRole::Writer => s,
        Ok(_) => {
            eprintln!(
                "paqoc-store: {}: another process holds the writer lock",
                dst.display()
            );
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("paqoc-store: {e}");
            return ExitCode::from(2);
        }
    };
    match store.merge_from_file(src) {
        Ok(report) => {
            println!("added            {}", report.added);
            println!("skipped          {}", report.skipped);
            println!("records          {}", store.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("paqoc-store: {e}");
            ExitCode::from(2)
        }
    }
}

struct HammerArgs {
    path: PathBuf,
    fingerprint: u64,
    count: usize,
    reader: bool,
    forever: bool,
    sync_every: usize,
    max_bytes: Option<u64>,
    seed: u64,
}

fn parse_hammer(args: &[String]) -> Option<HammerArgs> {
    let mut it = args.iter().map(String::as_str);
    let path = PathBuf::from(it.next()?);
    let fingerprint: u64 = it.next()?.parse().ok()?;
    let count: usize = it.next()?.parse().ok()?;
    let mut out = HammerArgs {
        path,
        fingerprint,
        count,
        reader: false,
        forever: false,
        sync_every: 8,
        max_bytes: None,
        seed: 0,
    };
    while let Some(flag) = it.next() {
        match flag {
            "--reader" => out.reader = true,
            "--forever" => out.forever = true,
            "--sync-every" => out.sync_every = it.next()?.parse().ok()?,
            "--max-bytes" => out.max_bytes = Some(it.next()?.parse().ok()?),
            "--seed" => out.seed = it.next()?.parse().ok()?,
            _ => return None,
        }
    }
    if out.sync_every == 0 {
        out.sync_every = 1;
    }
    Some(out)
}

fn emit(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

fn hammer_estimate(i: usize) -> paqoc_device::PulseEstimate {
    paqoc_device::PulseEstimate {
        latency_ns: 10.0 + i as f64 * 0.5,
        latency_dt: 80 + i as u64 * 4,
        fidelity: 0.999,
        cost_units: 1.0,
    }
}

/// Load generator for the cross-process contention tests. Emits one
/// JSON object per line, flushed, so a parent process can sequence its
/// own actions against ours.
fn cmd_hammer(args: &[String]) -> ExitCode {
    let Some(cfg) = parse_hammer(args) else {
        return usage();
    };
    let options = StoreOptions {
        max_bytes: cfg.max_bytes,
        read_only: cfg.reader,
        io_faults: None,
    };
    let mut store = match PulseStore::open_with(&cfg.path, cfg.fingerprint, options) {
        Ok(s) => s,
        Err(e) => {
            emit(&format!(r#"{{"event":"error","message":"{e}"}}"#));
            return ExitCode::from(2);
        }
    };
    let role = match store.role() {
        StoreRole::Writer => "writer",
        StoreRole::ReadOnly => "readonly",
    };
    emit(&format!(
        r#"{{"event":"open","role":"{role}","records":{}}}"#,
        store.len()
    ));

    match store.role() {
        StoreRole::Writer => {
            let pid = std::process::id();
            let mut written = 0usize;
            let mut i = 0usize;
            loop {
                if !cfg.forever && written >= cfg.count {
                    break;
                }
                let key = format!("hammer-{}-{:06}", cfg.seed, i);
                if let Err(e) = store.put(&key, hammer_estimate(i)) {
                    emit(&format!(r#"{{"event":"error","message":"{e}"}}"#));
                    return ExitCode::from(2);
                }
                written += 1;
                i += 1;
                if written.is_multiple_of(cfg.sync_every) {
                    if let Err(e) = store.sync() {
                        emit(&format!(r#"{{"event":"error","message":"{e}"}}"#));
                        return ExitCode::from(2);
                    }
                    emit(&format!(
                        r#"{{"event":"synced","written":{written},"pid":{pid}}}"#
                    ));
                }
            }
            if let Err(e) = store.sync() {
                emit(&format!(r#"{{"event":"error","message":"{e}"}}"#));
                return ExitCode::from(2);
            }
            emit(&format!(
                r#"{{"event":"done","role":"writer","written":{written},"records":{}}}"#,
                store.len()
            ));
        }
        StoreRole::ReadOnly => {
            // Serve reads while the writer appends: refresh until we have
            // observed `count` records (or give up after ~10 s). Also
            // prove the degradation path: a write on this handle is
            // dropped and counted, never an error.
            let _ = store.put("readonly-probe", hammer_estimate(0));
            let mut observed = store.len();
            emit(&format!(r#"{{"event":"observed","records":{observed}}}"#));
            for _ in 0..5000 {
                if observed >= cfg.count {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
                if let Err(e) = store.refresh() {
                    emit(&format!(r#"{{"event":"error","message":"{e}"}}"#));
                    return ExitCode::from(2);
                }
                if store.len() != observed {
                    observed = store.len();
                    emit(&format!(r#"{{"event":"observed","records":{observed}}}"#));
                }
            }
            emit(&format!(
                r#"{{"event":"done","role":"readonly","observed":{observed},"readonly_drops":{}}}"#,
                store.readonly_drops()
            ));
        }
    }
    ExitCode::SUCCESS
}
