//! # paqoc-store
//!
//! A crash-safe, multi-process persistent pulse store. AccQOC's central
//! acceleration is a pulse database built once and amortized across
//! circuits; this crate makes that database durable across processes so
//! a warm compilation performs **zero** pulse generations for shapes it
//! has already seen — and lets a fleet of workers on one box share a
//! single store file safely.
//!
//! ## On-disk format (version 2)
//!
//! ```text
//! header (20 bytes):
//!   magic        b"PQPS"           4 bytes
//!   version      u32 LE            4 bytes
//!   fingerprint  u64 LE            8 bytes   device fingerprint, see below
//!   header_crc   u32 LE            4 bytes   CRC-32 of the 16 bytes above
//! record (repeated, append-only):
//!   len          u32 LE            payload length in bytes
//!   crc          u32 LE            CRC-32 of the payload
//!   payload:
//!     key_len    u32 LE
//!     key        key_len bytes     UTF-8 canonical gate-group key
//!     latency_ns f64 LE bits
//!     latency_dt u64 LE
//!     fidelity   f64 LE bits
//!     cost_units f64 LE bits
//!     hits       u64 LE            v2 only: lifetime read-through hits
//!     last_access u64 LE           v2 only: logical access clock value
//! ```
//!
//! Version 1 files (no `hits`/`last_access` tail) open transparently:
//! their records load with zero generational metadata and a writer
//! immediately rewrites the file as v2
//! ([`RecoveryReport::upgraded`]). The header's `fingerprint` binds the
//! file to one device configuration (Hamiltonian limits, topology,
//! pulse discretization — see `Device::fingerprint`): a store written
//! for a different device, an unsupported format version or foreign
//! magic is **rejected and rotated to a fresh file** rather than
//! silently reused, because a pulse tuned for one coupler limit is
//! wrong on another.
//!
//! ## Multi-process protocol: single writer, many readers
//!
//! Opening a store elects a role. Exactly one handle per path holds the
//! advisory exclusive lock on the never-renamed `<path>.lock` sibling
//! (see [`lock_path`]) and becomes the [`StoreRole::Writer`]; every
//! other opener degrades to [`StoreRole::ReadOnly`] — journaled as a
//! `store.readonly` event, never an error — and serves lookups from its
//! snapshot. Readers hold **no** lock: the append-only format plus the
//! atomic compaction rename keep their view valid, and
//! [`PulseStore::refresh`] picks up concurrent writer activity by
//! re-scanning past the last processed offset (appends) or re-loading
//! when the file's inode changed (compaction rotated the file).
//! `flock` locks die with their process, so `kill -9` of the writer
//! frees the role for the next opener with nothing to clean up.
//!
//! ## Crash safety and recovery
//!
//! Appends are length-prefixed and CRC-guarded, so loading tolerates:
//!
//! * a **torn tail** (a crash mid-append): the incomplete record is
//!   truncated away;
//! * **flipped bits**: a record whose CRC does not match is quarantined
//!   (skipped) while later records still load;
//! * **duplicate keys**: the last record wins, giving append-only
//!   update semantics.
//!
//! Any recovery is journaled as a `store.recovered` telemetry event and
//! immediately scrubbed through a temp file + atomic rename + fsync, so
//! corruption never survives a second writer open. (Read-only handles
//! report damage in [`PulseStore::recovery`] but cannot scrub it.)
//!
//! ## Compaction and eviction
//!
//! The writer tracks **live** bytes (one clean record per entry) and
//! **dead** bytes (overwritten, evicted or quarantined records still
//! occupying the file). [`PulseStore::maintain`] — typically driven by
//! a [`spawn_maintenance`] background thread — evicts lowest-hit-count
//! records first (ties: oldest access, then key order) while a
//! compacted file would exceed [`StoreOptions::max_bytes`] (journaled
//! `store.evict` events), then compacts when dead bytes dominate
//! ([`PulseStore::should_compact`]); every compaction journals a
//! `store.compact` event carrying its trigger reason and the live/dead
//! byte counts it collapsed.
//!
//! A `paqoc-store` CLI bin ships with the crate: `inspect`, `verify`,
//! `compact`, `merge` and a `hammer` load-generator used by the
//! cross-process contention tests.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod crc32;
mod lock;
mod maintenance;

pub use crc32::crc32;
pub use lock::lock_path;
pub use maintenance::{spawn_maintenance, MaintenanceHandle};

use paqoc_device::{IoFaultInjector, PulseEstimate};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic: "PaQoc Pulse Store".
pub const MAGIC: [u8; 4] = *b"PQPS";
/// Current on-disk format version (v2: generational records).
pub const FORMAT_VERSION: u32 = 2;
/// Oldest format version still readable (v1 records carry no
/// generational metadata and load with zero hits).
pub const MIN_FORMAT_VERSION: u32 = 1;
/// Size of the file header in bytes.
pub const HEADER_LEN: usize = 20;
/// Sanity cap on a single record's payload: anything larger is treated
/// as corrupt framing (a flipped bit in a length prefix must not make
/// the loader swallow the rest of the file as one giant record).
pub const MAX_RECORD_LEN: usize = 1 << 20;
/// Minimum dead bytes before [`PulseStore::should_compact`] advises a
/// compaction — rewriting a file to reclaim less than this is churn.
pub const COMPACT_DEAD_BYTES_FLOOR: u64 = 4096;

/// Why a store file (or part of it) could not be used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The file does not start with [`MAGIC`] or is shorter than a header.
    BadHeader,
    /// The file's format version is outside
    /// [`MIN_FORMAT_VERSION`]..=[`FORMAT_VERSION`].
    Version {
        /// Version found in the file.
        found: u32,
    },
    /// The file was written for a different device configuration.
    Fingerprint {
        /// Fingerprint found in the file.
        found: u64,
        /// Fingerprint of the opening device.
        expected: u64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::BadHeader => write!(f, "missing or corrupt header"),
            RejectReason::Version { found } => {
                write!(
                    f,
                    "format version {found} (supported {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
                )
            }
            RejectReason::Fingerprint { found, expected } => write!(
                f,
                "device fingerprint {found:016x} (expected {expected:016x})"
            ),
        }
    }
}

/// An I/O failure while opening, appending to or compacting a store.
#[derive(Debug)]
pub struct StoreError {
    /// Operation that failed (`"open"`, `"append"`, `"compact"`, …).
    pub op: &'static str,
    /// The store path involved.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pulse store {} failed on {}: {}",
            self.op,
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// What loading a store had to do to reach a clean state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Well-formed records loaded (before last-wins dedup).
    pub loaded: usize,
    /// Corrupt records quarantined (CRC mismatch, bad framing, malformed
    /// payload, out-of-range estimate).
    pub quarantined: usize,
    /// Bytes of torn tail truncated away.
    pub torn_tail_bytes: u64,
    /// Set when the whole file was rejected and rotated to a fresh one.
    pub rejected: Option<RejectReason>,
    /// Set (to the old version) when a writer transparently upgraded an
    /// older-format file to the current format. An upgrade alone is not
    /// "recovery": nothing was damaged.
    pub upgraded: Option<u32>,
}

impl RecoveryReport {
    /// `true` when the loader had to repair, quarantine or reject
    /// anything — i.e. the file was not already clean.
    pub fn recovered(&self) -> bool {
        self.quarantined > 0 || self.torn_tail_bytes > 0 || self.rejected.is_some()
    }
}

/// The role a handle was elected into at open (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreRole {
    /// Holds the exclusive advisory lock; the only handle that appends,
    /// compacts, evicts and scrubs.
    Writer,
    /// Serves reads from a snapshot; picks up writer activity via
    /// [`PulseStore::refresh`]. Writes are counted and dropped.
    ReadOnly,
}

/// Tuning knobs for [`PulseStore::open_with`].
#[derive(Clone, Debug, Default)]
pub struct StoreOptions {
    /// Size budget for the **compacted** file. When a compaction would
    /// still exceed it, [`PulseStore::maintain`] evicts lowest-hit
    /// records until it fits. `None` (default) never evicts.
    pub max_bytes: Option<u64>,
    /// Forces [`StoreRole::ReadOnly`] without attempting the writer
    /// lock.
    pub read_only: bool,
    /// Seeded IO fault injection for sync/rename/append (tests only).
    pub io_faults: Option<Arc<IoFaultInjector>>,
}

impl StoreOptions {
    /// Options with a compacted-size budget.
    pub fn with_max_bytes(max_bytes: u64) -> Self {
        StoreOptions {
            max_bytes: Some(max_bytes),
            ..StoreOptions::default()
        }
    }
}

/// A stored pulse with its v2 generational metadata.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoredPulse {
    /// The pulse estimate itself.
    pub estimate: PulseEstimate,
    /// Lifetime read-through hits ([`PulseStore::hit`]); the LFU
    /// eviction key.
    pub hits: u64,
    /// Logical access clock at the last hit (not wall time, so replay
    /// stays deterministic); the eviction tie-breaker.
    pub last_access: u64,
}

/// What one [`PulseStore::maintain`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintainReport {
    /// Records evicted to fit [`StoreOptions::max_bytes`].
    pub evicted: usize,
    /// `true` when the pass ran a compaction.
    pub compacted: bool,
    /// Read-only handles: records newly observed by the refresh scan.
    pub refreshed: usize,
}

/// Offline summary of a store file (see [`inspect`]); the `paqoc-store`
/// CLI's `inspect`/`verify` output.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreInspection {
    /// `true` when magic, header CRC and format version all check out.
    pub header_ok: bool,
    /// Format version found in the header (0 when unreadable).
    pub version: u32,
    /// Device fingerprint found in the header (0 when unreadable).
    pub fingerprint: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Well-formed records scanned (before last-wins dedup).
    pub records_scanned: usize,
    /// Distinct live keys after dedup.
    pub live_records: usize,
    /// Bytes a compacted file would spend on records.
    pub live_bytes: u64,
    /// Bytes occupied by overwritten/quarantined records.
    pub dead_bytes: u64,
    /// Corrupt records quarantined by the scan.
    pub quarantined: usize,
    /// Bytes of torn tail at the end of the file.
    pub torn_tail_bytes: u64,
    /// Sum of all live records' hit counts.
    pub total_hits: u64,
}

impl StoreInspection {
    /// `true` when the file is fully intact: valid header, no
    /// quarantined records, no torn tail.
    pub fn clean(&self) -> bool {
        self.header_ok && self.quarantined == 0 && self.torn_tail_bytes == 0
    }
}

/// What [`PulseStore::merge_from_file`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Records copied in (key absent from the destination).
    pub added: usize,
    /// Records skipped (destination already had the key; the
    /// destination's record is authoritative).
    pub skipped: usize,
}

/// Serializes one current-version record (length prefix + CRC +
/// payload) for `key`, with zero generational metadata.
pub fn encode_record(key: &str, est: &PulseEstimate) -> Vec<u8> {
    encode_record_meta(key, est, 0, 0)
}

fn encode_record_meta(key: &str, est: &PulseEstimate, hits: u64, last_access: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + key.len() + 48);
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(key.as_bytes());
    payload.extend_from_slice(&est.latency_ns.to_bits().to_le_bytes());
    payload.extend_from_slice(&est.latency_dt.to_le_bytes());
    payload.extend_from_slice(&est.fidelity.to_bits().to_le_bytes());
    payload.extend_from_slice(&est.cost_units.to_bits().to_le_bytes());
    payload.extend_from_slice(&hits.to_le_bytes());
    payload.extend_from_slice(&last_access.to_le_bytes());
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// On-disk size in bytes of the current-version record for `key`
/// (framing included). Useful for tests that aim corruption at a
/// specific record.
pub fn record_len(key: &str) -> usize {
    8 + 4 + key.len() + 48
}

fn decode_payload(version: u32, payload: &[u8]) -> Option<(String, StoredPulse)> {
    if payload.len() < 4 {
        return None;
    }
    let tail_len = if version == 1 { 32 } else { 48 };
    let key_len = u32::from_le_bytes(payload[0..4].try_into().ok()?) as usize;
    if payload.len() != 4 + key_len + tail_len {
        return None;
    }
    let key = std::str::from_utf8(&payload[4..4 + key_len])
        .ok()?
        .to_string();
    let tail = &payload[4 + key_len..];
    let f64_at = |i: usize| -> f64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&tail[i..i + 8]);
        f64::from_bits(u64::from_le_bytes(b))
    };
    let u64_at = |i: usize| -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&tail[i..i + 8]);
        u64::from_le_bytes(b)
    };
    let estimate = PulseEstimate {
        latency_ns: f64_at(0),
        latency_dt: u64_at(8),
        fidelity: f64_at(16),
        cost_units: f64_at(24),
    };
    let (hits, last_access) = if version == 1 {
        (0, 0)
    } else {
        (u64_at(32), u64_at(40))
    };
    Some((
        key,
        StoredPulse {
            estimate,
            hits,
            last_access,
        },
    ))
}

fn encode_header(fingerprint: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC);
    h[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&fingerprint.to_le_bytes());
    let crc = crc32(&h[0..16]);
    h[16..20].copy_from_slice(&crc.to_le_bytes());
    h
}

fn file_ino(meta: &std::fs::Metadata) -> u64 {
    #[cfg(unix)]
    {
        use std::os::unix::fs::MetadataExt;
        meta.ino()
    }
    #[cfg(not(unix))]
    {
        let _ = meta;
        0
    }
}

/// The persistent pulse store (see the module docs for format, lock
/// protocol and recovery guarantees).
///
/// All loaded entries are kept in memory (a pulse record is ~100 bytes;
/// even a million-pulse database is small), so [`PulseStore::get`] is a
/// map lookup and the file is only touched by appends, refreshes and
/// compaction.
#[derive(Debug)]
pub struct PulseStore {
    path: PathBuf,
    role: StoreRole,
    /// Append handle — writer only.
    file: Option<File>,
    /// Held exclusive advisory lock — writer only. Releasing it (drop)
    /// frees the writer role for the next opener.
    _lock: Option<File>,
    entries: BTreeMap<String, StoredPulse>,
    fingerprint: u64,
    recovery: RecoveryReport,
    options: StoreOptions,
    /// Logical access clock: bumped on every [`PulseStore::hit`],
    /// persisted per record at compaction. Deterministic, unlike wall
    /// time.
    clock: u64,
    /// On-disk format version of the current file (readers may lag on
    /// v1 until the writer upgrades).
    version: u32,
    /// Current file length as this handle knows it.
    file_bytes: u64,
    /// Bytes a compacted file would spend on records.
    live_bytes: u64,
    /// Bytes of overwritten/evicted/quarantined records awaiting
    /// compaction.
    dead_bytes: u64,
    /// Set when an append failed mid-record and truncation-repair has
    /// not succeeded yet; further appends first retry the repair.
    tail_dirty: bool,
    /// Read-only handles: byte offset up to which records are scanned.
    scanned_len: u64,
    /// Read-only handles: inode of the scanned file (0 = none yet).
    ino: u64,
    evictions: u64,
    compactions: u64,
    readonly_drops: u64,
}

impl PulseStore {
    /// Opens (or creates) the store at `path` for a device with the
    /// given fingerprint, with default [`StoreOptions`].
    ///
    /// # Errors
    ///
    /// See [`PulseStore::open_with`].
    pub fn open(path: impl Into<PathBuf>, fingerprint: u64) -> Result<Self, StoreError> {
        Self::open_with(path, fingerprint, StoreOptions::default())
    }

    /// Opens (or creates) the store at `path`, electing a
    /// [`StoreRole`]: the opener that wins the advisory exclusive lock
    /// becomes the writer; everyone else degrades to a read-only
    /// snapshot (journaled as `store.readonly`, never an error).
    ///
    /// A file with a corrupt header, foreign magic, unsupported format
    /// version or different fingerprint is **rotated** by a writer: its
    /// contents are discarded and a fresh store is started, with the
    /// rejection recorded in [`PulseStore::recovery`] and journaled as
    /// a `store.recovered` event. Torn tails and corrupt records are
    /// repaired the same way (see module docs). A still-supported older
    /// format version is upgraded in place
    /// ([`RecoveryReport::upgraded`]). Read-only handles report damage
    /// but cannot repair it.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] only for genuine I/O failures (permission,
    /// missing parent directory, disk errors) — never for corruption,
    /// which is always recoverable by construction.
    pub fn open_with(
        path: impl Into<PathBuf>,
        fingerprint: u64,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let path = path.into();
        let lock = if options.read_only {
            None
        } else {
            lock::acquire_writer(&path).map_err(|source| StoreError {
                op: "lock",
                path: path.clone(),
                source,
            })?
        };
        let store = match lock {
            Some(lock) => Self::open_writer(path, fingerprint, options, lock)?,
            None => Self::open_reader(path, fingerprint, options)?,
        };
        paqoc_telemetry::counter("store.opens", 1);
        paqoc_telemetry::counter("store.loaded_records", store.entries.len() as u64);
        Ok(store)
    }

    fn open_writer(
        path: PathBuf,
        fingerprint: u64,
        options: StoreOptions,
        lock: File,
    ) -> Result<Self, StoreError> {
        let err = |op: &'static str, path: &Path| {
            let path = path.to_path_buf();
            move |source: std::io::Error| StoreError { op, path, source }
        };

        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(err("open", &path)(e)),
        };

        let mut recovery = RecoveryReport::default();
        let mut entries: BTreeMap<String, StoredPulse> = BTreeMap::new();
        let mut version = FORMAT_VERSION;

        if !bytes.is_empty() {
            match check_header(&bytes, fingerprint, FingerprintRule::Cohabit) {
                Err(reason) => recovery.rejected = Some(reason),
                Ok(v) => {
                    version = v;
                    let mut report = ScanReport::default();
                    scan_records(&bytes, HEADER_LEN, v, &mut entries, &mut report, false);
                    recovery.loaded = report.loaded;
                    recovery.quarantined = report.quarantined;
                    recovery.torn_tail_bytes = report.torn_tail_bytes;
                }
            }
        }

        let fresh = bytes.is_empty() || recovery.rejected.is_some();
        if fresh {
            entries.clear();
        }
        let upgrade = !fresh && version < FORMAT_VERSION;
        if upgrade {
            recovery.upgraded = Some(version);
            paqoc_telemetry::counter("store.upgrades", 1);
        }
        // The open-time create/scrub is exempt from IO fault injection:
        // faults target the runtime path (append/sync/compact) so tests
        // can always obtain a handle deterministically before the storm.
        if fresh {
            // Start (or restart) with a clean header. Rotation goes
            // through the same atomic temp+rename path as compaction so
            // a crash here can never leave a half-written header.
            write_atomically(&path, fingerprint, &entries, None).map_err(err("create", &path))?;
        } else if recovery.recovered() || upgrade {
            // Scrub quarantined records, the torn tail and any
            // older-format records out of the file so neither corruption
            // nor a stale format survives a second writer open.
            write_atomically(&path, fingerprint, &entries, None).map_err(err("recover", &path))?;
        }

        if recovery.recovered() {
            paqoc_telemetry::counter("store.recovered", 1);
            paqoc_telemetry::counter("store.quarantined_records", recovery.quarantined as u64);
            paqoc_telemetry::event!(
                "store.recovered",
                path = path.display().to_string(),
                loaded = recovery.loaded as u64,
                quarantined = recovery.quarantined as u64,
                torn_tail_bytes = recovery.torn_tail_bytes,
                rejected = recovery
                    .rejected
                    .as_ref()
                    .map(|r| r.to_string())
                    .unwrap_or_default(),
            );
        }

        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(err("open", &path))?;
        let file_bytes = std::fs::metadata(&path).map_err(err("open", &path))?.len();
        let live_bytes: u64 = entries.keys().map(|k| record_len(k) as u64).sum();
        let clock = entries
            .values()
            .map(|r| r.last_access)
            .max()
            .unwrap_or(0)
            .saturating_add(1);
        Ok(PulseStore {
            path,
            role: StoreRole::Writer,
            file: Some(file),
            _lock: Some(lock),
            entries,
            fingerprint,
            recovery,
            options,
            clock,
            version: FORMAT_VERSION,
            file_bytes,
            live_bytes,
            dead_bytes: file_bytes
                .saturating_sub(HEADER_LEN as u64)
                .saturating_sub(live_bytes),
            tail_dirty: false,
            scanned_len: 0,
            ino: 0,
            evictions: 0,
            compactions: 0,
            readonly_drops: 0,
        })
    }

    fn open_reader(
        path: PathBuf,
        fingerprint: u64,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let reason = if options.read_only {
            "requested"
        } else {
            "lock-held"
        };
        let mut store = PulseStore {
            path,
            role: StoreRole::ReadOnly,
            file: None,
            _lock: None,
            entries: BTreeMap::new(),
            fingerprint,
            recovery: RecoveryReport::default(),
            options,
            clock: 0,
            version: FORMAT_VERSION,
            file_bytes: 0,
            live_bytes: 0,
            dead_bytes: 0,
            tail_dirty: false,
            scanned_len: 0,
            ino: 0,
            evictions: 0,
            compactions: 0,
            readonly_drops: 0,
        };
        store.refresh()?;
        paqoc_telemetry::counter("store.readonly", 1);
        paqoc_telemetry::event!(
            "store.readonly",
            path = store.path.display().to_string(),
            reason = reason.to_string(),
            loaded = store.entries.len() as u64,
        );
        Ok(store)
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The role this handle was elected into at open.
    pub fn role(&self) -> StoreRole {
        self.role
    }

    /// The options this handle was opened with.
    pub fn options(&self) -> &StoreOptions {
        &self.options
    }

    /// The device fingerprint this store is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// What loading had to repair (all zeros/`None` for a clean open).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of distinct pulses stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no pulses are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current file length in bytes as this handle knows it.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Bytes a compacted file would spend on records.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Bytes occupied by overwritten/evicted/quarantined records that a
    /// compaction would reclaim.
    pub fn dead_bytes(&self) -> u64 {
        self.dead_bytes
    }

    /// Records evicted by this handle so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Compactions run by this handle so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Writes dropped because this handle is read-only.
    pub fn readonly_drops(&self) -> u64 {
        self.readonly_drops
    }

    /// Looks up the stored estimate for a canonical key without
    /// touching the generational metadata (use [`PulseStore::hit`] on
    /// the serving path so LFU eviction sees real usage).
    pub fn get(&self, key: &str) -> Option<PulseEstimate> {
        self.entries.get(key).map(|r| r.estimate)
    }

    /// `true` when `key` is stored.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Looks up the full stored record (estimate + metadata) for a key.
    pub fn peek(&self, key: &str) -> Option<&StoredPulse> {
        self.entries.get(key)
    }

    /// Read-through lookup: returns the estimate and records the access
    /// (hit count + logical recency) that drives LFU eviction. Metadata
    /// lives in memory and is persisted at the next compaction — a hit
    /// never touches the file.
    pub fn hit(&mut self, key: &str) -> Option<PulseEstimate> {
        let rec = self.entries.get_mut(key)?;
        rec.hits += 1;
        self.clock += 1;
        rec.last_access = self.clock;
        paqoc_telemetry::counter("store.hits", 1);
        Some(rec.estimate)
    }

    /// Iterates over all stored `(key, estimate)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PulseEstimate)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), &v.estimate))
    }

    /// Iterates over all stored `(key, record)` pairs — estimate plus
    /// generational metadata — in key order.
    pub fn iter_records(&self) -> impl Iterator<Item = (&str, &StoredPulse)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Appends (or overwrites) the estimate for `key`.
    ///
    /// Write-behind contract: the record is appended and flushed to the
    /// OS immediately (a process crash loses nothing already `put`), but
    /// durably fsynced only by [`PulseStore::sync`] or
    /// [`PulseStore::compact`]. A `put` equal to the stored value is a
    /// no-op so repeated warm runs do not grow the file. Overwrites
    /// preserve the key's hit count.
    ///
    /// Ill-formed estimates (NaN/∞/out-of-range — see
    /// [`PulseEstimate::is_well_formed`]) are rejected without touching
    /// the file: the store can only ever serve estimates that passed the
    /// same validation generation does. On a **read-only** handle the
    /// write is counted ([`PulseStore::readonly_drops`]) and dropped —
    /// degradation, not failure.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure; the in-memory view is not
    /// updated in that case, and the file is truncated back to the last
    /// record boundary so a live writer never cascades a torn append
    /// into later corruption.
    pub fn put(&mut self, key: &str, est: PulseEstimate) -> Result<(), StoreError> {
        if self.role == StoreRole::ReadOnly {
            self.readonly_drops += 1;
            paqoc_telemetry::counter("store.readonly_drops", 1);
            return Ok(());
        }
        if !est.is_well_formed() {
            paqoc_telemetry::counter("store.rejected_estimates", 1);
            return Ok(());
        }
        if let Some(cur) = self.entries.get(key) {
            if cur.estimate == est {
                return Ok(());
            }
        }
        if self.tail_dirty {
            self.repair_tail()?;
        }
        let (hits, last_access) = self
            .entries
            .get(key)
            .map(|r| (r.hits, r.last_access))
            .unwrap_or((0, self.clock));
        let record = encode_record_meta(key, &est, hits, last_access);
        let faults = self.options.io_faults.clone();
        let short = faults.as_deref().and_then(|f| f.short_write(record.len()));
        let append = |file: &mut File| -> std::io::Result<()> {
            if let Some(n) = short {
                // Injected torn append: only a prefix lands before the
                // error surfaces — the on-disk shape of ENOSPC mid-write.
                file.write_all(&record[..n])?;
                file.flush()?;
                return Err(std::io::Error::other("injected short write"));
            }
            file.write_all(&record)?;
            file.flush()
        };
        let result = match self.file.as_mut() {
            Some(file) => append(file),
            None => Err(std::io::Error::other("writer handle missing")),
        };
        if let Err(source) = result {
            self.tail_dirty = true;
            let _ = self.repair_tail();
            return Err(StoreError {
                op: "append",
                path: self.path.clone(),
                source,
            });
        }
        self.file_bytes += record.len() as u64;
        let replaced = self
            .entries
            .insert(
                key.to_string(),
                StoredPulse {
                    estimate: est,
                    hits,
                    last_access,
                },
            )
            .is_some();
        if replaced {
            self.dead_bytes += record_len(key) as u64;
        } else {
            self.live_bytes += record_len(key) as u64;
        }
        paqoc_telemetry::counter("store.appends", 1);
        Ok(())
    }

    /// Truncates the file back to the last known record boundary after
    /// a failed append, so a live writer keeps the file parseable.
    fn repair_tail(&mut self) -> Result<(), StoreError> {
        let target = self.file_bytes;
        let result = match self.file.as_mut() {
            Some(file) => file.set_len(target),
            None => Err(std::io::Error::other("writer handle missing")),
        };
        match result {
            Ok(()) => {
                self.tail_dirty = false;
                paqoc_telemetry::counter("store.append_repairs", 1);
                Ok(())
            }
            Err(source) => Err(StoreError {
                op: "append-repair",
                path: self.path.clone(),
                source,
            }),
        }
    }

    /// Durably fsyncs all appended records. A no-op on read-only
    /// handles.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the fsync fails.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.role == StoreRole::ReadOnly {
            return Ok(());
        }
        if let Some(source) = self
            .options
            .io_faults
            .as_deref()
            .and_then(|f| f.fail_sync())
        {
            return Err(StoreError {
                op: "sync",
                path: self.path.clone(),
                source,
            });
        }
        match self.file.as_mut() {
            Some(file) => file.sync_all().map_err(|source| StoreError {
                op: "sync",
                path: self.path.clone(),
                source,
            }),
            None => Ok(()),
        }
    }

    /// `true` when enough **bytes** of overwritten/evicted records have
    /// accumulated ([`COMPACT_DEAD_BYTES_FLOOR`], and at least as many
    /// dead bytes as live ones) that a [`PulseStore::compact`] would
    /// meaningfully shrink the file.
    pub fn should_compact(&self) -> bool {
        self.role == StoreRole::Writer
            && self.dead_bytes >= COMPACT_DEAD_BYTES_FLOOR
            && self.dead_bytes >= self.live_bytes
    }

    /// Rewrites the store as one clean record per key, via a temp file,
    /// an atomic rename and an fsync of file and directory — a crash at
    /// any point leaves either the old file or the new one, never a
    /// hybrid. Concurrent readers stay valid: their open snapshot is
    /// untouched and their next [`PulseStore::refresh`] sees the new
    /// inode and reloads. A no-op on read-only handles.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure; the previous file is left
    /// untouched in that case.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        self.compact_with_reason("manual")
    }

    /// [`PulseStore::compact`] with an explicit trigger reason recorded
    /// in the journaled `store.compact` event (`"manual"`, `"evict"`,
    /// `"dead-bytes"`, `"merge"`, `"cli"`).
    pub fn compact_with_reason(&mut self, reason: &str) -> Result<(), StoreError> {
        if self.role == StoreRole::ReadOnly {
            return Ok(());
        }
        let (live_before, dead_before) = (self.live_bytes, self.dead_bytes);
        write_atomically(
            &self.path,
            self.fingerprint,
            &self.entries,
            self.options.io_faults.as_deref(),
        )
        .map_err(|source| StoreError {
            op: "compact",
            path: self.path.clone(),
            source,
        })?;
        self.file = Some(
            OpenOptions::new()
                .append(true)
                .open(&self.path)
                .map_err(|source| StoreError {
                    op: "compact",
                    path: self.path.clone(),
                    source,
                })?,
        );
        self.file_bytes = HEADER_LEN as u64 + self.live_bytes;
        self.dead_bytes = 0;
        self.tail_dirty = false;
        self.version = FORMAT_VERSION;
        self.compactions += 1;
        paqoc_telemetry::counter("store.compactions", 1);
        paqoc_telemetry::event!(
            "store.compact",
            path = self.path.display().to_string(),
            reason = reason.to_string(),
            live_bytes = live_before,
            dead_bytes = dead_before,
            records = self.entries.len() as u64,
        );
        Ok(())
    }

    /// Evicts lowest-hit-count records (ties: oldest logical access,
    /// then key order) while a compacted file would still exceed
    /// [`StoreOptions::max_bytes`]. Returns the number evicted; the
    /// bytes are reclaimed by the following compaction.
    fn enforce_budget(&mut self) -> usize {
        let Some(max) = self.options.max_bytes else {
            return 0;
        };
        let budget = max.saturating_sub(HEADER_LEN as u64);
        if self.live_bytes <= budget {
            return 0;
        }
        let mut order: Vec<(u64, u64, String)> = self
            .entries
            .iter()
            .map(|(k, r)| (r.hits, r.last_access, k.clone()))
            .collect();
        order.sort();
        let mut evicted = 0;
        for (hits, _, key) in order {
            if self.live_bytes <= budget {
                break;
            }
            let len = record_len(&key) as u64;
            self.entries.remove(&key);
            self.live_bytes -= len;
            self.dead_bytes += len;
            self.evictions += 1;
            evicted += 1;
            paqoc_telemetry::counter("store.evictions", 1);
            paqoc_telemetry::event!("store.evict", key = key, hits = hits, bytes = len);
        }
        evicted
    }

    /// One housekeeping pass — the tick body for a
    /// [`spawn_maintenance`] thread, also safe to call inline:
    ///
    /// * **writer**: evict to fit [`StoreOptions::max_bytes`] (then
    ///   compact with reason `"evict"`), else compact when
    ///   [`PulseStore::should_compact`] says dead bytes dominate
    ///   (reason `"dead-bytes"`);
    /// * **read-only**: [`PulseStore::refresh`] the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the underlying compaction or refresh
    /// fails.
    pub fn maintain(&mut self) -> Result<MaintainReport, StoreError> {
        let mut report = MaintainReport::default();
        if self.role == StoreRole::ReadOnly {
            report.refreshed = self.refresh()?;
            return Ok(report);
        }
        report.evicted = self.enforce_budget();
        if report.evicted > 0 {
            self.compact_with_reason("evict")?;
            report.compacted = true;
        } else if self.should_compact() {
            self.compact_with_reason("dead-bytes")?;
            report.compacted = true;
        }
        Ok(report)
    }

    /// Brings a read-only snapshot up to date with concurrent writer
    /// activity; returns the number of records scanned in. A no-op on
    /// writer handles (they own the file).
    ///
    /// Appends are picked up by scanning past the last processed
    /// offset; a compaction (the inode changed, or the file shrank) or
    /// a file that appeared after open triggers a full reload. A
    /// partial frame at the tail is treated as an append in progress —
    /// the scan stops before it and retries on the next refresh, it is
    /// never counted as damage.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure. A missing file is not an
    /// error (the writer may not have created it yet).
    pub fn refresh(&mut self) -> Result<usize, StoreError> {
        if self.role == StoreRole::Writer {
            return Ok(0);
        }
        let err = |op: &'static str, path: &Path| {
            let path = path.to_path_buf();
            move |source: std::io::Error| StoreError { op, path, source }
        };
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(err("refresh", &self.path)(e)),
        };
        // fstat the handle we will read from, so a concurrent compaction
        // rename between stat and read cannot mix two files' offsets.
        let meta = file.metadata().map_err(err("refresh", &self.path))?;
        let ino = file_ino(&meta);
        let len = meta.len();
        if ino == self.ino && len == self.scanned_len {
            return Ok(0);
        }
        if ino == self.ino && len > self.scanned_len {
            // Incremental: scan only the appended suffix.
            file.seek(SeekFrom::Start(self.scanned_len))
                .map_err(err("refresh", &self.path))?;
            let mut buf = Vec::with_capacity((len - self.scanned_len) as usize);
            file.read_to_end(&mut buf)
                .map_err(err("refresh", &self.path))?;
            let mut report = ScanReport::default();
            let consumed =
                scan_records(&buf, 0, self.version, &mut self.entries, &mut report, true);
            self.scanned_len += consumed as u64;
            self.file_bytes = len;
            self.recompute_byte_accounting();
            paqoc_telemetry::counter("store.refresh_records", report.loaded as u64);
            return Ok(report.loaded);
        }
        // Rotation (compaction replaced the file) or truncation: full
        // reload through the same handle.
        file.seek(SeekFrom::Start(0))
            .map_err(err("refresh", &self.path))?;
        let mut bytes = Vec::with_capacity(len as usize);
        file.read_to_end(&mut bytes)
            .map_err(err("refresh", &self.path))?;
        let loaded = self.load_snapshot(&bytes, ino);
        paqoc_telemetry::counter("store.refresh_records", loaded as u64);
        Ok(loaded)
    }

    /// Replaces the read-only snapshot with a full parse of `bytes`.
    fn load_snapshot(&mut self, bytes: &[u8], ino: u64) -> usize {
        let mut entries = BTreeMap::new();
        let mut recovery = RecoveryReport::default();
        let mut report = ScanReport::default();
        let mut consumed = bytes.len();
        if !bytes.is_empty() {
            match check_header(bytes, self.fingerprint, FingerprintRule::Cohabit) {
                Err(reason) => recovery.rejected = Some(reason),
                Ok(v) => {
                    self.version = v;
                    consumed = scan_records(bytes, HEADER_LEN, v, &mut entries, &mut report, true);
                    recovery.loaded = report.loaded;
                    recovery.quarantined = report.quarantined;
                    recovery.torn_tail_bytes = report.torn_tail_bytes;
                }
            }
        } else {
            consumed = 0;
        }
        self.entries = entries;
        self.recovery = recovery;
        self.scanned_len = consumed as u64;
        self.ino = ino;
        self.file_bytes = bytes.len() as u64;
        self.recompute_byte_accounting();
        self.clock = self
            .entries
            .values()
            .map(|r| r.last_access)
            .max()
            .unwrap_or(0)
            .saturating_add(1);
        report.loaded
    }

    fn recompute_byte_accounting(&mut self) {
        self.live_bytes = self.entries.keys().map(|k| record_len(k) as u64).sum();
        self.dead_bytes = self
            .file_bytes
            .saturating_sub(HEADER_LEN as u64)
            .saturating_sub(self.live_bytes);
    }

    /// Merges every record from the store file at `src` whose key is
    /// absent here, then compacts (reason `"merge"`). Records this
    /// store already has are kept untouched — the destination is
    /// authoritative on conflicts. `src` must carry this store's
    /// fingerprint and a supported format version.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when `src` is unreadable or rejected
    /// (wrong fingerprint/version/magic), when called on a read-only
    /// handle, or when the final compaction fails.
    pub fn merge_from_file(&mut self, src: &Path) -> Result<MergeReport, StoreError> {
        if self.role == StoreRole::ReadOnly {
            return Err(StoreError {
                op: "merge",
                path: self.path.clone(),
                source: std::io::Error::other("store handle is read-only"),
            });
        }
        let bytes = std::fs::read(src).map_err(|source| StoreError {
            op: "merge",
            path: src.to_path_buf(),
            source,
        })?;
        let version =
            check_header(&bytes, self.fingerprint, FingerprintRule::Exact).map_err(|reason| {
                StoreError {
                    op: "merge",
                    path: src.to_path_buf(),
                    source: std::io::Error::other(format!("source rejected: {reason}")),
                }
            })?;
        let mut src_entries = BTreeMap::new();
        let mut report = ScanReport::default();
        scan_records(
            &bytes,
            HEADER_LEN,
            version,
            &mut src_entries,
            &mut report,
            false,
        );
        let mut merge = MergeReport::default();
        for (key, rec) in src_entries {
            if self.entries.contains_key(&key) {
                merge.skipped += 1;
                continue;
            }
            self.live_bytes += record_len(&key) as u64;
            self.clock = self.clock.max(rec.last_access.saturating_add(1));
            self.entries.insert(key, rec);
            merge.added += 1;
        }
        if merge.added > 0 {
            self.compact_with_reason("merge")?;
        }
        Ok(merge)
    }
}

/// Offline summary of the store file at `path`, without fingerprint
/// knowledge or lock acquisition — the `paqoc-store` CLI's
/// `inspect`/`verify` backend. Reads whatever header the file carries
/// and scans records under the file's own version.
///
/// # Errors
///
/// Returns [`StoreError`] only when the file cannot be read at all;
/// corruption is reported in the returned [`StoreInspection`].
pub fn inspect(path: &Path) -> Result<StoreInspection, StoreError> {
    let bytes = std::fs::read(path).map_err(|source| StoreError {
        op: "inspect",
        path: path.to_path_buf(),
        source,
    })?;
    let mut ins = StoreInspection {
        file_bytes: bytes.len() as u64,
        ..StoreInspection::default()
    };
    if bytes.len() < HEADER_LEN || bytes[0..4] != MAGIC {
        return Ok(ins);
    }
    let stored_crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if crc32(&bytes[0..16]) != stored_crc {
        return Ok(ins);
    }
    ins.version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    ins.fingerprint = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&ins.version) {
        return Ok(ins);
    }
    ins.header_ok = true;
    let mut entries = BTreeMap::new();
    let mut report = ScanReport::default();
    scan_records(
        &bytes,
        HEADER_LEN,
        ins.version,
        &mut entries,
        &mut report,
        false,
    );
    ins.records_scanned = report.loaded;
    ins.quarantined = report.quarantined;
    ins.torn_tail_bytes = report.torn_tail_bytes;
    ins.live_records = entries.len();
    ins.live_bytes = entries.keys().map(|k| record_len(k) as u64).sum();
    ins.dead_bytes = ins
        .file_bytes
        .saturating_sub(HEADER_LEN as u64)
        .saturating_sub(ins.live_bytes);
    ins.total_hits = entries.values().map(|r| r.hits).sum();
    Ok(ins)
}

/// How strictly a file header's fingerprint must match the handle's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FingerprintRule {
    /// Bit-for-bit equality. Merge sources use this: merging is an
    /// explicit "these are the same device" claim, so a namespace
    /// mismatch there is an operator error, not cohabitation.
    Exact,
    /// Open/refresh relaxation: two *backend-namespaced* fingerprints
    /// (tag byte `0xB5`, see `paqoc_device::fingerprint`) may cohabit
    /// one file. Every composite cache key is fingerprint-prefixed, so
    /// cohabitation shares bytes without ever cross-serving a pulse.
    /// A legacy fingerprint on either side keeps exact-match rotation.
    Cohabit,
}

fn check_header(
    bytes: &[u8],
    fingerprint: u64,
    rule: FingerprintRule,
) -> Result<u32, RejectReason> {
    if bytes.len() < HEADER_LEN || bytes[0..4] != MAGIC {
        return Err(RejectReason::BadHeader);
    }
    let stored_crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if crc32(&bytes[0..16]) != stored_crc {
        return Err(RejectReason::BadHeader);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(RejectReason::Version { found: version });
    }
    let found = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if found != fingerprint {
        let cohabit = rule == FingerprintRule::Cohabit
            && paqoc_device::is_namespaced(found)
            && paqoc_device::is_namespaced(fingerprint);
        if !cohabit {
            return Err(RejectReason::Fingerprint {
                found,
                expected: fingerprint,
            });
        }
        paqoc_telemetry::counter("store.ns_cohabit", 1);
    }
    Ok(version)
}

#[derive(Default)]
struct ScanReport {
    loaded: usize,
    quarantined: usize,
    torn_tail_bytes: u64,
}

/// Scans record frames in `bytes` starting at `start` into `entries`
/// (duplicate keys: last wins). Returns the offset of the first byte
/// **not** consumed.
///
/// `tail_sensitive` is the live-reader mode: trailing anomalies (a
/// partial frame, or a CRC mismatch on the very last frame) are treated
/// as a concurrent append in progress — the scan stops before them
/// without counting damage, so the next refresh retries from there. In
/// the default (loader) mode they are counted as torn tail /
/// quarantined exactly as v1 did.
fn scan_records(
    bytes: &[u8],
    start: usize,
    version: u32,
    entries: &mut BTreeMap<String, StoredPulse>,
    report: &mut ScanReport,
    tail_sensitive: bool,
) -> usize {
    let mut offset = start;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < 8 {
            // A frame header cannot fit: torn tail (or an append still
            // in flight, for a live reader).
            if !tail_sensitive {
                report.torn_tail_bytes += remaining as u64;
            }
            return offset;
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_LEN {
            // The length prefix itself is implausible, so framing beyond
            // this point cannot be trusted: quarantine the rest (or, for
            // a live reader, wait — the writer will scrub or compact).
            if !tail_sensitive {
                report.quarantined += 1;
                report.torn_tail_bytes += remaining as u64;
            }
            return offset;
        }
        if remaining < 8 + len {
            // Crash mid-append: the payload never fully landed.
            if !tail_sensitive {
                report.torn_tail_bytes += remaining as u64;
            }
            return offset;
        }
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let payload = &bytes[offset + 8..offset + 8 + len];
        if crc32(payload) != crc {
            if tail_sensitive && offset + 8 + len == bytes.len() {
                // The final frame may simply not have fully landed yet.
                return offset;
            }
            report.quarantined += 1;
            offset += 8 + len;
            continue;
        }
        offset += 8 + len;
        match decode_payload(version, payload) {
            Some((key, rec)) if rec.estimate.is_well_formed() => {
                report.loaded += 1;
                entries.insert(key, rec); // duplicate keys: last wins
            }
            _ => report.quarantined += 1,
        }
    }
    offset
}

/// Writes header + one record per entry to `path.tmp`, fsyncs it,
/// renames it over `path` and fsyncs the directory. Injected IO faults
/// (sync/rename) abort before the rename, leaving the original file
/// untouched.
fn write_atomically(
    path: &Path,
    fingerprint: u64,
    entries: &BTreeMap<String, StoredPulse>,
    faults: Option<&IoFaultInjector>,
) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&encode_header(fingerprint))?;
        for (key, rec) in entries {
            f.write_all(&encode_record_meta(
                key,
                &rec.estimate,
                rec.hits,
                rec.last_access,
            ))?;
        }
        if let Some(e) = faults.and_then(|f| f.fail_sync()) {
            drop(f);
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        f.sync_all()?;
    }
    if let Some(e) = faults.and_then(|f| f.fail_rename()) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself. Directory fsync is best-effort: some
    // filesystems refuse to open directories, and the rename alone is
    // already atomic on every platform we target.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("paqoc-store-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    fn est(latency_ns: f64) -> PulseEstimate {
        PulseEstimate {
            latency_ns,
            latency_dt: (latency_ns / 0.125).ceil() as u64,
            fidelity: 0.999,
            cost_units: 1.5,
        }
    }

    #[test]
    fn roundtrips_across_reopen() {
        let path = tmp("roundtrip.pqps");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = PulseStore::open(&path, 0xDEAD).expect("open");
            assert!(s.is_empty());
            s.put("cx", est(14.0)).expect("put");
            s.put("h", est(5.0)).expect("put");
            s.sync().expect("sync");
        }
        let s = PulseStore::open(&path, 0xDEAD).expect("reopen");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("cx"), Some(est(14.0)));
        assert_eq!(s.get("h"), Some(est(5.0)));
        assert!(!s.recovery().recovered());
        assert_eq!(s.role(), StoreRole::Writer);
    }

    #[test]
    fn duplicate_key_last_wins_and_compacts() {
        let path = tmp("dup.pqps");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = PulseStore::open(&path, 1).expect("open");
            s.put("k", est(10.0)).expect("put");
            s.put("k", est(20.0)).expect("put");
            s.put("k", est(30.0)).expect("put");
            assert_eq!(s.len(), 1);
            assert_eq!(s.dead_bytes(), 2 * record_len("k") as u64);
            s.compact().expect("compact");
            assert_eq!(s.dead_bytes(), 0);
        }
        let size = std::fs::metadata(&path).expect("meta").len() as usize;
        assert_eq!(size, HEADER_LEN + record_len("k"));
        let s = PulseStore::open(&path, 1).expect("reopen");
        assert_eq!(s.get("k"), Some(est(30.0)));
    }

    #[test]
    fn identical_put_is_a_no_op_on_disk() {
        let path = tmp("noop.pqps");
        let _ = std::fs::remove_file(&path);
        let mut s = PulseStore::open(&path, 1).expect("open");
        s.put("k", est(10.0)).expect("put");
        let size = std::fs::metadata(&path).expect("meta").len();
        for _ in 0..5 {
            s.put("k", est(10.0)).expect("put");
        }
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), size);
    }

    #[test]
    fn foreign_fingerprint_is_rejected_not_reused() {
        let path = tmp("fp.pqps");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = PulseStore::open(&path, 0xAAAA).expect("open");
            s.put("cx", est(14.0)).expect("put");
        }
        let s = PulseStore::open(&path, 0xBBBB).expect("reopen");
        assert!(s.is_empty(), "stale cache must not be reused");
        assert_eq!(
            s.recovery().rejected,
            Some(RejectReason::Fingerprint {
                found: 0xAAAA,
                expected: 0xBBBB
            })
        );
        // The rotation is durable: reopening with the *new* fingerprint
        // finds a clean, accepted file.
        drop(s);
        let s = PulseStore::open(&path, 0xBBBB).expect("third open");
        assert!(s.recovery().rejected.is_none());
    }

    #[test]
    fn namespaced_fingerprints_cohabit_one_file() {
        let fp_a = paqoc_device::encode_namespaced(paqoc_device::NS_HEAVY_HEX, 0x0101, 0x1234);
        let fp_b =
            paqoc_device::encode_namespaced(paqoc_device::NS_TUNABLE_COUPLER, 0x0202, 0x5678);
        assert_ne!(fp_a, fp_b);
        let path = tmp("cohabit.pqps");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = PulseStore::open(&path, fp_a).expect("open a");
            s.put(&format!("{fp_a:016x}/cx"), est(14.0)).expect("put");
        }
        // A second namespaced backend opens the same file: no rotation,
        // the first backend's records survive.
        {
            let mut s = PulseStore::open(&path, fp_b).expect("open b");
            assert!(s.recovery().rejected.is_none(), "namespaced fps cohabit");
            assert_eq!(s.len(), 1, "backend A's record survives B's open");
            assert!(s.get(&format!("{fp_b:016x}/cx")).is_none());
            s.put(&format!("{fp_b:016x}/cx"), est(9.0)).expect("put");
        }
        // And back: A sees both namespaces' records, keys disjoint.
        let s = PulseStore::open(&path, fp_a).expect("reopen a");
        assert!(s.recovery().rejected.is_none());
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&format!("{fp_a:016x}/cx")), Some(est(14.0)));
        assert_eq!(s.get(&format!("{fp_b:016x}/cx")), Some(est(9.0)));
    }

    #[test]
    fn legacy_vs_namespaced_still_rotates() {
        let legacy = 0x9182_8249_684c_0a3eu64;
        let namespaced = paqoc_device::encode_namespaced(paqoc_device::NS_HEAVY_HEX, 7, 0xABCD);
        let path = tmp("mixed_fp.pqps");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = PulseStore::open(&path, legacy).expect("open legacy");
            s.put("cx", est(14.0)).expect("put");
        }
        let s = PulseStore::open(&path, namespaced).expect("open namespaced");
        assert!(
            s.recovery().rejected.is_some(),
            "legacy on either side keeps exact-match rotation"
        );
        assert!(s.is_empty());
    }

    #[test]
    fn merge_stays_exact_even_for_namespaced_fingerprints() {
        let fp_a = paqoc_device::encode_namespaced(paqoc_device::NS_HEAVY_HEX, 1, 0x1111);
        let fp_b = paqoc_device::encode_namespaced(paqoc_device::NS_TUNABLE_COUPLER, 2, 0x2222);
        let src = tmp("merge_ns_src.pqps");
        let dst = tmp("merge_ns_dst.pqps");
        let _ = std::fs::remove_file(&src);
        let _ = std::fs::remove_file(&dst);
        {
            let mut s = PulseStore::open(&src, fp_b).expect("open src");
            s.put("k", est(3.0)).expect("put");
        }
        let mut d = PulseStore::open(&dst, fp_a).expect("open dst");
        let err = d
            .merge_from_file(&src)
            .expect_err("cross-backend merge must fail");
        assert!(
            err.to_string().contains("rejected"),
            "merge rejects foreign namespaces: {err}"
        );
    }

    #[test]
    fn foreign_magic_is_rejected() {
        let path = tmp("magic.pqps");
        std::fs::write(&path, b"not a pulse store at all").expect("write");
        let s = PulseStore::open(&path, 7).expect("open");
        assert!(s.is_empty());
        assert_eq!(s.recovery().rejected, Some(RejectReason::BadHeader));
    }

    #[test]
    fn ill_formed_estimates_never_enter_the_file() {
        let path = tmp("nan.pqps");
        let _ = std::fs::remove_file(&path);
        let mut s = PulseStore::open(&path, 1).expect("open");
        let mut bad = est(10.0);
        bad.fidelity = f64::NAN;
        s.put("nan", bad).expect("put");
        assert!(s.get("nan").is_none());
        assert_eq!(
            std::fs::metadata(&path).expect("meta").len() as usize,
            HEADER_LEN
        );
    }

    #[test]
    fn record_len_matches_encoding() {
        let r = encode_record("some-key", &est(1.0));
        assert_eq!(r.len(), record_len("some-key"));
    }

    #[test]
    fn hits_survive_compaction_and_reopen() {
        let path = tmp("hits.pqps");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = PulseStore::open(&path, 3).expect("open");
            s.put("cx", est(14.0)).expect("put");
            s.put("h", est(5.0)).expect("put");
            for _ in 0..4 {
                assert_eq!(s.hit("cx"), Some(est(14.0)));
            }
            assert_eq!(s.hit("h"), Some(est(5.0)));
            assert_eq!(s.peek("cx").expect("cx").hits, 4);
            s.compact().expect("compact");
        }
        let s = PulseStore::open(&path, 3).expect("reopen");
        assert_eq!(s.peek("cx").expect("cx").hits, 4);
        assert_eq!(s.peek("h").expect("h").hits, 1);
        assert!(
            s.peek("h").expect("h").last_access > s.peek("cx").expect("cx").last_access,
            "logical recency must persist"
        );
    }

    #[test]
    fn overwrite_preserves_hit_count() {
        let path = tmp("overwrite-hits.pqps");
        let _ = std::fs::remove_file(&path);
        let mut s = PulseStore::open(&path, 3).expect("open");
        s.put("k", est(10.0)).expect("put");
        s.hit("k");
        s.hit("k");
        s.put("k", est(20.0)).expect("overwrite");
        assert_eq!(s.peek("k").expect("k").hits, 2);
        assert_eq!(s.get("k"), Some(est(20.0)));
    }
}
