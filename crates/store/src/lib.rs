//! # paqoc-store
//!
//! A crash-safe, append-only persistent pulse store. AccQOC's central
//! acceleration is a pulse database built once and amortized across
//! circuits; this crate makes that database durable across processes so
//! a warm compilation performs **zero** pulse generations for shapes it
//! has already seen.
//!
//! ## On-disk format (version 1)
//!
//! ```text
//! header (20 bytes):
//!   magic        b"PQPS"           4 bytes
//!   version      u32 LE            4 bytes
//!   fingerprint  u64 LE            8 bytes   device fingerprint, see below
//!   header_crc   u32 LE            4 bytes   CRC-32 of the 16 bytes above
//! record (repeated, append-only):
//!   len          u32 LE            payload length in bytes
//!   crc          u32 LE            CRC-32 of the payload
//!   payload:
//!     key_len    u32 LE
//!     key        key_len bytes     UTF-8 canonical gate-group key
//!     latency_ns f64 LE bits
//!     latency_dt u64 LE
//!     fidelity   f64 LE bits
//!     cost_units f64 LE bits
//! ```
//!
//! The header's `fingerprint` binds the file to one device configuration
//! (Hamiltonian limits, topology, pulse discretization — see
//! `Device::fingerprint`): a store written for a different device, format
//! version or magic is **rejected and rotated to a fresh file** rather
//! than silently reused, because a pulse tuned for one coupler limit is
//! wrong on another.
//!
//! ## Crash safety and recovery
//!
//! Appends are length-prefixed and CRC-guarded, so loading tolerates:
//!
//! * a **torn tail** (a crash mid-append): the incomplete record is
//!   truncated away;
//! * **flipped bits**: a record whose CRC does not match is quarantined
//!   (skipped) while later records still load;
//! * **duplicate keys**: the last record wins, giving append-only
//!   update semantics.
//!
//! Any recovery is journaled as a `store.recovered` telemetry event and
//! immediately followed by a compaction, which rewrites the clean state
//! through a temp file + atomic rename + fsync, so corruption never
//! survives a second open.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod crc32;

pub use crc32::crc32;

use paqoc_device::PulseEstimate;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File magic: "PaQoc Pulse Store".
pub const MAGIC: [u8; 4] = *b"PQPS";
/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;
/// Size of the file header in bytes.
pub const HEADER_LEN: usize = 20;
/// Sanity cap on a single record's payload: anything larger is treated
/// as corrupt framing (a flipped bit in a length prefix must not make
/// the loader swallow the rest of the file as one giant record).
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// Why a store file (or part of it) could not be used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The file does not start with [`MAGIC`] or is shorter than a header.
    BadHeader,
    /// The file's format version is not [`FORMAT_VERSION`].
    Version {
        /// Version found in the file.
        found: u32,
    },
    /// The file was written for a different device configuration.
    Fingerprint {
        /// Fingerprint found in the file.
        found: u64,
        /// Fingerprint of the opening device.
        expected: u64,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::BadHeader => write!(f, "missing or corrupt header"),
            RejectReason::Version { found } => {
                write!(f, "format version {found} (expected {FORMAT_VERSION})")
            }
            RejectReason::Fingerprint { found, expected } => write!(
                f,
                "device fingerprint {found:016x} (expected {expected:016x})"
            ),
        }
    }
}

/// An I/O failure while opening, appending to or compacting a store.
#[derive(Debug)]
pub struct StoreError {
    /// Operation that failed (`"open"`, `"append"`, `"compact"`, …).
    pub op: &'static str,
    /// The store path involved.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pulse store {} failed on {}: {}",
            self.op,
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// What loading a store had to do to reach a clean state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Well-formed records loaded (before last-wins dedup).
    pub loaded: usize,
    /// Corrupt records quarantined (CRC mismatch, bad framing, malformed
    /// payload, out-of-range estimate).
    pub quarantined: usize,
    /// Bytes of torn tail truncated away.
    pub torn_tail_bytes: u64,
    /// Set when the whole file was rejected and rotated to a fresh one.
    pub rejected: Option<RejectReason>,
}

impl RecoveryReport {
    /// `true` when the loader had to repair, quarantine or reject
    /// anything — i.e. the file was not already clean.
    pub fn recovered(&self) -> bool {
        self.quarantined > 0 || self.torn_tail_bytes > 0 || self.rejected.is_some()
    }
}

/// Serializes one record (length prefix + CRC + payload) for `key`.
pub fn encode_record(key: &str, est: &PulseEstimate) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + key.len() + 32);
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(key.as_bytes());
    payload.extend_from_slice(&est.latency_ns.to_bits().to_le_bytes());
    payload.extend_from_slice(&est.latency_dt.to_le_bytes());
    payload.extend_from_slice(&est.fidelity.to_bits().to_le_bytes());
    payload.extend_from_slice(&est.cost_units.to_bits().to_le_bytes());
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// On-disk size in bytes of the record for `key` (framing included).
/// Useful for tests that aim corruption at a specific record.
pub fn record_len(key: &str) -> usize {
    8 + 4 + key.len() + 32
}

fn decode_payload(payload: &[u8]) -> Option<(String, PulseEstimate)> {
    if payload.len() < 4 {
        return None;
    }
    let key_len = u32::from_le_bytes(payload[0..4].try_into().ok()?) as usize;
    if payload.len() != 4 + key_len + 32 {
        return None;
    }
    let key = std::str::from_utf8(&payload[4..4 + key_len])
        .ok()?
        .to_string();
    let tail = &payload[4 + key_len..];
    let f64_at = |i: usize| -> f64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&tail[i..i + 8]);
        f64::from_bits(u64::from_le_bytes(b))
    };
    let u64_at = |i: usize| -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&tail[i..i + 8]);
        u64::from_le_bytes(b)
    };
    let est = PulseEstimate {
        latency_ns: f64_at(0),
        latency_dt: u64_at(8),
        fidelity: f64_at(16),
        cost_units: f64_at(24),
    };
    Some((key, est))
}

fn encode_header(fingerprint: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC);
    h[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&fingerprint.to_le_bytes());
    let crc = crc32(&h[0..16]);
    h[16..20].copy_from_slice(&crc.to_le_bytes());
    h
}

/// The persistent pulse store (see the module docs for format and
/// recovery guarantees).
///
/// All loaded entries are kept in memory (a pulse record is ~100 bytes;
/// even a million-pulse database is small), so [`PulseStore::get`] is a
/// hash lookup and the file is only touched by appends and compaction.
#[derive(Debug)]
pub struct PulseStore {
    path: PathBuf,
    file: File,
    entries: BTreeMap<String, PulseEstimate>,
    fingerprint: u64,
    recovery: RecoveryReport,
    /// Records appended since the file was last known duplicate-free;
    /// drives the advisory [`PulseStore::should_compact`].
    stale_records: usize,
}

impl PulseStore {
    /// Opens (or creates) the store at `path` for a device with the
    /// given fingerprint.
    ///
    /// A file with a corrupt header, foreign magic, other format version
    /// or different fingerprint is **rotated**: its contents are
    /// discarded and a fresh store is started, with the rejection
    /// recorded in [`PulseStore::recovery`] and journaled as a
    /// `store.recovered` event. Torn tails and corrupt records are
    /// repaired the same way (see module docs).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] only for genuine I/O failures (permission,
    /// missing parent directory, disk errors) — never for corruption,
    /// which is always recoverable by construction.
    pub fn open(path: impl Into<PathBuf>, fingerprint: u64) -> Result<Self, StoreError> {
        let path = path.into();
        let err = |op: &'static str, path: &Path| {
            let path = path.to_path_buf();
            move |source: std::io::Error| StoreError { op, path, source }
        };

        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(err("open", &path)(e)),
        };

        let mut recovery = RecoveryReport::default();
        let mut entries: BTreeMap<String, PulseEstimate> = BTreeMap::new();

        if !bytes.is_empty() {
            match check_header(&bytes, fingerprint) {
                Err(reason) => recovery.rejected = Some(reason),
                Ok(()) => scan_records(&bytes, &mut entries, &mut recovery),
            }
        }

        let fresh = bytes.is_empty() || recovery.rejected.is_some();
        if fresh {
            // Start (or restart) with a clean header. Rotation goes
            // through the same atomic temp+rename path as compaction so
            // a crash here can never leave a half-written header.
            write_atomically(&path, fingerprint, &entries).map_err(err("create", &path))?;
        } else if recovery.recovered() {
            // Scrub quarantined records and the torn tail out of the
            // file so corruption never survives a second open.
            write_atomically(&path, fingerprint, &entries).map_err(err("recover", &path))?;
        }

        if recovery.recovered() {
            paqoc_telemetry::counter("store.recovered", 1);
            paqoc_telemetry::counter("store.quarantined_records", recovery.quarantined as u64);
            paqoc_telemetry::event!(
                "store.recovered",
                path = path.display().to_string(),
                loaded = recovery.loaded as u64,
                quarantined = recovery.quarantined as u64,
                torn_tail_bytes = recovery.torn_tail_bytes,
                rejected = recovery
                    .rejected
                    .as_ref()
                    .map(|r| r.to_string())
                    .unwrap_or_default(),
            );
        }
        paqoc_telemetry::counter("store.opens", 1);
        paqoc_telemetry::counter("store.loaded_records", entries.len() as u64);

        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(err("open", &path))?;
        Ok(PulseStore {
            path,
            file,
            entries,
            fingerprint,
            recovery,
            stale_records: 0,
        })
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The device fingerprint this store is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// What loading had to repair (all zeros/`None` for a clean open).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of distinct pulses stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no pulses are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the stored estimate for a canonical key.
    pub fn get(&self, key: &str) -> Option<PulseEstimate> {
        self.entries.get(key).copied()
    }

    /// Iterates over all stored `(key, estimate)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PulseEstimate)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Appends (or overwrites) the estimate for `key`.
    ///
    /// Write-behind contract: the record is appended and flushed to the
    /// OS immediately (a process crash loses nothing already `put`), but
    /// durably fsynced only by [`PulseStore::sync`] or
    /// [`PulseStore::compact`]. A `put` equal to the stored value is a
    /// no-op so repeated warm runs do not grow the file.
    ///
    /// Ill-formed estimates (NaN/∞/out-of-range — see
    /// [`PulseEstimate::is_well_formed`]) are rejected without touching
    /// the file: the store can only ever serve estimates that passed the
    /// same validation generation does.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure; the in-memory view is not
    /// updated in that case.
    pub fn put(&mut self, key: &str, est: PulseEstimate) -> Result<(), StoreError> {
        if !est.is_well_formed() {
            paqoc_telemetry::counter("store.rejected_estimates", 1);
            return Ok(());
        }
        if self.entries.get(key) == Some(&est) {
            return Ok(());
        }
        let record = encode_record(key, &est);
        self.file
            .write_all(&record)
            .and_then(|()| self.file.flush())
            .map_err(|source| StoreError {
                op: "append",
                path: self.path.clone(),
                source,
            })?;
        if self.entries.insert(key.to_string(), est).is_some() {
            self.stale_records += 1;
        }
        paqoc_telemetry::counter("store.appends", 1);
        Ok(())
    }

    /// Durably fsyncs all appended records.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the fsync fails.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_all().map_err(|source| StoreError {
            op: "sync",
            path: self.path.clone(),
            source,
        })
    }

    /// `true` when enough overwritten (duplicate-key) records have
    /// accumulated that a [`PulseStore::compact`] would meaningfully
    /// shrink the file.
    pub fn should_compact(&self) -> bool {
        self.stale_records > 64 && self.stale_records > self.entries.len()
    }

    /// Rewrites the store as one clean record per key, via a temp file,
    /// an atomic rename and an fsync of file and directory — a crash at
    /// any point leaves either the old file or the new one, never a
    /// hybrid.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure; the previous file is left
    /// untouched in that case.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        write_atomically(&self.path, self.fingerprint, &self.entries).map_err(|source| {
            StoreError {
                op: "compact",
                path: self.path.clone(),
                source,
            }
        })?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|source| StoreError {
                op: "compact",
                path: self.path.clone(),
                source,
            })?;
        self.stale_records = 0;
        paqoc_telemetry::counter("store.compactions", 1);
        Ok(())
    }
}

fn check_header(bytes: &[u8], fingerprint: u64) -> Result<(), RejectReason> {
    if bytes.len() < HEADER_LEN || bytes[0..4] != MAGIC {
        return Err(RejectReason::BadHeader);
    }
    let stored_crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if crc32(&bytes[0..16]) != stored_crc {
        return Err(RejectReason::BadHeader);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(RejectReason::Version { found: version });
    }
    let found = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if found != fingerprint {
        return Err(RejectReason::Fingerprint {
            found,
            expected: fingerprint,
        });
    }
    Ok(())
}

fn scan_records(
    bytes: &[u8],
    entries: &mut BTreeMap<String, PulseEstimate>,
    recovery: &mut RecoveryReport,
) {
    let mut offset = HEADER_LEN;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < 8 {
            // A frame header cannot fit: torn tail.
            recovery.torn_tail_bytes += remaining as u64;
            return;
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_LEN {
            // The length prefix itself is implausible, so framing beyond
            // this point cannot be trusted: quarantine the rest.
            recovery.quarantined += 1;
            recovery.torn_tail_bytes += remaining as u64;
            return;
        }
        if remaining < 8 + len {
            // Crash mid-append: the payload never fully landed.
            recovery.torn_tail_bytes += remaining as u64;
            return;
        }
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let payload = &bytes[offset + 8..offset + 8 + len];
        offset += 8 + len;
        if crc32(payload) != crc {
            recovery.quarantined += 1;
            continue;
        }
        match decode_payload(payload) {
            Some((key, est)) if est.is_well_formed() => {
                recovery.loaded += 1;
                entries.insert(key, est); // duplicate keys: last wins
            }
            _ => recovery.quarantined += 1,
        }
    }
}

/// Writes header + one record per entry to `path.tmp`, fsyncs it,
/// renames it over `path` and fsyncs the directory.
fn write_atomically(
    path: &Path,
    fingerprint: u64,
    entries: &BTreeMap<String, PulseEstimate>,
) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&encode_header(fingerprint))?;
        for (key, est) in entries {
            f.write_all(&encode_record(key, est))?;
        }
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself. Directory fsync is best-effort: some
    // filesystems refuse to open directories, and the rename alone is
    // already atomic on every platform we target.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("paqoc-store-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    fn est(latency_ns: f64) -> PulseEstimate {
        PulseEstimate {
            latency_ns,
            latency_dt: (latency_ns / 0.125).ceil() as u64,
            fidelity: 0.999,
            cost_units: 1.5,
        }
    }

    #[test]
    fn roundtrips_across_reopen() {
        let path = tmp("roundtrip.pqps");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = PulseStore::open(&path, 0xDEAD).expect("open");
            assert!(s.is_empty());
            s.put("cx", est(14.0)).expect("put");
            s.put("h", est(5.0)).expect("put");
            s.sync().expect("sync");
        }
        let s = PulseStore::open(&path, 0xDEAD).expect("reopen");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("cx"), Some(est(14.0)));
        assert_eq!(s.get("h"), Some(est(5.0)));
        assert!(!s.recovery().recovered());
    }

    #[test]
    fn duplicate_key_last_wins_and_compacts() {
        let path = tmp("dup.pqps");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = PulseStore::open(&path, 1).expect("open");
            s.put("k", est(10.0)).expect("put");
            s.put("k", est(20.0)).expect("put");
            s.put("k", est(30.0)).expect("put");
            assert_eq!(s.len(), 1);
            s.compact().expect("compact");
        }
        let size = std::fs::metadata(&path).expect("meta").len() as usize;
        assert_eq!(size, HEADER_LEN + record_len("k"));
        let s = PulseStore::open(&path, 1).expect("reopen");
        assert_eq!(s.get("k"), Some(est(30.0)));
    }

    #[test]
    fn identical_put_is_a_no_op_on_disk() {
        let path = tmp("noop.pqps");
        let _ = std::fs::remove_file(&path);
        let mut s = PulseStore::open(&path, 1).expect("open");
        s.put("k", est(10.0)).expect("put");
        let size = std::fs::metadata(&path).expect("meta").len();
        for _ in 0..5 {
            s.put("k", est(10.0)).expect("put");
        }
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), size);
    }

    #[test]
    fn foreign_fingerprint_is_rejected_not_reused() {
        let path = tmp("fp.pqps");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = PulseStore::open(&path, 0xAAAA).expect("open");
            s.put("cx", est(14.0)).expect("put");
        }
        let s = PulseStore::open(&path, 0xBBBB).expect("reopen");
        assert!(s.is_empty(), "stale cache must not be reused");
        assert_eq!(
            s.recovery().rejected,
            Some(RejectReason::Fingerprint {
                found: 0xAAAA,
                expected: 0xBBBB
            })
        );
        // The rotation is durable: reopening with the *new* fingerprint
        // finds a clean, accepted file.
        drop(s);
        let s = PulseStore::open(&path, 0xBBBB).expect("third open");
        assert!(s.recovery().rejected.is_none());
    }

    #[test]
    fn foreign_magic_is_rejected() {
        let path = tmp("magic.pqps");
        std::fs::write(&path, b"not a pulse store at all").expect("write");
        let s = PulseStore::open(&path, 7).expect("open");
        assert!(s.is_empty());
        assert_eq!(s.recovery().rejected, Some(RejectReason::BadHeader));
    }

    #[test]
    fn ill_formed_estimates_never_enter_the_file() {
        let path = tmp("nan.pqps");
        let _ = std::fs::remove_file(&path);
        let mut s = PulseStore::open(&path, 1).expect("open");
        let mut bad = est(10.0);
        bad.fidelity = f64::NAN;
        s.put("nan", bad).expect("put");
        assert!(s.get("nan").is_none());
        assert_eq!(
            std::fs::metadata(&path).expect("meta").len() as usize,
            HEADER_LEN
        );
    }

    #[test]
    fn record_len_matches_encoding() {
        let r = encode_record("some-key", &est(1.0));
        assert_eq!(r.len(), record_len("some-key"));
    }
}
