//! CRC-32 (IEEE 802.3 polynomial), table-driven, computed at compile
//! time. The workspace is dependency-free by policy, so the checksum
//! behind every pulse-store record lives here rather than in a crate.

/// Reflected IEEE polynomial (the one used by zip, PNG, Ethernet).
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let clean = b"pulse-store record payload".to_vec();
        let base = crc32(&clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut flipped = clean.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "byte {byte} bit {bit}");
            }
        }
    }
}
