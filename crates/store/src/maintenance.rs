//! Background maintenance: a small RAII thread that ticks a closure at
//! a fixed interval and stops promptly (condvar, not poll) on drop.
//!
//! The store itself is a plain `&mut self` value — callers that share
//! it behind a lock (the executor's `SharedPulseTable`, the bench bin)
//! use [`spawn_maintenance`] to run `PulseStore::maintain` off the
//! compilation path: eviction and compaction then happen on a
//! housekeeping thread while workers only pay the lock hand-off.

use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// RAII handle to a background maintenance thread. Dropping it (or
/// calling [`MaintenanceHandle::stop`]) wakes the thread and joins it.
pub struct MaintenanceHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    join: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MaintenanceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceHandle")
            .field("running", &self.join.is_some())
            .finish()
    }
}

/// Spawns a named background thread that calls `tick` every `interval`
/// until the handle is dropped or `tick` returns `false` (the idiom for
/// "the object I maintain is gone" — e.g. a failed `Weak::upgrade`).
///
/// The first tick runs one `interval` after spawn, not immediately, so
/// constructing a handle is free on the caller's hot path.
pub fn spawn_maintenance<F>(name: &str, interval: Duration, mut tick: F) -> MaintenanceHandle
where
    F: FnMut() -> bool + Send + 'static,
{
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let thread_stop = Arc::clone(&stop);
    let join = thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            let (lock, cvar) = &*thread_stop;
            loop {
                {
                    let stopped = lock.lock().unwrap_or_else(|p| p.into_inner());
                    let (guard, _timeout) = cvar
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|p| p.into_inner());
                    if *guard {
                        return;
                    }
                }
                if !tick() {
                    return;
                }
            }
        })
        .expect("spawn maintenance thread");
    MaintenanceHandle {
        stop,
        join: Some(join),
    }
}

impl MaintenanceHandle {
    /// Stops the thread now and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
        cvar.notify_all();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for MaintenanceHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ticks_repeatedly_and_stops_on_drop() {
        let ticks = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&ticks);
        let handle = spawn_maintenance("paqoc-maint-test", Duration::from_millis(1), move || {
            seen.fetch_add(1, Ordering::SeqCst);
            true
        });
        while ticks.load(Ordering::SeqCst) < 3 {
            thread::sleep(Duration::from_millis(1));
        }
        drop(handle);
        let after = ticks.load(Ordering::SeqCst);
        thread::sleep(Duration::from_millis(10));
        // At most one in-flight tick can land after the join returns.
        assert!(ticks.load(Ordering::SeqCst) <= after + 1);
    }

    #[test]
    fn false_tick_ends_the_thread() {
        let ticks = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&ticks);
        let handle = spawn_maintenance("paqoc-maint-once", Duration::from_millis(1), move || {
            seen.fetch_add(1, Ordering::SeqCst);
            false
        });
        while ticks.load(Ordering::SeqCst) < 1 {
            thread::sleep(Duration::from_millis(1));
        }
        thread::sleep(Duration::from_millis(10));
        assert_eq!(ticks.load(Ordering::SeqCst), 1);
        handle.stop();
    }

    #[test]
    fn stop_before_first_tick_never_ticks() {
        let ticks = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&ticks);
        let handle = spawn_maintenance("paqoc-maint-idle", Duration::from_secs(3600), move || {
            seen.fetch_add(1, Ordering::SeqCst);
            true
        });
        handle.stop();
        assert_eq!(ticks.load(Ordering::SeqCst), 0);
    }
}
