//! Advisory file locking for writer election (single-writer/multi-reader).
//!
//! The lock lives on a sibling `<store>.lock` file that is **never
//! renamed**: compaction atomically replaces the data file, and a lock
//! held on the data file itself would silently keep guarding the old,
//! unlinked inode after the first compaction. `flock(2)` locks are
//! advisory, attached to the open file description, and released by the
//! kernel when the holder's last descriptor closes — including on
//! `kill -9` — so a dead writer can never wedge the store.
//!
//! Only the writer takes a lock (exclusive, non-blocking). Readers hold
//! nothing: the append-only format plus the atomic compaction rename
//! keep a reader's view valid without coordination, and a lock-free
//! reader can never block writer failover after a crash.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

#[cfg(unix)]
mod sys {
    #![allow(unsafe_code)]
    use std::io;
    use std::os::unix::io::AsRawFd;

    // Same values on every unix we target (Linux, macOS, BSDs).
    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;

    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }

    /// Attempts a non-blocking exclusive lock; `Ok(false)` when another
    /// open file description (any process, or another handle in this
    /// one) already holds it.
    pub(crate) fn try_exclusive(file: &std::fs::File) -> io::Result<bool> {
        // SAFETY: `flock` is a plain syscall over a valid, owned fd and
        // an integer flag word; it neither retains the fd nor touches
        // any Rust-managed memory.
        let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) };
        if rc == 0 {
            return Ok(true);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            Ok(false)
        } else {
            Err(err)
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::io;

    /// Non-unix fallback: no advisory locking — every opener becomes the
    /// writer, restoring the single-process v1 semantics.
    pub(crate) fn try_exclusive(_file: &std::fs::File) -> io::Result<bool> {
        Ok(true)
    }
}

/// Path of the lock sibling for a store at `path` (`<path>.lock`,
/// appended to the full file name so `a.pqps` and `a.db` never share a
/// lock).
pub fn lock_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

/// Tries to become the writer for the store at `path`. Returns the held
/// lock file on success — keep it alive for the writer's lifetime — or
/// `None` when another open file description already holds it.
pub(crate) fn acquire_writer(path: &Path) -> io::Result<Option<File>> {
    let lock = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(lock_path(path))?;
    if sys::try_exclusive(&lock)? {
        Ok(Some(lock))
    } else {
        Ok(None)
    }
}
