//! v2 store behavior: writer election and read-only degradation, v1
//! read-compat and transparent upgrade, LFU eviction under a byte
//! budget, byte-accounted compaction triggers, reader refresh across
//! appends and compactions, and IO fault storms on the storage path.

use paqoc_device::{FaultConfig, IoFaultInjector, PulseEstimate};
use paqoc_store::{
    crc32, inspect, record_len, PulseStore, StoreOptions, StoreRole, FORMAT_VERSION, HEADER_LEN,
};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paqoc-store-v2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(paqoc_store::lock_path(&path));
    path
}

fn est(latency_ns: f64) -> PulseEstimate {
    PulseEstimate {
        latency_ns,
        latency_dt: (latency_ns / 0.125).ceil() as u64,
        fidelity: 0.999,
        cost_units: 1.5,
    }
}

const FP: u64 = 0xF00D;

// ---------------------------------------------------------------- lock

#[test]
fn second_handle_degrades_to_readonly_and_recovers_the_lock() {
    let path = tmp("lock.pqps");
    let mut writer = PulseStore::open(&path, FP).expect("open writer");
    assert_eq!(writer.role(), StoreRole::Writer);
    writer.put("cx", est(14.0)).expect("put");
    writer.sync().expect("sync");

    // Second handle on the same path: degraded, not failed.
    let mut reader = PulseStore::open(&path, FP).expect("open reader");
    assert_eq!(reader.role(), StoreRole::ReadOnly);
    assert_eq!(reader.get("cx"), Some(est(14.0)));

    // Writes on the degraded handle are counted and dropped.
    reader.put("dropped", est(1.0)).expect("readonly put is ok");
    assert_eq!(reader.readonly_drops(), 1);
    assert!(reader.get("dropped").is_none());
    reader.sync().expect("readonly sync is a no-op");

    // Releasing the writer frees the role for the next opener.
    drop(writer);
    let next = PulseStore::open(&path, FP).expect("reopen");
    assert_eq!(next.role(), StoreRole::Writer);
    assert_eq!(next.get("cx"), Some(est(14.0)));
}

#[test]
fn requested_readonly_never_takes_the_lock() {
    let path = tmp("ro-req.pqps");
    {
        let mut w = PulseStore::open(&path, FP).expect("open");
        w.put("k", est(2.0)).expect("put");
    }
    let ro = PulseStore::open_with(
        &path,
        FP,
        StoreOptions {
            read_only: true,
            ..StoreOptions::default()
        },
    )
    .expect("open read-only");
    assert_eq!(ro.role(), StoreRole::ReadOnly);
    assert_eq!(ro.get("k"), Some(est(2.0)));
    // The lock is free: a writer can still open alongside.
    let w = PulseStore::open(&path, FP).expect("writer");
    assert_eq!(w.role(), StoreRole::Writer);
}

#[test]
fn readonly_open_is_journaled() {
    paqoc_telemetry::set_enabled(true);
    let path = tmp("ro-journal.pqps");
    let _writer = PulseStore::open(&path, FP).expect("writer");
    let _reader = PulseStore::open(&path, FP).expect("reader");
    let snap = paqoc_telemetry::snapshot();
    let ours = snap.events.iter().any(|e| {
        e.name == "store.readonly"
            && e.fields.iter().any(|(k, v)| {
                k == "path"
                    && matches!(v, paqoc_telemetry::FieldValue::Str(s)
                        if s == &path.display().to_string())
            })
    });
    assert!(
        ours,
        "expected a store.readonly event for {}",
        path.display()
    );
    assert!(*snap.counters.get("store.readonly").unwrap_or(&0) >= 1);
}

// ------------------------------------------------------------- refresh

#[test]
fn reader_refresh_picks_up_appends_incrementally() {
    let path = tmp("refresh-append.pqps");
    let mut writer = PulseStore::open(&path, FP).expect("writer");
    writer.put("a", est(1.0)).expect("put");
    writer.sync().expect("sync");

    let mut reader = PulseStore::open(&path, FP).expect("reader");
    assert_eq!(reader.len(), 1);

    writer.put("b", est(2.0)).expect("put");
    writer.put("c", est(3.0)).expect("put");
    writer.sync().expect("sync");

    let seen = reader.refresh().expect("refresh");
    assert_eq!(seen, 2, "delta scan sees exactly the two appends");
    assert_eq!(reader.get("b"), Some(est(2.0)));
    assert_eq!(reader.get("c"), Some(est(3.0)));
    assert_eq!(reader.refresh().expect("idle refresh"), 0);
}

#[test]
fn reader_survives_concurrent_compaction() {
    let path = tmp("refresh-compact.pqps");
    let mut writer = PulseStore::open(&path, FP).expect("writer");
    for i in 0..8 {
        writer
            .put(&format!("k{i}"), est(1.0 + i as f64))
            .expect("put");
    }
    // Overwrites create dead bytes for the compaction to reclaim.
    for i in 0..8 {
        writer
            .put(&format!("k{i}"), est(10.0 + i as f64))
            .expect("put");
    }
    writer.sync().expect("sync");

    let mut reader = PulseStore::open(&path, FP).expect("reader");
    assert_eq!(reader.len(), 8);

    writer.compact().expect("compact");
    writer.put("post", est(99.0)).expect("put after compact");
    writer.sync().expect("sync");

    // The inode changed under the reader; refresh reloads the snapshot.
    reader.refresh().expect("refresh");
    assert_eq!(reader.len(), 9);
    for i in 0..8 {
        assert_eq!(reader.get(&format!("k{i}")), Some(est(10.0 + i as f64)));
    }
    assert_eq!(reader.get("post"), Some(est(99.0)));
}

#[test]
fn reader_waits_out_a_partial_tail_frame() {
    let path = tmp("refresh-torn.pqps");
    let mut writer = PulseStore::open(&path, FP).expect("writer");
    writer.put("a", est(1.0)).expect("put");
    writer.sync().expect("sync");

    let mut reader = PulseStore::open(&path, FP).expect("reader");
    assert_eq!(reader.len(), 1);

    // Simulate an append caught mid-write: a record prefix at the tail.
    let full = paqoc_store::encode_record("b", &est(2.0));
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("open");
    use std::io::Write as _;
    f.write_all(&full[..full.len() / 2]).expect("partial");
    drop(f);

    assert_eq!(reader.refresh().expect("refresh"), 0);
    assert_eq!(reader.len(), 1, "partial frame must not load");
    assert_eq!(
        reader.recovery().torn_tail_bytes,
        0,
        "a live reader treats a partial tail as in-flight, not damage"
    );

    // The rest of the record lands; the reader resumes from its offset.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("open");
    f.write_all(&full[full.len() / 2..]).expect("rest");
    drop(f);
    assert_eq!(reader.refresh().expect("refresh"), 1);
    assert_eq!(reader.get("b"), Some(est(2.0)));
}

#[test]
fn reader_opened_before_the_file_exists_catches_up() {
    let path = tmp("refresh-late.pqps");
    let mut reader = PulseStore::open_with(
        &path,
        FP,
        StoreOptions {
            read_only: true,
            ..StoreOptions::default()
        },
    )
    .expect("reader on missing file");
    assert!(reader.is_empty());

    let mut writer = PulseStore::open(&path, FP).expect("writer");
    writer.put("late", est(4.0)).expect("put");
    writer.sync().expect("sync");

    reader.refresh().expect("refresh");
    assert_eq!(reader.get("late"), Some(est(4.0)));
}

// ------------------------------------------------------- v1 compat

fn write_v1_store(path: &std::path::Path, records: &[(&str, PulseEstimate)]) {
    let mut bytes = Vec::new();
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(b"PQPS");
    header[4..8].copy_from_slice(&1u32.to_le_bytes());
    header[8..16].copy_from_slice(&FP.to_le_bytes());
    let crc = crc32(&header[0..16]);
    header[16..20].copy_from_slice(&crc.to_le_bytes());
    bytes.extend_from_slice(&header);
    for (key, est) in records {
        // v1 payload: key_len | key | latency_ns | latency_dt | fidelity
        // | cost_units — no generational tail.
        let mut payload = Vec::new();
        payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
        payload.extend_from_slice(key.as_bytes());
        payload.extend_from_slice(&est.latency_ns.to_bits().to_le_bytes());
        payload.extend_from_slice(&est.latency_dt.to_le_bytes());
        payload.extend_from_slice(&est.fidelity.to_bits().to_le_bytes());
        payload.extend_from_slice(&est.cost_units.to_bits().to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
    }
    std::fs::write(path, bytes).expect("write v1 file");
}

#[test]
fn v1_store_opens_transparently_and_upgrades_to_v2() {
    let path = tmp("v1-upgrade.pqps");
    write_v1_store(&path, &[("cx", est(14.0)), ("h", est(5.0))]);

    let ins = inspect(&path).expect("inspect v1");
    assert!(ins.header_ok);
    assert_eq!(ins.version, 1);
    assert_eq!(ins.live_records, 2);

    let store = PulseStore::open(&path, FP).expect("open v1 under v2 code");
    assert_eq!(store.len(), 2, "all v1 records readable");
    assert_eq!(store.get("cx"), Some(est(14.0)));
    assert_eq!(store.get("h"), Some(est(5.0)));
    assert_eq!(store.peek("cx").expect("cx").hits, 0);
    assert_eq!(store.recovery().upgraded, Some(1));
    assert!(
        !store.recovery().recovered(),
        "an upgrade is not damage recovery"
    );
    drop(store);

    // The writer rewrote the file as v2 on open.
    let ins = inspect(&path).expect("inspect upgraded");
    assert_eq!(ins.version, FORMAT_VERSION);
    assert_eq!(ins.live_records, 2);
    assert!(ins.clean());

    // And a second open is a plain clean v2 open.
    let store = PulseStore::open(&path, FP).expect("reopen");
    assert_eq!(store.recovery().upgraded, None);
    assert_eq!(store.len(), 2);
}

#[test]
fn v1_store_with_torn_tail_still_recovers() {
    let path = tmp("v1-torn.pqps");
    write_v1_store(&path, &[("cx", est(14.0)), ("h", est(5.0))]);
    // Tear the last record mid-payload.
    let len = std::fs::metadata(&path).expect("meta").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open");
    f.set_len(len - 7).expect("truncate");
    drop(f);

    let store = PulseStore::open(&path, FP).expect("open");
    assert_eq!(store.len(), 1);
    assert_eq!(store.get("cx"), Some(est(14.0)));
    assert!(store.recovery().recovered());
    assert_eq!(store.recovery().upgraded, Some(1));
}

// ------------------------------------------------- eviction + budget

#[test]
fn lfu_eviction_keeps_hot_records_and_fits_the_budget() {
    paqoc_telemetry::set_enabled(true);
    let path = tmp("evict.pqps");
    // Budget: header + 6 records of our fixed key shape.
    let key = |i: usize| format!("key-{i:02}");
    let per_record = record_len(&key(0)) as u64;
    let max_bytes = HEADER_LEN as u64 + 6 * per_record;
    let mut store =
        PulseStore::open_with(&path, FP, StoreOptions::with_max_bytes(max_bytes)).expect("open");
    for i in 0..10 {
        store.put(&key(i), est(1.0 + i as f64)).expect("put");
    }
    // Heat up keys 0..6 (key 0 hottest); keys 6..10 never hit.
    for i in 0..6 {
        for _ in 0..(10 - i) {
            store.hit(&key(i));
        }
    }
    let report = store.maintain().expect("maintain");
    assert_eq!(report.evicted, 4, "evict exactly down to the budget");
    assert!(report.compacted);

    // The cold records went, lowest hit count first.
    for i in 0..6 {
        assert!(store.contains(&key(i)), "hot {} must survive", key(i));
    }
    for i in 6..10 {
        assert!(!store.contains(&key(i)), "cold {} must be evicted", key(i));
    }
    let disk = std::fs::metadata(&path).expect("meta").len();
    assert!(
        disk <= max_bytes,
        "compacted file ({disk} B) must fit the budget ({max_bytes} B)"
    );
    assert_eq!(store.evictions(), 4);

    // Evictions and the compaction trigger are journaled.
    let snap = paqoc_telemetry::snapshot();
    let evict_events = snap
        .events
        .iter()
        .filter(|e| e.name == "store.evict")
        .count();
    assert!(evict_events >= 4, "expected >=4 store.evict events");
    let compact_reason = snap.events.iter().any(|e| {
        e.name == "store.compact"
            && e.fields.iter().any(|(k, v)| {
                k == "reason" && matches!(v, paqoc_telemetry::FieldValue::Str(s) if s == "evict")
            })
    });
    assert!(compact_reason, "store.compact must carry reason=evict");
}

#[test]
fn eviction_tie_breaks_on_oldest_access_then_key() {
    let path = tmp("evict-tie.pqps");
    let key = |i: usize| format!("tie-{i}");
    let per_record = record_len(&key(0)) as u64;
    let max_bytes = HEADER_LEN as u64 + 2 * per_record;
    let mut store =
        PulseStore::open_with(&path, FP, StoreOptions::with_max_bytes(max_bytes)).expect("open");
    for i in 0..4 {
        store.put(&key(i), est(1.0 + i as f64)).expect("put");
    }
    // All get exactly one hit; access order 3, 2, 1, 0 — so 3 is the
    // *oldest* access and must go first on the tie.
    for i in (0..4).rev() {
        store.hit(&key(i));
    }
    store.maintain().expect("maintain");
    assert!(store.contains(&key(1)) && store.contains(&key(0)));
    assert!(!store.contains(&key(3)) && !store.contains(&key(2)));
}

#[test]
fn reopened_store_remembers_hits_for_eviction() {
    let path = tmp("evict-reopen.pqps");
    let key = |i: usize| format!("persist-{i}");
    {
        let mut store = PulseStore::open(&path, FP).expect("open");
        for i in 0..4 {
            store.put(&key(i), est(1.0)).expect("put");
        }
        store.hit(&key(0));
        store.hit(&key(0));
        store.hit(&key(2));
        store.hit(&key(2));
        store.compact().expect("compact persists metadata");
    }
    let per_record = record_len(&key(0)) as u64;
    let max_bytes = HEADER_LEN as u64 + 2 * per_record;
    let mut store =
        PulseStore::open_with(&path, FP, StoreOptions::with_max_bytes(max_bytes)).expect("reopen");
    store.maintain().expect("maintain");
    assert!(
        store.contains(&key(0)) && store.contains(&key(2)),
        "hot keys survive reopen"
    );
    assert!(!store.contains(&key(1)) && !store.contains(&key(3)));
}

// --------------------------------------------- byte-based compaction

#[test]
fn should_compact_counts_bytes_not_records() {
    let path = tmp("compact-bytes.pqps");
    let mut store = PulseStore::open(&path, FP).expect("open");
    store.put("k", est(0.5)).expect("put");
    let per = record_len("k") as u64;

    // Overwrite more than the old >64-records threshold: with only
    // ~60 dead bytes per overwrite we are still far under the byte
    // floor, so compaction must NOT trigger.
    for i in 0..65 {
        store.put("k", est(1.0 + i as f64)).expect("put");
    }
    assert!(store.dead_bytes() < paqoc_store::COMPACT_DEAD_BYTES_FLOOR);
    assert!(
        !store.should_compact(),
        "65 tiny overwrites ({} dead bytes) must not trigger compaction",
        store.dead_bytes()
    );

    // Push past the byte floor; dead >> live now.
    let need = (paqoc_store::COMPACT_DEAD_BYTES_FLOOR / per) + 2;
    for i in 0..need {
        store.put("k", est(100.0 + i as f64)).expect("put");
    }
    assert!(store.should_compact());
    let report = store.maintain().expect("maintain");
    assert!(report.compacted);
    assert_eq!(store.dead_bytes(), 0);
    assert_eq!(
        std::fs::metadata(&path).expect("meta").len() as usize,
        HEADER_LEN + record_len("k")
    );
}

#[test]
fn dead_byte_compaction_reason_is_journaled() {
    paqoc_telemetry::set_enabled(true);
    let path = tmp("compact-reason.pqps");
    let mut store = PulseStore::open(&path, FP).expect("open");
    let rounds = paqoc_store::COMPACT_DEAD_BYTES_FLOOR / record_len("r") as u64 + 2;
    for i in 0..=rounds {
        store.put("r", est(1.0 + i as f64)).expect("put");
    }
    let dead_before = store.dead_bytes();
    assert!(store.should_compact());
    store.maintain().expect("maintain");
    let snap = paqoc_telemetry::snapshot();
    let ours = snap.events.iter().any(|e| {
        e.name == "store.compact"
            && e.fields.iter().any(|(k, v)| {
                k == "reason"
                    && matches!(v, paqoc_telemetry::FieldValue::Str(s) if s == "dead-bytes")
            })
            && e.fields.iter().any(|(k, v)| {
                k == "dead_bytes"
                    && matches!(v, paqoc_telemetry::FieldValue::U64(d) if *d == dead_before)
            })
    });
    assert!(
        ours,
        "expected store.compact with reason=dead-bytes and the dead byte count"
    );
}

// ----------------------------------------------------------- IO faults

#[test]
fn injected_short_write_fails_the_put_and_repairs_the_tail() {
    let path = tmp("short-write.pqps");
    let injector = Arc::new(IoFaultInjector::new(7, 0.0, 0.0, 1.0));
    let mut store = PulseStore::open_with(
        &path,
        FP,
        StoreOptions {
            io_faults: Some(Arc::clone(&injector)),
            ..StoreOptions::default()
        },
    )
    .expect("open");
    let err = store
        .put("torn", est(3.0))
        .expect_err("short write must fail the put");
    assert_eq!(err.op, "append");
    assert!(store.get("torn").is_none(), "failed put must not be served");
    assert_eq!(injector.counts().short_writes, 1);
    // The live writer truncated the torn prefix back out of the file.
    assert_eq!(
        std::fs::metadata(&path).expect("meta").len() as usize,
        HEADER_LEN
    );
    drop(store);
    let store = PulseStore::open(&path, FP).expect("reopen");
    assert!(
        !store.recovery().recovered(),
        "repaired tail leaves a clean file"
    );
}

#[test]
fn injected_sync_failure_surfaces_as_store_error() {
    let path = tmp("sync-fault.pqps");
    let injector = Arc::new(IoFaultInjector::new(3, 1.0, 0.0, 0.0));
    let mut store = PulseStore::open_with(
        &path,
        FP,
        StoreOptions {
            io_faults: Some(injector),
            ..StoreOptions::default()
        },
    )
    .expect("open survives: open path only syncs on scrub");
    store.put("k", est(1.0)).expect("append is not synced");
    let err = store.sync().expect_err("injected fsync failure");
    assert_eq!(err.op, "sync");
}

#[test]
fn injected_rename_failure_leaves_the_old_file_intact() {
    let path = tmp("rename-fault.pqps");
    {
        let mut store = PulseStore::open(&path, FP).expect("open");
        store.put("keep", est(9.0)).expect("put");
        store.sync().expect("sync");
    }
    let injector = Arc::new(IoFaultInjector::new(5, 0.0, 1.0, 0.0));
    let mut store = PulseStore::open_with(
        &path,
        FP,
        StoreOptions {
            io_faults: Some(injector),
            ..StoreOptions::default()
        },
    )
    .expect("open: clean file needs no scrub");
    let err = store.compact().expect_err("injected rename failure");
    assert_eq!(err.op, "compact");
    drop(store);
    let store = PulseStore::open(&path, FP).expect("reopen");
    assert_eq!(store.get("keep"), Some(est(9.0)), "old file must survive");
}

#[test]
fn io_fault_storm_never_corrupts_what_a_clean_reopen_serves() {
    for seed in 0..8u64 {
        let path = tmp(&format!("storm-{seed}.pqps"));
        let injector = Arc::new(
            IoFaultInjector::from_config(&FaultConfig::io_storm(seed, 0.3)).expect("storm rates"),
        );
        let mut store = PulseStore::open_with(
            &path,
            FP,
            StoreOptions {
                io_faults: Some(injector),
                max_bytes: Some(HEADER_LEN as u64 + 40 * record_len("storm-00") as u64),
                ..StoreOptions::default()
            },
        )
        .expect("open");
        let mut accepted = Vec::new();
        for i in 0..64 {
            let key = format!("storm-{i:02}");
            if store.put(&key, est(1.0 + i as f64)).is_ok() {
                accepted.push((key.clone(), est(1.0 + i as f64)));
            }
            let _ = store.hit(&key);
            if i % 7 == 0 {
                let _ = store.sync();
            }
            if i % 13 == 0 {
                let _ = store.maintain();
            }
        }
        drop(store);

        // A clean reopen serves only well-formed records that were
        // actually accepted, and scrubs to a clean second open.
        let store = PulseStore::open(&path, FP).expect("reopen");
        for (key, e) in store.iter() {
            assert!(e.is_well_formed(), "seed {seed}: malformed estimate served");
            let expected = accepted.iter().find(|(k, _)| k == key);
            assert!(
                expected.is_some(),
                "seed {seed}: served {key:?} which was never accepted"
            );
            assert_eq!(*e, expected.expect("checked").1, "seed {seed}: wrong value");
        }
        drop(store);
        let store = PulseStore::open(&path, FP).expect("second reopen");
        assert!(
            !store.recovery().recovered(),
            "seed {seed}: corruption survived a scrub"
        );
    }
}

// ---------------------------------------------------------- merge

#[test]
fn merge_adds_missing_records_and_keeps_destination_authority() {
    let path_a = tmp("merge-a.pqps");
    let path_b = tmp("merge-b.pqps");
    {
        let mut a = PulseStore::open(&path_a, FP).expect("open a");
        a.put("shared", est(1.0)).expect("put");
        a.put("only-a", est(2.0)).expect("put");
        a.sync().expect("sync");
    }
    {
        let mut b = PulseStore::open(&path_b, FP).expect("open b");
        b.put("shared", est(99.0)).expect("put");
        b.put("only-b", est(3.0)).expect("put");
        b.sync().expect("sync");
    }
    let mut a = PulseStore::open(&path_a, FP).expect("reopen a");
    let report = a.merge_from_file(&path_b).expect("merge");
    assert_eq!(report.added, 1);
    assert_eq!(report.skipped, 1);
    assert_eq!(a.len(), 3);
    assert_eq!(
        a.get("shared"),
        Some(est(1.0)),
        "destination wins conflicts"
    );
    assert_eq!(a.get("only-b"), Some(est(3.0)));

    // Merging a foreign-fingerprint source is refused.
    let path_c = tmp("merge-c.pqps");
    {
        let mut c = PulseStore::open(&path_c, FP + 1).expect("open c");
        c.put("foreign", est(4.0)).expect("put");
        c.sync().expect("sync");
    }
    let err = a.merge_from_file(&path_c).expect_err("foreign merge");
    assert_eq!(err.op, "merge");
}

// --------------------------------------------------------- inspection

#[test]
fn inspect_reports_damage_without_touching_the_file() {
    let path = tmp("inspect.pqps");
    {
        let mut s = PulseStore::open(&path, FP).expect("open");
        s.put("a", est(1.0)).expect("put");
        s.put("a", est(2.0)).expect("overwrite");
        s.put("b", est(3.0)).expect("put");
        s.sync().expect("sync");
    }
    let before = std::fs::read(&path).expect("read");
    let ins = inspect(&path).expect("inspect");
    assert!(ins.header_ok);
    assert_eq!(ins.version, FORMAT_VERSION);
    assert_eq!(ins.fingerprint, FP);
    assert_eq!(ins.records_scanned, 3);
    assert_eq!(ins.live_records, 2);
    assert_eq!(ins.dead_bytes, record_len("a") as u64);
    assert!(ins.clean());
    assert_eq!(
        std::fs::read(&path).expect("read"),
        before,
        "inspect is read-only"
    );

    // Torn tail shows up as damage.
    let len = std::fs::metadata(&path).expect("meta").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open");
    f.set_len(len - 3).expect("truncate");
    drop(f);
    let ins = inspect(&path).expect("inspect damaged");
    assert!(!ins.clean());
    assert!(ins.torn_tail_bytes > 0);
}
