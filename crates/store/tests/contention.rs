//! Cross-process contention: real child processes (the `paqoc-store`
//! CLI's `hammer` subcommand) sharing one store file. Proves the
//! acceptance criteria of the multi-process protocol:
//!
//! * exactly one process becomes the writer; the second serves reads,
//!   observes the writer's appends via refresh, and journals/drops its
//!   own writes;
//! * `kill -9` of the writer mid-append loses at most the torn tail:
//!   every record synced before the kill survives, nothing is
//!   quarantined, and the next open scrubs to a clean file.
#![cfg(unix)]

use paqoc_store::{PulseStore, StoreRole};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};

const FP: u64 = 0xC0FFEE;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paqoc-store-xproc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(paqoc_store::lock_path(&path));
    path
}

fn hammer(args: &[&str]) -> (Child, BufReader<ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_paqoc-store"))
        .arg("hammer")
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn paqoc-store hammer");
    let stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    (child, stdout)
}

fn read_line(reader: &mut BufReader<ChildStdout>) -> Option<String> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line.trim().to_string()),
        Err(_) => None,
    }
}

/// Extracts `"key":<number>` from one of the hammer's JSON lines.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

#[test]
fn two_processes_one_writer_reader_observes_appends() {
    let path = tmp("contend.pqps");
    let path_s = path.display().to_string();
    let fp_s = FP.to_string();

    // Writer child: appends forever so the overlap window is guaranteed.
    let (mut writer, mut writer_out) = hammer(&[
        &path_s,
        &fp_s,
        "0",
        "--forever",
        "--sync-every",
        "4",
        "--seed",
        "1",
    ]);
    let open_line = read_line(&mut writer_out).expect("writer open line");
    assert_eq!(json_str(&open_line, "role"), Some("writer"));

    // Wait for the first durable sync before spawning the contender.
    let first_sync = loop {
        let line = read_line(&mut writer_out).expect("writer output");
        if line.contains("\"event\":\"synced\"") {
            break json_u64(&line, "written").expect("written count");
        }
    };
    assert!(first_sync >= 4);

    // Second process: must degrade to read-only and still observe 40
    // records appearing while the writer keeps appending.
    let (mut reader, mut reader_out) = hammer(&[&path_s, &fp_s, "40"]);
    let open_line = read_line(&mut reader_out).expect("reader open line");
    assert_eq!(
        json_str(&open_line, "role"),
        Some("readonly"),
        "exactly one process may hold the writer role"
    );
    let mut done_line = None;
    while let Some(line) = read_line(&mut reader_out) {
        if line.contains("\"event\":\"done\"") {
            done_line = Some(line);
            break;
        }
    }
    let done = done_line.expect("reader done line");
    let observed = json_u64(&done, "observed").expect("observed");
    assert!(
        observed >= 40,
        "reader observed only {observed} of the concurrent appends"
    );
    assert_eq!(
        json_u64(&done, "readonly_drops"),
        Some(1),
        "the reader's own write must be dropped and counted"
    );
    let status = reader.wait().expect("reader exit");
    assert!(status.success());

    // Track the writer's last durable count, then SIGKILL it.
    let mut last_synced = first_sync;
    while let Some(line) = read_line(&mut writer_out) {
        if let Some(n) = json_u64(&line, "written") {
            last_synced = n;
        }
        if last_synced >= 80 {
            break;
        }
    }
    writer.kill().expect("SIGKILL writer");
    let _ = writer.wait();

    // The lock died with the writer: we become the writer immediately,
    // and every synced record survived.
    let store = PulseStore::open(&path, FP).expect("reopen after kill");
    assert_eq!(store.role(), StoreRole::Writer);
    assert!(
        store.len() as u64 >= last_synced,
        "lost records: {} on disk, {} were synced",
        store.len(),
        last_synced
    );
    assert_eq!(
        store.recovery().quarantined,
        0,
        "a torn tail must truncate, not quarantine"
    );
    for (key, est) in store.iter() {
        assert!(key.starts_with("hammer-1-"), "foreign key {key:?}");
        assert!(est.is_well_formed());
    }
}

#[test]
fn sigkill_mid_append_loses_at_most_the_torn_tail() {
    let path = tmp("kill.pqps");
    let path_s = path.display().to_string();
    let fp_s = FP.to_string();

    let (mut writer, mut writer_out) = hammer(&[
        &path_s,
        &fp_s,
        "0",
        "--forever",
        "--sync-every",
        "2",
        "--seed",
        "9",
    ]);
    let open_line = read_line(&mut writer_out).expect("open line");
    assert_eq!(json_str(&open_line, "role"), Some("writer"));

    // Let a few syncs land, then kill without warning: the process dies
    // inside its tight append loop.
    let mut last_synced = 0;
    while last_synced < 10 {
        let line = read_line(&mut writer_out).expect("writer output");
        if let Some(n) = json_u64(&line, "written") {
            last_synced = n;
        }
    }
    writer.kill().expect("SIGKILL");
    let _ = writer.wait();

    let store = PulseStore::open(&path, FP).expect("reopen");
    assert_eq!(
        store.role(),
        StoreRole::Writer,
        "flock dies with its process"
    );
    assert!(
        store.len() as u64 >= last_synced,
        "synced records lost: {} on disk vs {last_synced} synced",
        store.len()
    );
    assert_eq!(store.recovery().quarantined, 0);
    // recovery().recovered() is true exactly when the kill tore a tail;
    // either way the open scrubbed it: a second open must be clean.
    drop(store);
    let store = PulseStore::open(&path, FP).expect("second reopen");
    assert!(
        !store.recovery().recovered(),
        "recovery must not survive a second open"
    );
    assert!(store.len() as u64 >= last_synced);
}
