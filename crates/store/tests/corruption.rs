//! Corruption-injection acceptance suite for the persistent pulse store.
//!
//! Every test here manufactures a real on-disk failure with the
//! byte-level injectors from `paqoc_device::corruption` — torn tails,
//! flipped bits, stale fingerprints, mid-write crashes, garbage length
//! prefixes, seeded random fuzz — and asserts the store's published
//! recovery contract: open never panics, corrupt records are
//! quarantined (never served), recovery is journaled, and corruption
//! never survives a second open.
//!
//! The injectors know nothing about the record format; offsets are
//! computed from the store's published layout constants (`HEADER_LEN`,
//! `record_len`), so these tests double as a check that the documented
//! layout matches the bytes actually written.

use paqoc_device::corruption::{
    append_bytes, flip_bit, flip_random_bits, overwrite_bytes, truncate_tail,
};
use paqoc_device::PulseEstimate;
use paqoc_store::{
    encode_record, record_len, PulseStore, RejectReason, FORMAT_VERSION, HEADER_LEN,
};
use std::path::{Path, PathBuf};

/// A fingerprint standing in for `Device::fingerprint()`; any nonzero
/// u64 works — the store treats it as an opaque token.
const FP: u64 = 0xD15E_A5ED_0000_0001;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paqoc-store-corruption-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn est(latency_dt: u64) -> PulseEstimate {
    PulseEstimate {
        latency_ns: latency_dt as f64 * 0.222,
        latency_dt,
        fidelity: 0.999,
        cost_units: latency_dt as f64,
    }
}

/// Three fixed keys, in the order they are appended by `seed_store`.
const KEYS: [&str; 3] = ["cx:q0-q1", "apa:cp+cp:q1-q2-q3", "rx:q4"];

/// Byte offset where record `i` of a freshly seeded store begins.
fn record_offset(i: usize) -> u64 {
    (HEADER_LEN + KEYS[..i].iter().map(|k| record_len(k)).sum::<usize>()) as u64
}

fn seed_store(path: &Path) -> u64 {
    let mut store = PulseStore::open(path, FP).expect("seed open");
    for (i, key) in KEYS.iter().enumerate() {
        store.put(key, est(100 + i as u64)).expect("seed put");
    }
    store.sync().expect("seed sync");
    assert!(!store.recovery().recovered(), "seed store must be clean");
    std::fs::metadata(path).expect("seed metadata").len()
}

/// Reopening after recovery must find a clean file: corruption never
/// survives a second open.
fn assert_scrubbed(path: &Path) {
    let store = PulseStore::open(path, FP).expect("reopen after recovery");
    assert!(
        !store.recovery().recovered(),
        "second open still sees damage: {:?}",
        store.recovery()
    );
}

#[test]
fn torn_tail_is_truncated_and_earlier_records_survive() {
    let path = tmp("torn_tail.db");
    seed_store(&path);
    // Chop the last record in half: a crash mid-append.
    truncate_tail(&path, (record_len(KEYS[2]) / 2) as u64).expect("truncate");

    let store = PulseStore::open(&path, FP).expect("open torn");
    assert!(store.recovery().recovered());
    assert!(store.recovery().torn_tail_bytes > 0);
    assert_eq!(store.recovery().rejected, None);
    assert_eq!(store.get(KEYS[0]), Some(est(100)));
    assert_eq!(store.get(KEYS[1]), Some(est(101)));
    assert_eq!(store.get(KEYS[2]), None, "torn record must not be served");
    drop(store);
    assert_scrubbed(&path);
}

#[test]
fn flipped_payload_bit_quarantines_only_that_record() {
    let path = tmp("bit_flip.db");
    seed_store(&path);
    // Flip a bit inside the middle record's payload (past its 8-byte
    // len+crc framing), leaving its neighbours untouched.
    flip_bit(&path, record_offset(1) + 8 + 2, 5).expect("flip");

    let store = PulseStore::open(&path, FP).expect("open flipped");
    assert!(store.recovery().recovered());
    assert_eq!(store.recovery().quarantined, 1);
    assert_eq!(store.get(KEYS[0]), Some(est(100)));
    assert_eq!(
        store.get(KEYS[1]),
        None,
        "corrupt record must not be served"
    );
    assert_eq!(
        store.get(KEYS[2]),
        Some(est(102)),
        "later records still load"
    );
    drop(store);
    assert_scrubbed(&path);
}

#[test]
fn stale_fingerprint_rejects_the_whole_file() {
    let path = tmp("stale_fp.db");
    seed_store(&path);
    // Plant a foreign device fingerprint at its header offset (byte 8)
    // and fix up the header CRC so only the fingerprint check can trip.
    let other: u64 = FP ^ 0xFFFF;
    overwrite_bytes(&path, 8, &other.to_le_bytes()).expect("plant fingerprint");
    let bytes = std::fs::read(&path).expect("read");
    let crc = paqoc_store::crc32(&bytes[..16]);
    overwrite_bytes(&path, 16, &crc.to_le_bytes()).expect("fix header crc");

    let store = PulseStore::open(&path, FP).expect("open stale");
    assert_eq!(
        store.recovery().rejected,
        Some(RejectReason::Fingerprint {
            found: other,
            expected: FP
        })
    );
    assert!(store.is_empty(), "foreign pulses must never be served");
    drop(store);
    assert_scrubbed(&path);
}

#[test]
fn unknown_format_version_rejects_the_whole_file() {
    let path = tmp("version.db");
    seed_store(&path);
    overwrite_bytes(&path, 4, &(FORMAT_VERSION + 9).to_le_bytes()).expect("plant version");
    let bytes = std::fs::read(&path).expect("read");
    let crc = paqoc_store::crc32(&bytes[..16]);
    overwrite_bytes(&path, 16, &crc.to_le_bytes()).expect("fix header crc");

    let store = PulseStore::open(&path, FP).expect("open versioned");
    assert_eq!(
        store.recovery().rejected,
        Some(RejectReason::Version {
            found: FORMAT_VERSION + 9
        })
    );
    assert!(store.is_empty());
    drop(store);
    assert_scrubbed(&path);
}

#[test]
fn corrupt_header_crc_rejects_the_whole_file() {
    let path = tmp("bad_header.db");
    seed_store(&path);
    flip_bit(&path, 17, 3).expect("flip header crc");

    let store = PulseStore::open(&path, FP).expect("open bad header");
    assert_eq!(store.recovery().rejected, Some(RejectReason::BadHeader));
    assert!(store.is_empty());
    drop(store);
    assert_scrubbed(&path);
}

#[test]
fn mid_write_crash_leaves_a_loadable_store() {
    let path = tmp("mid_write.db");
    seed_store(&path);
    // Simulate power loss between two write calls: the framing header
    // and part of the payload of a 4th record make it to disk.
    let record = encode_record("cz:q5-q6", &est(500));
    append_bytes(&path, &record[..record.len() - 7]).expect("partial append");

    let store = PulseStore::open(&path, FP).expect("open mid-write");
    assert!(store.recovery().recovered());
    assert!(store.recovery().torn_tail_bytes > 0);
    assert_eq!(store.len(), 3, "all complete records survive");
    assert_eq!(store.get("cz:q5-q6"), None);
    drop(store);
    assert_scrubbed(&path);
}

#[test]
fn garbage_length_prefix_cannot_swallow_the_file() {
    let path = tmp("bad_len.db");
    seed_store(&path);
    // Rewrite record 1's length prefix with an enormous value; a naive
    // loader would try to read 4 GiB and treat records 1 and 2 as one.
    overwrite_bytes(&path, record_offset(1), &u32::MAX.to_le_bytes()).expect("plant len");

    let store = PulseStore::open(&path, FP).expect("open bad len");
    assert!(store.recovery().recovered());
    assert_eq!(
        store.get(KEYS[0]),
        Some(est(100)),
        "record before the damage survives"
    );
    assert_eq!(store.get(KEYS[1]), None);
    drop(store);
    assert_scrubbed(&path);
}

#[test]
fn duplicate_keys_resolve_last_wins_across_reopen() {
    let path = tmp("dup.db");
    seed_store(&path);
    // Append two more records for an existing key straight to the file,
    // bypassing put()'s in-memory dedup.
    append_bytes(&path, &encode_record(KEYS[0], &est(777))).expect("dup 1");
    append_bytes(&path, &encode_record(KEYS[0], &est(888))).expect("dup 2");

    let store = PulseStore::open(&path, FP).expect("open dup");
    assert_eq!(store.get(KEYS[0]), Some(est(888)), "last append wins");
    assert_eq!(store.len(), 3);
}

#[test]
fn ill_formed_estimate_on_disk_is_quarantined() {
    let path = tmp("nan.db");
    seed_store(&path);
    let poisoned = PulseEstimate {
        latency_ns: f64::NAN,
        latency_dt: 1,
        fidelity: 2.0,
        cost_units: -3.0,
    };
    append_bytes(&path, &encode_record("nan:q0", &poisoned)).expect("append poisoned");

    let store = PulseStore::open(&path, FP).expect("open poisoned");
    assert!(store.recovery().recovered());
    assert_eq!(store.recovery().quarantined, 1);
    assert_eq!(
        store.get("nan:q0"),
        None,
        "NaN estimates must never be served"
    );
    assert_eq!(store.len(), 3);
    drop(store);
    assert_scrubbed(&path);
}

#[test]
fn recovery_is_journaled_as_a_store_recovered_event() {
    paqoc_telemetry::set_enabled(true);
    let path = tmp("journaled.db");
    seed_store(&path);
    truncate_tail(&path, 5).expect("truncate");

    let store = PulseStore::open(&path, FP).expect("open");
    assert!(store.recovery().recovered());
    let snap = paqoc_telemetry::snapshot();
    let ours = snap.events.iter().any(|e| {
        e.name == "store.recovered"
            && e.fields.iter().any(|(k, v)| {
                k == "path"
                    && matches!(v, paqoc_telemetry::FieldValue::Str(s)
                        if s == &path.display().to_string())
            })
    });
    assert!(
        ours,
        "expected a store.recovered event for {}",
        path.display()
    );
    assert!(*snap.counters.get("store.recovered").unwrap_or(&0) >= 1);
}

/// Seeded fuzz: random bit flips anywhere in the file (header included)
/// must never panic the loader, and everything it does serve must be a
/// well-formed estimate with an uncorrupted key.
#[test]
fn random_bit_flips_never_panic_and_never_serve_garbage() {
    for seed in 0..32u64 {
        let path = tmp(&format!("fuzz_{seed}.db"));
        seed_store(&path);
        let flips = flip_random_bits(&path, 1 + (seed as usize % 4), seed, 0).expect("flip");

        let store = PulseStore::open(&path, FP)
            .unwrap_or_else(|e| panic!("seed {seed} (flips {flips:?}): open failed: {e}"));
        for (key, e) in store.iter() {
            assert!(
                KEYS.contains(&key),
                "seed {seed}: served a key that was never written: {key:?}"
            );
            assert!(
                e.is_well_formed(),
                "seed {seed}: served an ill-formed estimate for {key:?}: {e:?}"
            );
        }
        drop(store);
        assert_scrubbed(&path);
    }
}

/// A store that recovered keeps accepting appends afterwards — recovery
/// must hand back a fully functional append handle, not a read-only
/// husk.
#[test]
fn store_accepts_new_pulses_after_recovery() {
    let path = tmp("append_after.db");
    seed_store(&path);
    truncate_tail(&path, 3).expect("truncate");

    let mut store = PulseStore::open(&path, FP).expect("open");
    assert!(store.recovery().recovered());
    store.put("new:q7", est(900)).expect("put after recovery");
    store.sync().expect("sync after recovery");
    drop(store);

    let store = PulseStore::open(&path, FP).expect("reopen");
    assert!(!store.recovery().recovered());
    assert_eq!(store.get("new:q7"), Some(est(900)));
}
