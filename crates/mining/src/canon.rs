//! Canonical codes for subcircuit instances.
//!
//! Two instances are the same *pattern* exactly when their induced
//! labeled sub-DAGs are isomorphic, including how gates share qubits.
//! The canonical code linearizes the instance by a deterministic
//! greedy-minimal topological order (branching on ties and keeping the
//! lexicographically smallest emission), relabeling qubits by first
//! appearance — so isomorphic instances, wherever they sit in the
//! circuit and on whichever physical qubits, produce identical codes.

use crate::graph::CircuitGraph;
use std::collections::BTreeMap;

/// Computes the canonical code of an instance (a set of node indices).
///
/// The instance must be non-empty; it need not be convex (convexity is
/// the grower's concern). Cost is exponential only in the number of
/// *tied* symmetric nodes, which is tiny for the ≤ 8-gate patterns mined
/// here.
///
/// # Panics
///
/// Panics if `nodes` is empty.
pub fn canonical_code(graph: &CircuitGraph, nodes: &[usize]) -> String {
    assert!(!nodes.is_empty(), "instance must contain at least one gate");
    let mut nodes = nodes.to_vec();
    nodes.sort_unstable();
    nodes.dedup();

    // Local adjacency restricted to the instance.
    let index_of = |v: usize| nodes.iter().position(|&n| n == v);
    let k = nodes.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (li, &v) in nodes.iter().enumerate() {
        for e in graph.in_edges(v) {
            if let Some(lp) = index_of(e.from) {
                preds[li].push(lp);
            }
        }
    }

    let mut best: Option<String> = None;
    let state = EmitState {
        emitted: Vec::new(),
        qubit_ids: BTreeMap::new(),
        code: String::new(),
    };
    search(graph, &nodes, &preds, state, &mut best);
    best.expect("at least one linearization exists")
}

#[derive(Clone)]
struct EmitState {
    emitted: Vec<usize>,               // local indices in emission order
    qubit_ids: BTreeMap<usize, usize>, // physical qubit -> canonical id
    code: String,
}

/// The emission token of a node under the current state: gate label plus
/// canonical qubit ids (fresh qubits numbered in operand order).
fn token(
    graph: &CircuitGraph,
    nodes: &[usize],
    local: usize,
    state: &EmitState,
) -> (String, Vec<(usize, usize)>) {
    let v = nodes[local];
    let mut fresh: Vec<(usize, usize)> = Vec::new();
    let mut next_id = state.qubit_ids.len();
    let ids: Vec<String> = graph
        .qubits(v)
        .iter()
        .map(|&q| {
            if let Some(&id) = state.qubit_ids.get(&q) {
                id.to_string()
            } else if let Some(&(_, id)) = fresh.iter().find(|&&(fq, _)| fq == q) {
                id.to_string()
            } else {
                let id = next_id;
                fresh.push((q, id));
                next_id += 1;
                id.to_string()
            }
        })
        .collect();
    (format!("{}({})", graph.label(v), ids.join(",")), fresh)
}

fn search(
    graph: &CircuitGraph,
    nodes: &[usize],
    preds: &[Vec<usize>],
    state: EmitState,
    best: &mut Option<String>,
) {
    let k = nodes.len();
    if state.emitted.len() == k {
        match best {
            Some(b) if *b <= state.code => {}
            _ => *best = Some(state.code),
        }
        return;
    }
    // Prune: a prefix already worse than the best completed code can
    // never win (string comparison is prefix-monotone for our format
    // because every code has the same number of ';'-separated tokens).
    if let Some(b) = best {
        if !b.is_empty() && state.code.len() <= b.len() && !state.code.is_empty() {
            let prefix = &b[..state.code.len().min(b.len())];
            if state.code.as_str() > prefix {
                return;
            }
        }
    }

    // Ready nodes: all instance-internal predecessors emitted.
    let ready: Vec<usize> = (0..k)
        .filter(|&li| !state.emitted.contains(&li))
        .filter(|&li| preds[li].iter().all(|p| state.emitted.contains(p)))
        .collect();

    // Greedy-minimal: emit only the nodes whose token is minimal.
    #[allow(clippy::type_complexity)]
    let tokens: Vec<(usize, (String, Vec<(usize, usize)>))> = ready
        .iter()
        .map(|&li| (li, token(graph, nodes, li, &state)))
        .collect();
    let min_tok = tokens
        .iter()
        .map(|(_, (t, _))| t.clone())
        .min()
        .expect("DAG always has a ready node");

    for (li, (tok, fresh)) in tokens {
        if tok != min_tok {
            continue;
        }
        let mut next = state.clone();
        next.emitted.push(li);
        for (q, id) in fresh {
            next.qubit_ids.insert(q, id);
        }
        if !next.code.is_empty() {
            next.code.push(';');
        }
        next.code.push_str(&tok);
        search(graph, nodes, preds, next, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_circuit::Circuit;

    fn code_of(c: &Circuit, nodes: &[usize]) -> String {
        canonical_code(&CircuitGraph::from_circuit(c), nodes)
    }

    #[test]
    fn identical_shapes_share_codes_across_qubits() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).rz(1, 0.7); // instance A on qubits 0,1
        c.cx(2, 3).rz(3, 0.7); // instance B on qubits 2,3
        let a = code_of(&c, &[0, 1]);
        let b = code_of(&c, &[2, 3]);
        assert_eq!(a, b);
        assert_eq!(a, "cx(0,1);rz(0.7000)(1)");
    }

    #[test]
    fn control_vs_target_sharing_is_distinguished() {
        // The paper's Fig. 5 disambiguation: rz on the target vs on the
        // control of the following cx.
        let mut on_target = Circuit::new(2);
        on_target.rz(1, 0.7).cx(0, 1);
        let mut on_control = Circuit::new(2);
        on_control.rz(0, 0.7).cx(0, 1);
        let a = code_of(&on_target, &[0, 1]);
        let b = code_of(&on_control, &[0, 1]);
        assert_ne!(a, b);
    }

    #[test]
    fn code_is_invariant_to_emission_ties() {
        // Two independent H gates feeding a CX: either H may come first;
        // the canonical code must not depend on node indices.
        let mut c1 = Circuit::new(2);
        c1.h(0).h(1).cx(0, 1);
        let mut c2 = Circuit::new(2);
        c2.h(1).h(0).cx(0, 1);
        assert_eq!(code_of(&c1, &[0, 1, 2]), code_of(&c2, &[0, 1, 2]));
    }

    #[test]
    fn different_angles_make_different_patterns() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.5).rz(0, 0.9);
        let a = code_of(&c, &[0]);
        let b = code_of(&c, &[1]);
        assert_ne!(a, b);
    }

    #[test]
    fn symbolic_angles_unify_parameterized_instances() {
        use paqoc_circuit::{Angle, GateKind};
        let mut c = Circuit::new(2);
        c.apply(GateKind::Rz, vec![0], vec![Angle::sym("g", 0.3)]);
        c.apply(GateKind::Rz, vec![1], vec![Angle::sym("g", 1.9)]);
        // Different numeric values, same symbol: same pattern.
        assert_eq!(code_of(&c, &[0]), code_of(&c, &[1]));
    }

    #[test]
    fn swap_decomposition_has_a_stable_code() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0).cx(0, 1);
        let code = code_of(&c, &[0, 1, 2]);
        assert_eq!(code, "cx(0,1);cx(1,0);cx(0,1)");
    }

    #[test]
    fn direction_of_dependence_matters() {
        // cx then rz ≠ rz then cx on the same qubit pair.
        let mut forward = Circuit::new(2);
        forward.cx(0, 1).rz(1, 0.7);
        let mut backward = Circuit::new(2);
        backward.rz(1, 0.7).cx(0, 1);
        assert_ne!(code_of(&forward, &[0, 1]), code_of(&backward, &[0, 1]));
    }
}
