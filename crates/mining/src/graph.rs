//! The labeled directed graph of a physical circuit (paper Fig. 5).
//!
//! Nodes are gates labeled with operator name and symbolic rotation
//! angle; edges are per-qubit direct dependences labeled with the *role*
//! the shared qubit plays on each side (`"2-1"` = second operand of the
//! source gate, first operand of the sink), which disambiguates similar
//! but non-identical subcircuits. A precomputed reachability matrix
//! answers the convexity queries pattern growth and gate merging need.

use paqoc_circuit::Circuit;

/// A dependence edge between two gates sharing a qubit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LabeledEdge {
    /// Source gate (earlier in time).
    pub from: usize,
    /// Sink gate (later in time).
    pub to: usize,
    /// 1-based operand position of the shared qubit in the source gate.
    pub from_role: u8,
    /// 1-based operand position of the shared qubit in the sink gate.
    pub to_role: u8,
    /// The shared physical qubit.
    pub qubit: usize,
}

impl LabeledEdge {
    /// The paper's edge-label notation, e.g. `"2-1"`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.from_role, self.to_role)
    }
}

/// The labeled circuit graph.
#[derive(Clone, Debug)]
pub struct CircuitGraph {
    labels: Vec<String>,
    qubits: Vec<Vec<usize>>,
    edges: Vec<LabeledEdge>,
    out_edges: Vec<Vec<usize>>,
    in_edges: Vec<Vec<usize>>,
}

impl CircuitGraph {
    /// Builds the labeled graph of a circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let labels: Vec<String> = circuit.iter().map(|i| i.label()).collect();
        let qubits: Vec<Vec<usize>> = circuit.iter().map(|i| i.qubits().to_vec()).collect();
        let mut edges = Vec::new();
        let mut last_use: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (i, inst) in circuit.iter().enumerate() {
            for (pos, &q) in inst.qubits().iter().enumerate() {
                if let Some(p) = last_use[q] {
                    let from_role = circuit.instructions()[p]
                        .qubits()
                        .iter()
                        .position(|&pq| pq == q)
                        .expect("shared qubit present in source")
                        as u8
                        + 1;
                    edges.push(LabeledEdge {
                        from: p,
                        to: i,
                        from_role,
                        to_role: pos as u8 + 1,
                        qubit: q,
                    });
                }
                last_use[q] = Some(i);
            }
        }
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for (e, edge) in edges.iter().enumerate() {
            out_edges[edge.from].push(e);
            in_edges[edge.to].push(e);
        }
        CircuitGraph {
            labels,
            qubits,
            edges,
            out_edges,
            in_edges,
        }
    }

    /// Number of gate nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Structural label of node `i`.
    pub fn label(&self, i: usize) -> &str {
        &self.labels[i]
    }

    /// Qubits of node `i`, in operand order.
    pub fn qubits(&self, i: usize) -> &[usize] {
        &self.qubits[i]
    }

    /// All labeled edges.
    pub fn edges(&self) -> &[LabeledEdge] {
        &self.edges
    }

    /// Edge indices leaving node `i`.
    pub fn out_edges(&self, i: usize) -> impl Iterator<Item = &LabeledEdge> {
        self.out_edges[i].iter().map(|&e| &self.edges[e])
    }

    /// Edge indices entering node `i`.
    pub fn in_edges(&self, i: usize) -> impl Iterator<Item = &LabeledEdge> {
        self.in_edges[i].iter().map(|&e| &self.edges[e])
    }

    /// Nodes adjacent to `i` in either direction (with duplicates when
    /// two gates share several qubits).
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.out_edges(i)
            .map(|e| e.to)
            .chain(self.in_edges(i).map(|e| e.from))
    }
}

/// Dense DAG reachability, bitset-packed, for convexity queries.
#[derive(Clone, Debug)]
pub struct Reachability {
    n: usize,
    words: usize,
    /// `desc[i]` = bitset of nodes reachable *from* `i` (excluding `i`).
    desc: Vec<u64>,
    /// `anc[i]` = bitset of nodes that reach `i` (excluding `i`).
    anc: Vec<u64>,
}

impl Reachability {
    /// Precomputes reachability for a circuit graph (`O(N·E/64)`).
    pub fn new(graph: &CircuitGraph) -> Self {
        let n = graph.len();
        let words = n.div_ceil(64);
        let mut desc = vec![0u64; n * words];
        let mut anc = vec![0u64; n * words];
        // Process in reverse topological (= reverse instruction) order:
        // circuit order is already topological.
        for i in (0..n).rev() {
            // Clone successor rows into i's row.
            let mut row = vec![0u64; words];
            for e in graph.out_edges(i) {
                let s = e.to;
                row[s / 64] |= 1u64 << (s % 64);
                for w in 0..words {
                    row[w] |= desc[s * words + w];
                }
            }
            desc[i * words..(i + 1) * words].copy_from_slice(&row);
        }
        for i in 0..n {
            let mut row = vec![0u64; words];
            for e in graph.in_edges(i) {
                let p = e.from;
                row[p / 64] |= 1u64 << (p % 64);
                for w in 0..words {
                    row[w] |= anc[p * words + w];
                }
            }
            anc[i * words..(i + 1) * words].copy_from_slice(&row);
        }
        Reachability {
            n,
            words,
            desc,
            anc,
        }
    }

    /// `true` when a directed path `from ⇝ to` exists (strict: `from ≠ to`).
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        self.desc[from * self.words + to / 64] >> (to % 64) & 1 == 1
    }

    /// `true` when the node set is *convex*: no path between two members
    /// passes through a non-member. Convex sets are exactly the sets that
    /// can be collapsed into one gate without breaking the schedule.
    pub fn is_convex(&self, nodes: &[usize]) -> bool {
        // bad = (∪ desc) ∩ (∪ anc) \ nodes must be empty.
        let mut in_set = vec![0u64; self.words];
        for &v in nodes {
            in_set[v / 64] |= 1u64 << (v % 64);
        }
        for (w, &set) in in_set.iter().enumerate() {
            let mut d = 0u64;
            let mut a = 0u64;
            for &v in nodes {
                d |= self.desc[v * self.words + w];
                a |= self.anc[v * self.words + w];
            }
            if d & a & !set != 0 {
                return false;
            }
        }
        true
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_circuit::Circuit;

    /// cx(0,1); rz(1); cx(0,1) — the CPHASE skeleton.
    fn cphase_skeleton() -> Circuit {
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(1, 0.7).cx(0, 1);
        c
    }

    #[test]
    fn edge_roles_match_the_paper_notation() {
        let g = CircuitGraph::from_circuit(&cphase_skeleton());
        // cx(0,1) -> rz(1): shared qubit 1 is cx operand 2, rz operand 1.
        let e: Vec<&LabeledEdge> = g.out_edges(0).collect();
        let to_rz = e.iter().find(|e| e.to == 1).expect("edge to rz");
        assert_eq!(to_rz.label(), "2-1");
        // cx(0,1) -> cx(0,1) via qubit 0: roles 1-1.
        let to_cx = e.iter().find(|e| e.to == 2).expect("edge to cx");
        assert_eq!(to_cx.label(), "1-1");
    }

    #[test]
    fn per_qubit_edges_are_kept_separately() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        let g = CircuitGraph::from_circuit(&c);
        // Both qubits link gate 0 to gate 1: two labeled edges.
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    fn labels_capture_symbolic_angles() {
        let mut c = Circuit::new(1);
        c.apply(
            paqoc_circuit::GateKind::Rz,
            vec![0],
            vec![paqoc_circuit::Angle::sym("g", 0.5)],
        );
        let g = CircuitGraph::from_circuit(&c);
        assert_eq!(g.label(0), "rz(g)");
    }

    #[test]
    fn reachability_follows_paths() {
        let g = CircuitGraph::from_circuit(&cphase_skeleton());
        let r = Reachability::new(&g);
        assert!(r.reaches(0, 1));
        assert!(r.reaches(0, 2));
        assert!(r.reaches(1, 2));
        assert!(!r.reaches(2, 0));
        assert!(!r.reaches(1, 0));
    }

    #[test]
    fn convexity_detects_gaps() {
        let g = CircuitGraph::from_circuit(&cphase_skeleton());
        let r = Reachability::new(&g);
        assert!(r.is_convex(&[0, 1]));
        assert!(r.is_convex(&[1, 2]));
        assert!(r.is_convex(&[0, 1, 2]));
        // {cx, cx} without the rz in between is NOT convex: the path
        // cx → rz → cx passes through a non-member.
        assert!(!r.is_convex(&[0, 2]));
    }

    #[test]
    fn independent_nodes_are_convex() {
        let mut c = Circuit::new(4);
        c.h(0).h(2).cx(0, 1).cx(2, 3);
        let g = CircuitGraph::from_circuit(&c);
        let r = Reachability::new(&g);
        assert!(r.is_convex(&[0, 1]));
        assert!(r.is_convex(&[2, 3]));
        assert!(r.is_convex(&[0, 3]));
    }
}
