//! Frequent-subcircuit mining by pattern growth.
//!
//! Level-wise growth in the spirit of GraMi/gSpan, specialized to
//! circuit DAGs: instances grow by absorbing an adjacent gate, stay
//! *convex* (so they remain collapsible subcircuits), respect the
//! APA-basis qubit cap, and are grouped by canonical code. Support is
//! anti-monotone under this instance semantics, so infrequent patterns
//! prune their whole extension subtree.

use crate::canon::canonical_code;
use crate::graph::{CircuitGraph, Reachability};
use paqoc_circuit::Circuit;
use paqoc_telemetry::counter;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Mining configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinerOptions {
    /// Minimum number of instances for a pattern to be frequent
    /// (the paper's `M = inf` mode keeps "any gate sequence that appears
    /// more than twice", i.e. support ≥ 2).
    pub min_support: usize,
    /// Maximum distinct qubits per pattern (the paper's `maxN`).
    pub max_qubits: usize,
    /// Maximum gates per pattern.
    pub max_gates: usize,
    /// Cap on instances tracked per pattern (keeps worst-case growth
    /// polynomial; patterns at the cap are already decisively frequent).
    pub max_instances_per_pattern: usize,
    /// Cap on patterns carried to the next growth level (top by support).
    pub beam_width: usize,
}

impl Default for MinerOptions {
    fn default() -> Self {
        MinerOptions {
            min_support: 2,
            max_qubits: 3,
            max_gates: 6,
            max_instances_per_pattern: 512,
            beam_width: 256,
        }
    }
}

/// A frequent subcircuit pattern.
#[derive(Clone, Debug)]
pub struct Pattern {
    /// Canonical structural code (stable pattern identity).
    pub code: String,
    /// Number of gates in the pattern.
    pub num_gates: usize,
    /// Number of distinct qubits the pattern touches.
    pub num_qubits: usize,
    /// All embeddings found, each a sorted list of instruction indices.
    pub instances: Vec<Vec<usize>>,
}

impl Pattern {
    /// Support = number of embeddings (possibly overlapping).
    pub fn support(&self) -> usize {
        self.instances.len()
    }

    /// Greedy maximum set of pairwise-disjoint instances, in circuit
    /// order. This is what substitution uses.
    pub fn disjoint_instances(&self) -> Vec<Vec<usize>> {
        let mut used: HashSet<usize> = HashSet::new();
        let mut picked = Vec::new();
        let mut ordered = self.instances.clone();
        ordered.sort_by_key(|inst| inst[0]);
        for inst in ordered {
            if inst.iter().all(|i| !used.contains(i)) {
                used.extend(inst.iter().copied());
                picked.push(inst);
            }
        }
        picked
    }

    /// Coverage = gates covered by the disjoint instances; the selection
    /// criterion the paper uses to choose among overlapping patterns.
    pub fn coverage(&self) -> usize {
        self.disjoint_instances().len() * self.num_gates
    }
}

/// Mines frequent subcircuits of a physical circuit.
///
/// Returns patterns with at least `opts.min_support` embeddings and at
/// least 2 gates, sorted by coverage (descending), then by size.
///
/// # Examples
///
/// ```
/// use paqoc_circuit::Circuit;
/// use paqoc_mining::{mine_frequent_subcircuits, MinerOptions};
///
/// let mut c = Circuit::new(3);
/// // Two CPHASE skeletons: cx·rz·cx twice.
/// c.cx(0, 1).rz(1, 0.7).cx(0, 1);
/// c.cx(1, 2).rz(2, 0.7).cx(1, 2);
/// let patterns = mine_frequent_subcircuits(&c, &MinerOptions::default());
/// assert!(patterns.iter().any(|p| p.num_gates == 3 && p.support() == 2));
/// ```
pub fn mine_frequent_subcircuits(circuit: &Circuit, opts: &MinerOptions) -> Vec<Pattern> {
    let graph = CircuitGraph::from_circuit(circuit);
    let reach = Reachability::new(&graph);
    if graph.is_empty() {
        return Vec::new();
    }

    // Level 1: single gates grouped by label.
    let mut by_code: HashMap<String, Vec<Vec<usize>>> = HashMap::new();
    for v in 0..graph.len() {
        by_code
            .entry(graph.label(v).to_string())
            .or_default()
            .push(vec![v]);
    }
    let mut frontier: Vec<(String, Vec<Vec<usize>>)> = by_code
        .into_iter()
        .filter(|(_, inst)| inst.len() >= opts.min_support)
        .collect();
    frontier.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
    frontier.truncate(opts.beam_width);

    let mut results: Vec<Pattern> = Vec::new();

    for _level in 2..=opts.max_gates {
        let mut next: HashMap<String, Vec<Vec<usize>>> = HashMap::new();
        let mut seen_sets: HashSet<Vec<usize>> = HashSet::new();
        for (_, instances) in &frontier {
            for inst in instances {
                let members: HashSet<usize> = inst.iter().copied().collect();
                let qubits: BTreeSet<usize> = inst
                    .iter()
                    .flat_map(|&v| graph.qubits(v).iter().copied())
                    .collect();
                // Candidate extensions: neighbours of any member.
                let mut cands: BTreeSet<usize> = BTreeSet::new();
                for &v in inst {
                    for nb in graph.neighbors(v) {
                        if !members.contains(&nb) {
                            cands.insert(nb);
                        }
                    }
                }
                for cand in cands {
                    counter("miner.extensions_tried", 1);
                    let mut new_qubits = qubits.clone();
                    new_qubits.extend(graph.qubits(cand).iter().copied());
                    if new_qubits.len() > opts.max_qubits {
                        counter("miner.rejected_qubit_cap", 1);
                        continue;
                    }
                    let mut grown: Vec<usize> = inst.clone();
                    grown.push(cand);
                    grown.sort_unstable();
                    if seen_sets.contains(&grown) {
                        continue;
                    }
                    if !reach.is_convex(&grown) {
                        counter("miner.rejected_nonconvex", 1);
                        continue;
                    }
                    seen_sets.insert(grown.clone());
                    let code = canonical_code(&graph, &grown);
                    let bucket = next.entry(code).or_default();
                    if bucket.len() < opts.max_instances_per_pattern {
                        bucket.push(grown);
                    }
                }
            }
        }
        let mut level_patterns: Vec<(String, Vec<Vec<usize>>)> = next
            .into_iter()
            .filter(|(_, inst)| inst.len() >= opts.min_support)
            .collect();
        if level_patterns.is_empty() {
            break;
        }
        level_patterns.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        level_patterns.truncate(opts.beam_width);

        for (code, instances) in &level_patterns {
            let sample = &instances[0];
            let num_qubits = sample
                .iter()
                .flat_map(|&v| graph.qubits(v).iter().copied())
                .collect::<BTreeSet<usize>>()
                .len();
            results.push(Pattern {
                code: code.clone(),
                num_gates: sample.len(),
                num_qubits,
                instances: instances.clone(),
            });
        }
        frontier = level_patterns;
    }

    results.sort_by(|a, b| {
        b.coverage()
            .cmp(&a.coverage())
            .then(b.num_gates.cmp(&a.num_gates))
            .then(a.code.cmp(&b.code))
    });
    counter("miner.patterns_found", results.len() as u64);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_swap_pattern_in_a_cx_ladder() {
        // Three SWAP decompositions on different qubit pairs.
        let mut c = Circuit::new(4);
        for (a, b) in [(0usize, 1usize), (1, 2), (2, 3)] {
            c.cx(a, b).cx(b, a).cx(a, b);
        }
        let patterns = mine_frequent_subcircuits(&c, &MinerOptions::default());
        let swap = patterns
            .iter()
            .find(|p| p.code == "cx(0,1);cx(1,0);cx(0,1)")
            .expect("swap pattern found");
        assert_eq!(swap.support(), 3);
        assert_eq!(swap.num_qubits, 2);
    }

    #[test]
    fn respects_the_qubit_cap() {
        let mut c = Circuit::new(5);
        for q in 0..4 {
            c.cx(q, q + 1);
        }
        let opts = MinerOptions {
            max_qubits: 2,
            ..MinerOptions::default()
        };
        for p in mine_frequent_subcircuits(&c, &opts) {
            assert!(p.num_qubits <= 2, "{p:?}");
        }
    }

    #[test]
    fn respects_the_gate_cap() {
        let mut c = Circuit::new(2);
        for _ in 0..10 {
            c.rz(0, 0.4).rz(1, 0.4);
        }
        let opts = MinerOptions {
            max_gates: 3,
            ..MinerOptions::default()
        };
        for p in mine_frequent_subcircuits(&c, &opts) {
            assert!(p.num_gates <= 3, "{p:?}");
        }
    }

    #[test]
    fn infrequent_patterns_are_dropped() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1); // appears once
        c.x(0).x(1); // x appears twice
        let patterns = mine_frequent_subcircuits(&c, &MinerOptions::default());
        assert!(patterns.iter().all(|p| p.support() >= 2), "{patterns:?}");
    }

    #[test]
    fn disjoint_instances_do_not_overlap() {
        // Overlapping rz-rz chains: rz(0) rz(0) rz(0) gives instances
        // {0,1} and {1,2} — only one can be picked.
        let mut c = Circuit::new(1);
        c.rz(0, 0.4).rz(0, 0.4).rz(0, 0.4);
        let patterns = mine_frequent_subcircuits(&c, &MinerOptions::default());
        let chain = patterns
            .iter()
            .find(|p| p.num_gates == 2)
            .expect("2-gate chain mined");
        assert!(chain.support() >= 2);
        assert_eq!(chain.disjoint_instances().len(), 1);
    }

    #[test]
    fn parameterized_circuits_mine_by_symbol() {
        use paqoc_circuit::{Angle, GateKind};
        let mut c = Circuit::new(4);
        for (a, b) in [(0usize, 1usize), (2, 3)] {
            c.cx(a, b);
            c.apply(
                GateKind::Rz,
                vec![b],
                vec![Angle::sym("gamma", 0.3 + a as f64)],
            );
            c.cx(a, b);
        }
        let patterns = mine_frequent_subcircuits(&c, &MinerOptions::default());
        let cphase = patterns
            .iter()
            .find(|p| p.num_gates == 3 && p.num_qubits == 2)
            .expect("parameterized cphase pattern");
        assert_eq!(cphase.support(), 2);
        assert!(cphase.code.contains("gamma"));
    }

    #[test]
    fn empty_circuit_mines_nothing() {
        let c = Circuit::new(3);
        assert!(mine_frequent_subcircuits(&c, &MinerOptions::default()).is_empty());
    }

    #[test]
    fn instances_are_convex() {
        // cx(0,1), h(1), cx(0,1), cx(0,1) — the pair {0,2} is blocked by
        // h; the pair {2,3} is fine.
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(1).cx(0, 1).cx(0, 1);
        let patterns = mine_frequent_subcircuits(&c, &MinerOptions::default());
        let g = CircuitGraph::from_circuit(&c);
        let r = Reachability::new(&g);
        for p in &patterns {
            for inst in &p.instances {
                assert!(r.is_convex(inst), "{inst:?} not convex");
            }
        }
    }
}
