//! APA-basis gate selection and circuit substitution.
//!
//! Given the mined pattern catalog and the user's budget `M` (number of
//! additional APA-basis gates allowed), pick the patterns with the best
//! circuit coverage and carve their disjoint instances out of the
//! circuit. The result is a *grouping*: every instruction lands either
//! in an APA group (pre-formed customized gate, pulse generated once per
//! pattern) or in a singleton group that the criticality-aware generator
//! is free to merge further.

use crate::miner::Pattern;
use std::collections::HashSet;

/// The APA budget: how many distinct APA-basis gates may be introduced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ApaBudget {
    /// `M = 0`: no APA gates; the criticality search sees raw gates.
    None,
    /// `M = k`: at most `k` distinct patterns become APA-basis gates.
    Limit(usize),
    /// `M = inf`: every frequent pattern becomes an APA-basis gate.
    #[default]
    Unlimited,
    /// `M = tuned`: the smallest `M` that makes APA-covered gates the
    /// majority of the circuit (the paper's `paqoc(M=tuned)`).
    Tuned,
}

/// One selected APA-basis gate with its placed occurrences.
#[derive(Clone, Debug)]
pub struct ApaSelection {
    /// The pattern's canonical code (the APA gate's identity).
    pub code: String,
    /// Gates per occurrence.
    pub num_gates: usize,
    /// Qubits per occurrence.
    pub num_qubits: usize,
    /// Non-overlapping placed occurrences (sorted instruction indices).
    pub occurrences: Vec<Vec<usize>>,
}

/// The outcome of APA substitution over a circuit.
#[derive(Clone, Debug, Default)]
pub struct ApaCover {
    /// The selected APA-basis gates, in selection order.
    pub selections: Vec<ApaSelection>,
    /// Total instructions covered by APA occurrences.
    pub covered_gates: usize,
}

impl ApaCover {
    /// Number of distinct APA-basis gates introduced.
    pub fn num_apa_gates(&self) -> usize {
        self.selections.len()
    }

    /// Every covered occurrence as (pattern index, instruction indices).
    pub fn occurrences(&self) -> impl Iterator<Item = (usize, &Vec<usize>)> {
        self.selections
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.occurrences.iter().map(move |o| (i, o)))
    }
}

/// Selects APA-basis gates under a budget by greedy maximum coverage.
///
/// Patterns are considered in the miner's coverage order; each pattern
/// claims every instance that does not overlap previously claimed gates.
/// Patterns left with fewer than 2 placements are skipped (an APA gate
/// used once saves nothing).
///
/// # Examples
///
/// ```
/// use paqoc_circuit::Circuit;
/// use paqoc_mining::{mine_frequent_subcircuits, select_apa_basis, ApaBudget, MinerOptions};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1).cx(1, 0).cx(0, 1);
/// c.cx(1, 2).cx(2, 1).cx(1, 2);
/// let patterns = mine_frequent_subcircuits(&c, &MinerOptions::default());
/// let cover = select_apa_basis(&patterns, ApaBudget::Unlimited, c.len());
/// assert!(cover.covered_gates >= 6); // both SWAP skeletons covered
/// ```
pub fn select_apa_basis(patterns: &[Pattern], budget: ApaBudget, circuit_len: usize) -> ApaCover {
    match budget {
        ApaBudget::None => ApaCover::default(),
        ApaBudget::Limit(k) => greedy_cover(patterns, Some(k), circuit_len, None),
        ApaBudget::Unlimited => greedy_cover(patterns, None, circuit_len, None),
        ApaBudget::Tuned => {
            // Smallest M whose cover makes APA-covered gates the majority;
            // if even unlimited coverage cannot reach a majority, use the
            // unlimited cover (best effort, same as the paper's fallback).
            let majority = circuit_len / 2 + 1;
            let unlimited = greedy_cover(patterns, None, circuit_len, None);
            if unlimited.covered_gates < majority {
                return unlimited;
            }
            greedy_cover(patterns, None, circuit_len, Some(majority))
        }
    }
}

fn greedy_cover(
    patterns: &[Pattern],
    max_patterns: Option<usize>,
    _circuit_len: usize,
    stop_at_coverage: Option<usize>,
) -> ApaCover {
    let mut used: HashSet<usize> = HashSet::new();
    let mut cover = ApaCover::default();
    for pattern in patterns {
        if pattern.num_gates < 2 {
            continue; // single gates are already basis gates
        }
        if let Some(k) = max_patterns {
            if cover.selections.len() >= k {
                break;
            }
        }
        if let Some(goal) = stop_at_coverage {
            if cover.covered_gates >= goal {
                break;
            }
        }
        let mut occurrences = Vec::new();
        for inst in pattern.disjoint_instances() {
            if inst.iter().all(|i| !used.contains(i)) {
                used.extend(inst.iter().copied());
                occurrences.push(inst);
            }
        }
        if occurrences.len() >= 2 {
            cover.covered_gates += occurrences.len() * pattern.num_gates;
            cover.selections.push(ApaSelection {
                code: pattern.code.clone(),
                num_gates: pattern.num_gates,
                num_qubits: pattern.num_qubits,
                occurrences,
            });
        } else {
            for inst in occurrences {
                for i in inst {
                    used.remove(&i);
                }
            }
        }
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{mine_frequent_subcircuits, MinerOptions};
    use paqoc_circuit::Circuit;

    /// Two SWAP skeletons plus two CPHASE skeletons.
    fn sample() -> Circuit {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(1, 0).cx(0, 1);
        c.cx(2, 3).cx(3, 2).cx(2, 3);
        c.cx(0, 1).rz(1, 0.7).cx(0, 1);
        c.cx(2, 3).rz(3, 0.7).cx(2, 3);
        c
    }

    fn patterns() -> Vec<Pattern> {
        mine_frequent_subcircuits(&sample(), &MinerOptions::default())
    }

    #[test]
    fn none_budget_selects_nothing() {
        let cover = select_apa_basis(&patterns(), ApaBudget::None, sample().len());
        assert_eq!(cover.num_apa_gates(), 0);
        assert_eq!(cover.covered_gates, 0);
    }

    #[test]
    fn unlimited_budget_covers_the_whole_circuit() {
        // The miner may legitimately pick one 6-gate super-pattern
        // (SWAP followed by CPHASE on the same pair) instead of two
        // 3-gate patterns; either way every gate must be covered.
        let cover = select_apa_basis(&patterns(), ApaBudget::Unlimited, sample().len());
        assert!(cover.num_apa_gates() >= 1, "{cover:?}");
        assert_eq!(cover.covered_gates, 12, "{cover:?}");
    }

    #[test]
    fn limit_one_selects_the_best_coverage_pattern() {
        let all = select_apa_basis(&patterns(), ApaBudget::Unlimited, sample().len());
        let one = select_apa_basis(&patterns(), ApaBudget::Limit(1), sample().len());
        assert_eq!(one.num_apa_gates(), 1);
        assert!(one.covered_gates <= all.covered_gates);
        assert!(one.covered_gates >= 6);
    }

    #[test]
    fn occurrences_never_overlap() {
        let cover = select_apa_basis(&patterns(), ApaBudget::Unlimited, sample().len());
        let mut seen = HashSet::new();
        for (_, occ) in cover.occurrences() {
            for &i in occ {
                assert!(seen.insert(i), "instruction {i} claimed twice");
            }
        }
    }

    #[test]
    fn tuned_budget_reaches_majority_when_possible() {
        let c = sample();
        let cover = select_apa_basis(&patterns(), ApaBudget::Tuned, c.len());
        assert!(
            cover.covered_gates > c.len() / 2,
            "covered {} of {}",
            cover.covered_gates,
            c.len()
        );
    }

    #[test]
    fn single_use_patterns_are_not_selected() {
        // A pattern with 2 embeddings that overlap can only place once →
        // rejected.
        let mut c = Circuit::new(1);
        c.rz(0, 0.4).rz(0, 0.4).rz(0, 0.4);
        let pats = mine_frequent_subcircuits(&c, &MinerOptions::default());
        let cover = select_apa_basis(&pats, ApaBudget::Unlimited, c.len());
        assert_eq!(cover.num_apa_gates(), 0, "{cover:?}");
    }
}
