//! # paqoc-mining
//!
//! PAQOC's frequent-subcircuits miner: the labeled circuit graph with
//! control/target edge roles ([`CircuitGraph`]), DAG [`Reachability`]
//! with convexity queries, canonical pattern codes ([`canonical_code`]),
//! the level-wise pattern grower ([`mine_frequent_subcircuits`]) and the
//! coverage-greedy APA-basis selection ([`select_apa_basis`]) with the
//! paper's `M ∈ {0, k, tuned, inf}` budgets.
//!
//! ## Example
//!
//! ```
//! use paqoc_circuit::Circuit;
//! use paqoc_mining::{mine_frequent_subcircuits, select_apa_basis, ApaBudget, MinerOptions};
//!
//! let mut c = Circuit::new(3);
//! c.cx(0, 1).cx(1, 0).cx(0, 1); // SWAP skeleton ×2
//! c.cx(1, 2).cx(2, 1).cx(1, 2);
//! let patterns = mine_frequent_subcircuits(&c, &MinerOptions::default());
//! let cover = select_apa_basis(&patterns, ApaBudget::Unlimited, c.len());
//! assert_eq!(cover.num_apa_gates(), 1); // one APA gate: the SWAP
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod graph;
mod miner;
mod select;

pub use canon::canonical_code;
pub use graph::{CircuitGraph, LabeledEdge, Reachability};
pub use miner::{mine_frequent_subcircuits, MinerOptions, Pattern};
pub use select::{select_apa_basis, ApaBudget, ApaCover, ApaSelection};
