//! # paqoc-workloads
//!
//! The evaluation workloads of the PAQOC reproduction: generators for
//! the seventeen Table-I application benchmarks ([`all_benchmarks`]) and
//! the 150-circuit reversible-network observation corpus with the
//! paper's subcircuit extractor ([`corpus`], [`extract_subcircuits`]).
//!
//! ## Example
//!
//! ```
//! use paqoc_workloads::{all_benchmarks, benchmark};
//!
//! assert_eq!(all_benchmarks().len(), 17);
//! let qft = benchmark("qft").expect("qft exists");
//! assert_eq!((qft.build)().num_qubits(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmarks;
mod corpus;

pub use benchmarks::{all_benchmarks, benchmark, Benchmark};
pub use corpus::{corpus, extract_subcircuits, random_reversible_circuit};
