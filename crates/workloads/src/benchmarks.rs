//! The seventeen Table-I application benchmarks.
//!
//! RevLib/ScaffCC netlists are not redistributable here, so each
//! generator synthesizes a structurally faithful circuit: the same
//! algorithm family, qubit count, and gate mix as the paper's Table I
//! (Toffoli networks, adders, oracles, QFT/QAOA/QPE structure, …). The
//! experiments depend on circuit *structure* — recurring subcircuits,
//! dependence shape, criticality — which these generators reproduce.

use paqoc_circuit::{Angle, Circuit, GateKind};
use std::f64::consts::PI;

/// A named benchmark circuit generator.
#[derive(Clone, Copy)]
pub struct Benchmark {
    /// Table-I name.
    pub name: &'static str,
    /// Table-I description.
    pub description: &'static str,
    /// Builds the logical circuit.
    pub build: fn() -> Circuit,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .finish()
    }
}

/// All seventeen Table-I benchmarks, in the paper's order.
///
/// Infallible by construction: every benchmark is built programmatically
/// through the checked [`Circuit`] API (no QASM parsing on this path),
/// so neither this function nor [`benchmark`] can fail on malformed
/// input. The `every_benchmark_roundtrips_through_qasm` test pins the
/// stronger property that each built circuit also serializes to QASM
/// and parses back to a structurally equal circuit.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "mod5d2_64",
            description: "Toffoli network",
            build: mod5d2,
        },
        Benchmark {
            name: "rd32_270",
            description: "Bit adder",
            build: rd32,
        },
        Benchmark {
            name: "decod24-v1_41",
            description: "Binary decoder",
            build: decod24,
        },
        Benchmark {
            name: "4gt10-v1_81",
            description: "4 greater than 10",
            build: gt10,
        },
        Benchmark {
            name: "cnt3-5_179",
            description: "Ternary counter",
            build: cnt3_5,
        },
        Benchmark {
            name: "hwb4_49",
            description: "Hidden weighted bit",
            build: hwb4,
        },
        Benchmark {
            name: "ham7_104",
            description: "Hamming code",
            build: ham7,
        },
        Benchmark {
            name: "majority_239",
            description: "Majority function",
            build: majority,
        },
        Benchmark {
            name: "bv",
            description: "Bernstein Vazirani",
            build: bv,
        },
        Benchmark {
            name: "adder",
            description: "Cuccaro Adder",
            build: cuccaro_adder,
        },
        Benchmark {
            name: "qft",
            description: "QFT",
            build: qft,
        },
        Benchmark {
            name: "qaoa",
            description: "QAOA",
            build: qaoa,
        },
        Benchmark {
            name: "supre",
            description: "Supremacy",
            build: supremacy,
        },
        Benchmark {
            name: "simon",
            description: "Simon's algorithm",
            build: simon,
        },
        Benchmark {
            name: "qpe",
            description: "QPE",
            build: qpe,
        },
        Benchmark {
            name: "dnn",
            description: "Deep neural network",
            build: dnn,
        },
        Benchmark {
            name: "bb84",
            description: "Crypto. proto",
            build: bb84,
        },
    ]
}

/// Looks a benchmark up by its Table-I name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// `mod5d2_64` — 16-qubit Toffoli network computing x mod 5 digits.
fn mod5d2(/* 16q, ~28 1q + 25 2q */) -> Circuit {
    let mut c = Circuit::new(16);
    // A cascade of Toffoli stages folding pairs into carry lines,
    // interleaved with CX corrections, RevLib-style.
    for k in 0..4 {
        let a = 3 * k;
        c.ccx(a, a + 1, a + 2);
        c.cx(a + 2, a + 3);
    }
    for k in 0..3 {
        c.cx(3 * k + 2, 14);
        c.x(3 * k + 1);
    }
    c.ccx(12, 13, 15).cx(14, 15).x(15);
    c
}

/// `rd32_270` — 5-qubit bit adder (two MAJ stages plus sum fixups).
fn rd32() -> Circuit {
    let mut c = Circuit::new(5);
    for _ in 0..3 {
        // MAJ
        c.cx(2, 1).cx(2, 0).ccx(0, 1, 2);
        // partial UMA with sum extraction
        c.ccx(0, 1, 3).cx(2, 4).cx(0, 1);
        c.x(0).h(4);
    }
    c
}

/// `decod24-v1_41` — 2-to-4 binary decoder on 5 qubits.
fn decod24() -> Circuit {
    let mut c = Circuit::new(5);
    for _ in 0..3 {
        c.x(0).ccx(0, 1, 2).x(0);
        c.x(1).ccx(0, 1, 3).x(1);
        c.ccx(0, 1, 4).cx(2, 3).cx(3, 4);
    }
    c
}

/// `4gt10-v1_81` — "4 greater than 10" comparator on 5 qubits.
fn gt10() -> Circuit {
    let mut c = Circuit::new(5);
    for _ in 0..4 {
        c.ccx(0, 1, 4).ccx(2, 3, 4);
        c.cx(1, 2).cx(3, 4).x(2);
        c.ccx(1, 2, 3).cx(0, 1).x(0);
    }
    c
}

/// `cnt3-5_179` — 16-qubit ternary counter.
fn cnt3_5() -> Circuit {
    let mut c = Circuit::new(16);
    for round in 0..3 {
        for k in 0..5 {
            let a = k * 3;
            c.ccx(a, a + 1, a + 2);
            c.cx(a, a + 1);
            if round % 2 == 0 {
                c.x(a);
            }
        }
        c.cx(2, 15).cx(5, 15).cx(8, 15);
    }
    c
}

/// `hwb4_49` — hidden-weighted-bit on 5 qubits (dense mixed network).
fn hwb4() -> Circuit {
    let mut c = Circuit::new(5);
    for r in 0..5 {
        c.ccx(r % 5, (r + 1) % 5, (r + 2) % 5);
        c.cx((r + 2) % 5, (r + 3) % 5);
        c.cx((r + 3) % 5, (r + 4) % 5);
        c.x((r + 1) % 5);
        c.ccx((r + 3) % 5, (r + 4) % 5, r % 5);
    }
    c
}

/// `ham7_104` — Hamming(7,4) coding network on 16 qubits.
fn ham7() -> Circuit {
    let mut c = Circuit::new(16);
    for r in 0..4 {
        // parity computation
        for (a, b) in [(0usize, 3usize), (1, 3), (2, 3), (0, 4), (1, 4), (2, 5)] {
            c.cx(a + r, b + r);
        }
        c.ccx(r, r + 1, r + 6);
        c.ccx(r + 2, r + 3, r + 7);
        c.x(r + 6).h(r + 8);
        c.ccx(r + 6, r + 7, r + 8);
    }
    c
}

/// `majority_239` — 16-qubit majority-vote network (the paper's largest
/// reversible benchmark, ~600 basis gates).
fn majority() -> Circuit {
    let mut c = Circuit::new(16);
    for round in 0..6 {
        for k in 0..7 {
            let a = k * 2;
            c.ccx(a, a + 1, (a + 2) % 16);
            c.cx((a + 2) % 16, (a + 3) % 16);
        }
        for q in 0..4 {
            c.x(q + round % 4);
        }
        c.ccx(0, 8, 15).ccx(4, 12, 15);
    }
    c
}

/// `bv` — Bernstein–Vazirani on 21 qubits with the all-ones hidden
/// string (a linear CX oracle, the paper's SWAP-pattern source;
/// Table I counts: 43 one-qubit gates, 20 two-qubit gates).
fn bv() -> Circuit {
    let n = 21;
    let mut c = Circuit::new(n);
    let target = n - 1;
    c.x(target).h(target);
    for q in 0..target {
        c.h(q);
    }
    for q in 0..target {
        c.cx(q, target);
    }
    for q in 0..target {
        c.h(q);
    }
    c
}

/// `adder` — the Cuccaro ripple-carry adder on 18 qubits
/// (8+8 operand bits, carry-in, carry-out), built from MAJ/UMA blocks.
fn cuccaro_adder() -> Circuit {
    let bits = 8;
    let mut c = Circuit::new(2 * bits + 2);
    // Layout: c0 = qubit 0, a_i = 1+2i, b_i = 2+2i, carry-out = last.
    let a = |i: usize| 1 + 2 * i;
    let b = |i: usize| 2 + 2 * i;
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };
    maj(&mut c, 0, b(0), a(0));
    for i in 1..bits {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(bits - 1), 2 * bits + 1);
    for i in (1..bits).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, 0, b(0), a(0));
    c
}

/// `qft` — the 16-qubit quantum Fourier transform.
fn qft() -> Circuit {
    let n = 16;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
        for t in (q + 1)..n {
            let angle = PI / f64::powi(2.0, (t - q) as i32);
            c.cp(t, q, angle);
        }
    }
    for q in 0..n / 2 {
        c.swap(q, n - 1 - q);
    }
    c
}

/// `qaoa` — 3 rounds of QAOA-MaxCut on a 3-regular 10-vertex graph,
/// with symbolic per-round parameters (the parameterized-circuit case).
fn qaoa() -> Circuit {
    let n = 10;
    let mut c = Circuit::new(n);
    // 3-regular circulant graph: edges (i, i+1) and (i, i+5).
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    edges.extend((0..n / 2).map(|i| (i, i + 5)));
    for q in 0..n {
        c.h(q);
    }
    for round in 0..3 {
        let gamma = Angle::sym(format!("gamma{round}"), 0.4 + 0.2 * round as f64);
        let beta = 0.3 + 0.15 * round as f64;
        for &(u, v) in &edges {
            c.apply(GateKind::CPhase, vec![u, v], vec![gamma.clone()]);
        }
        for q in 0..n {
            c.apply(
                GateKind::Rx,
                vec![q],
                vec![Angle::sym(format!("beta{round}"), beta)],
            );
        }
    }
    c
}

/// `supre` — a 25-qubit quantum-supremacy-style random circuit:
/// H layer, repeated nearest-neighbour CZ pattern with interspersed
/// √X/√Y/T gates, H layer (deterministic pseudo-random choices).
fn supremacy() -> Circuit {
    let (rows, cols) = (5usize, 5usize);
    let n = rows * cols;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    let mut pick = 7u64;
    let mut next = || {
        pick = pick
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (pick >> 33) % 3
    };
    for layer in 0..4 {
        // CZ pattern: alternate horizontal/vertical pairings.
        if layer % 2 == 0 {
            for r in 0..rows {
                for col in (layer / 2 % 2..cols - 1).step_by(2) {
                    c.cz(r * cols + col, r * cols + col + 1);
                }
            }
        } else {
            for r in (layer / 2 % 2..rows - 1).step_by(2) {
                for col in 0..cols {
                    c.cz(r * cols + col, (r + 1) * cols + col);
                }
            }
        }
        for q in 0..n {
            match next() {
                0 => {
                    c.sx(q);
                }
                1 => {
                    c.apply(GateKind::Ry, vec![q], vec![Angle::new(PI / 2.0)]);
                }
                _ => {
                    c.t(q);
                }
            }
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// `simon` — Simon's algorithm on 6 qubits (3+3) with secret `s = 110`.
fn simon() -> Circuit {
    let mut c = Circuit::new(6);
    for q in 0..3 {
        c.h(q);
    }
    // Oracle: copy + secret-string XOR masked by q0.
    c.cx(0, 3).cx(1, 4).cx(2, 5);
    c.cx(0, 4).cx(0, 5);
    for q in 0..3 {
        c.h(q);
    }
    c.x(3).cx(3, 4);
    c
}

/// `qpe` — quantum phase estimation with 8 counting qubits on 9 qubits.
fn qpe() -> Circuit {
    let n = 9;
    let counting = 8;
    let mut c = Circuit::new(n);
    c.x(n - 1);
    for q in 0..counting {
        c.h(q);
    }
    for q in 0..counting {
        let angle = 2.0 * PI * 0.3125 * f64::powi(2.0, q as i32);
        c.cp(q, n - 1, angle % (2.0 * PI));
    }
    // Inverse QFT on the counting register (no swaps, compact form).
    for q in (0..counting).rev() {
        for t in (q + 1)..counting {
            c.cp(t, q, -PI / f64::powi(2.0, (t - q) as i32));
        }
        c.h(q);
    }
    c
}

/// `dnn` — an 8-qubit quantum neural-network ansatz: many dense
/// entangling layers (the paper's most two-qubit-heavy benchmark).
fn dnn() -> Circuit {
    let n = 8;
    let mut c = Circuit::new(n);
    for layer in 0..12 {
        for q in 0..n {
            c.ry(q, 0.1 + 0.05 * (layer * n + q) as f64);
        }
        // all-to-all entangler
        for a in 0..n {
            for b in (a + 1)..n {
                c.cx(a, b);
                if (a + b + layer) % 2 == 0 {
                    c.cz(a, b);
                }
            }
        }
        for q in 0..n {
            c.rz(q, 0.2 + 0.01 * q as f64);
        }
    }
    c
}

/// `bb84` — the BB84 preparation circuit: single-qubit gates only.
fn bb84() -> Circuit {
    let mut c = Circuit::new(8);
    // bit choices and basis choices, deterministic pattern
    let bits = [1, 0, 1, 1, 0, 0, 1, 0];
    let bases = [0, 1, 1, 0, 1, 0, 0, 1];
    for q in 0..8 {
        if bits[q] == 1 {
            c.x(q);
        }
        if bases[q] == 1 {
            c.h(q);
        }
    }
    for q in 0..8 {
        if (bits[q] + bases[q]) % 2 == 0 {
            c.t(q);
        } else {
            c.s(q);
        }
    }
    // Measurement-basis rotations for the receiver side.
    for (q, &basis) in bases.iter().enumerate() {
        if basis == 0 {
            c.h(q);
        } else {
            c.x(q);
        }
    }
    c.h(0).h(3).x(5);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_circuit::{decompose, Basis};

    #[test]
    fn seventeen_benchmarks_exist() {
        assert_eq!(all_benchmarks().len(), 17);
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(benchmark("qft").is_some());
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn qubit_counts_match_table_one() {
        let expect = [
            ("mod5d2_64", 16),
            ("rd32_270", 5),
            ("decod24-v1_41", 5),
            ("4gt10-v1_81", 5),
            ("cnt3-5_179", 16),
            ("hwb4_49", 5),
            ("ham7_104", 16),
            ("majority_239", 16),
            ("bv", 21),
            ("adder", 18),
            ("qft", 16),
            ("qaoa", 10),
            ("supre", 25),
            ("simon", 6),
            ("qpe", 9),
            ("dnn", 8),
            ("bb84", 8),
        ];
        for (name, qubits) in expect {
            let b = benchmark(name).expect(name);
            assert_eq!((b.build)().num_qubits(), qubits, "{name}");
        }
    }

    #[test]
    fn every_benchmark_lowers_to_the_ibm_basis() {
        for b in all_benchmarks() {
            let c = (b.build)();
            let low = decompose(&c, Basis::Ibm);
            assert!(low.len() >= c.len(), "{}", b.name);
            assert!(
                low.iter().all(|i| Basis::Ibm.contains(i.gate())),
                "{}",
                b.name
            );
        }
    }

    #[test]
    fn every_benchmark_roundtrips_through_qasm() {
        // The infallibility contract of `all_benchmarks`: every embedded
        // benchmark serializes to QASM and parses back to a structurally
        // equal circuit, so QASM-based consumers can never hit a parse
        // error on these workloads. Angles are compared approximately:
        // `to_qasm` prints a finite number of digits, so exact bit
        // equality is not attainable for irrational rotation angles.
        for b in all_benchmarks() {
            let c = (b.build)();
            let text = paqoc_circuit::to_qasm(&c);
            let parsed = match paqoc_circuit::parse_qasm(&text) {
                Ok(parsed) => parsed,
                Err(e) => panic!("{} failed to re-parse its own QASM: {e}", b.name),
            };
            assert_eq!(parsed.num_qubits(), c.num_qubits(), "{}", b.name);
            assert_eq!(parsed.len(), c.len(), "{} gate count changed", b.name);
            for (got, want) in parsed.instructions().iter().zip(c.instructions()) {
                assert_eq!(got.gate(), want.gate(), "{}", b.name);
                assert_eq!(got.qubits(), want.qubits(), "{}", b.name);
                assert_eq!(got.params().len(), want.params().len(), "{}", b.name);
                for (ga, wa) in got.params().iter().zip(want.params()) {
                    assert!(
                        (ga.value - wa.value).abs() < 1e-9,
                        "{}: angle {} vs {}",
                        b.name,
                        ga.value,
                        wa.value
                    );
                }
            }
        }
    }

    #[test]
    fn bb84_has_no_two_qubit_gates() {
        let c = (benchmark("bb84").expect("exists").build)();
        assert_eq!(c.two_qubit_gate_count(), 0);
        assert!(c.one_qubit_gate_count() >= 20);
    }

    #[test]
    fn dnn_is_two_qubit_heavy() {
        let c = (benchmark("dnn").expect("exists").build)();
        assert!(c.two_qubit_gate_count() > 3 * c.one_qubit_gate_count() / 2);
        assert!(c.two_qubit_gate_count() > 400);
    }

    #[test]
    fn benchmarks_are_deterministic() {
        for b in all_benchmarks() {
            assert_eq!((b.build)(), (b.build)(), "{}", b.name);
        }
    }

    #[test]
    fn qaoa_is_parameterized_symbolically() {
        let c = (benchmark("qaoa").expect("exists").build)();
        let has_symbol = c.iter().any(|i| {
            i.params()
                .iter()
                .any(|a| a.symbol.as_deref() == Some("gamma0"))
        });
        assert!(has_symbol);
    }

    #[test]
    fn adder_alternates_maj_uma() {
        let c = (benchmark("adder").expect("exists").build)();
        // MAJ/UMA structure: 3 gates each, 8+8 blocks plus carry CX.
        assert_eq!(c.len(), 3 * 8 + 1 + 3 * 8);
        assert_eq!(c.gate_count_by_arity(3), 16); // one CCX per block
    }
}
