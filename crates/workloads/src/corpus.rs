//! The 150-benchmark observation corpus (paper Section III-B, Fig. 6).
//!
//! The paper derives Observations 1 and 2 from 150 RevLib/ScaffCC
//! benchmarks; this module generates a deterministic, structurally
//! similar corpus (mixed Toffoli/CX/1-qubit reversible networks of
//! varying width and length) and the subcircuit extractor: maximal
//! consecutive runs of gates confined to the same ≤ `max_qubits` qubit
//! set, exactly the unit the paper compares merged-vs-summed latency on.

use paqoc_circuit::{decompose, Basis, Circuit, Instruction};
use paqoc_math::Rng;
use std::collections::BTreeSet;

/// Generates the `count`-circuit corpus (the paper uses 150).
///
/// Circuits are reversible-network style: CCX/CX/X/H/T/RZ mixes over
/// 4–16 qubits, 20–200 gates, fully deterministic from `seed`.
pub fn corpus(count: usize, seed: u64) -> Vec<Circuit> {
    (0..count)
        .map(|i| random_reversible_circuit(seed.wrapping_add(i as u64)))
        .collect()
}

/// One deterministic reversible-network circuit.
pub fn random_reversible_circuit(seed: u64) -> Circuit {
    let mut rng = Rng::seed_from_u64(seed);
    let n = rng.random_range(4..=16usize);
    let gates = rng.random_range(20..=200usize);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        match rng.random_range(0..10u32) {
            0..=2 => {
                // Toffoli on three distinct qubits.
                let (a, b, t) = three_distinct(&mut rng, n);
                c.ccx(a, b, t);
            }
            3..=6 => {
                let (a, b) = two_distinct(&mut rng, n);
                c.cx(a, b);
            }
            7 => {
                let q = rng.random_range(0..n);
                c.x(q);
            }
            8 => {
                let q = rng.random_range(0..n);
                c.h(q);
            }
            _ => {
                let q = rng.random_range(0..n);
                c.rz(q, rng.random_range(0.0..std::f64::consts::TAU));
            }
        }
    }
    c
}

fn two_distinct(rng: &mut Rng, n: usize) -> (usize, usize) {
    let a = rng.random_range(0..n);
    let mut b = rng.random_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

fn three_distinct(rng: &mut Rng, n: usize) -> (usize, usize, usize) {
    let (a, b) = two_distinct(rng, n);
    let mut t = rng.random_range(0..n);
    while t == a || t == b {
        t = rng.random_range(0..n);
    }
    (a, b, t)
}

/// Extracts the paper's observation units from a circuit: maximal
/// consecutive gate runs confined to the same qubit set of at most
/// `max_qubits` qubits (after lowering to the universal basis).
///
/// Returns runs of length ≥ 2 (a single gate merges with nothing).
pub fn extract_subcircuits(circuit: &Circuit, max_qubits: usize) -> Vec<Vec<Instruction>> {
    let lowered = decompose(circuit, Basis::Ibm);
    let mut runs: Vec<Vec<Instruction>> = Vec::new();
    // Greedy sweep: maintain one open run per "qubit-set window"; a gate
    // extends the newest run when the union stays within max_qubits and
    // no dependence from outside intervenes (tracked per qubit).
    let mut open: Option<(BTreeSet<usize>, Vec<Instruction>)> = None;
    for inst in lowered.iter() {
        let qs: BTreeSet<usize> = inst.qubits().iter().copied().collect();
        match open.take() {
            Some((mut set, mut insts)) => {
                let union: BTreeSet<usize> = set.union(&qs).copied().collect();
                if union.len() <= max_qubits {
                    set = union;
                    insts.push(inst.clone());
                    open = Some((set, insts));
                } else {
                    if insts.len() >= 2 {
                        runs.push(insts);
                    }
                    open = Some((qs, vec![inst.clone()]));
                }
            }
            None => {
                open = Some((qs, vec![inst.clone()]));
            }
        }
    }
    if let Some((_, insts)) = open {
        if insts.len() >= 2 {
            runs.push(insts);
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let a = corpus(10, 42);
        let b = corpus(10, 42);
        assert_eq!(a.len(), 10);
        assert_eq!(a, b);
        for c in &a {
            assert!((4..=16).contains(&c.num_qubits()));
            assert!((20..=200).contains(&c.len()));
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(corpus(3, 1), corpus(3, 2));
    }

    #[test]
    fn extracted_runs_respect_the_qubit_cap() {
        for c in corpus(5, 7) {
            for run in extract_subcircuits(&c, 3) {
                let qubits: BTreeSet<usize> = run
                    .iter()
                    .flat_map(|i| i.qubits().iter().copied())
                    .collect();
                assert!(qubits.len() <= 3);
                assert!(run.len() >= 2);
            }
        }
    }

    #[test]
    fn runs_are_consecutive_in_the_lowered_circuit() {
        // Every run's gates must appear as a contiguous subsequence.
        let c = random_reversible_circuit(9);
        let lowered = decompose(&c, Basis::Ibm);
        let all: Vec<String> = lowered.iter().map(|i| format!("{i}")).collect();
        for run in extract_subcircuits(&c, 3) {
            let run_strs: Vec<String> = run.iter().map(|i| format!("{i}")).collect();
            let found = all
                .windows(run_strs.len())
                .any(|w| w == run_strs.as_slice());
            assert!(found, "run not contiguous: {run_strs:?}");
        }
    }

    #[test]
    fn single_qubit_extraction_works() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.1).rz(0, 0.2).rz(0, 0.3).cx(0, 1);
        let runs = extract_subcircuits(&c, 1);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len(), 3);
    }
}
