//! The typed error and degradation vocabulary of the pipeline.
//!
//! [`CompileError`] is what [`crate::try_compile`] returns when a
//! compilation cannot produce a result at all; [`Degradation`] records
//! what a *successful* compilation had to sacrifice along the way (see
//! `CompilationResult::degradations`). The split is deliberate: under
//! pulse-source failure the pipeline's contract is to degrade — retry,
//! fall back, mark partial — and only error when degradation is
//! impossible (malformed input, an unsatisfiable hard constraint, or
//! fallbacks explicitly disabled).

use paqoc_circuit::ParseQasmError;
use paqoc_device::PulseGenError;
use paqoc_mapping::MapError;
use std::time::Duration;

/// Why a compilation produced no result.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// The circuit cannot be placed on the device.
    Mapping(MapError),
    /// The input circuit is structurally unusable (zero qubits, a gate
    /// addressing a qubit outside the register, a QASM parse failure).
    MalformedCircuit(String),
    /// The pulse source failed on a group and estimator fallback was
    /// disabled (`PipelineOptions::allow_estimator_fallback = false`).
    PulseSource {
        /// The underlying generation failure.
        source: PulseGenError,
        /// Number of gates in the group that failed.
        gates: usize,
    },
    /// The wall-clock deadline was already spent before compilation
    /// could begin. (A deadline hit *during* generation degrades to a
    /// partial result instead — see [`Degradation::DeadlineHit`].)
    DeadlineExceeded {
        /// The configured deadline.
        deadline: Duration,
    },
    /// The pulse source panicked on a group and estimator fallback was
    /// disabled, so the caught crash cannot degrade into anything.
    SourcePanic {
        /// Number of gates in the group whose generation panicked.
        gates: usize,
        /// The panic payload captured by the supervisor.
        message: String,
    },
    /// The compiled circuit's estimated success probability fell below
    /// the hard floor requested via `PipelineOptions::min_esp`.
    EspUnsatisfiable {
        /// ESP the compilation achieved.
        achieved: f64,
        /// ESP floor that was required.
        required: f64,
    },
    /// `PipelineOptions::backend` named a backend, but the device the
    /// compilation was handed belongs to a different one. Compiling
    /// anyway would file the pulses under the wrong store namespace, so
    /// this fails fast instead.
    BackendMismatch {
        /// Backend the options requested.
        requested: String,
        /// Backend the device actually belongs to.
        actual: String,
    },
}

impl CompileError {
    /// A stable machine-readable tag for this error, used as the typed
    /// `kind` field when errors cross a serialization boundary (the
    /// serve wire protocol). Tags are snake_case and never change once
    /// shipped.
    pub fn kind(&self) -> &'static str {
        match self {
            CompileError::Mapping(_) => "mapping",
            CompileError::MalformedCircuit(_) => "malformed_circuit",
            CompileError::PulseSource { .. } => "pulse_source",
            CompileError::DeadlineExceeded { .. } => "deadline_exceeded",
            CompileError::SourcePanic { .. } => "source_panic",
            CompileError::EspUnsatisfiable { .. } => "esp_unsatisfiable",
            CompileError::BackendMismatch { .. } => "backend_mismatch",
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Mapping(e) => write!(f, "mapping failed: {e}"),
            CompileError::MalformedCircuit(msg) => write!(f, "malformed circuit: {msg}"),
            CompileError::PulseSource { source, gates } => {
                write!(
                    f,
                    "pulse generation failed on a {gates}-gate group: {source}"
                )
            }
            CompileError::DeadlineExceeded { deadline } => {
                write!(
                    f,
                    "compilation deadline of {deadline:?} exceeded before start"
                )
            }
            CompileError::SourcePanic { gates, message } => write!(
                f,
                "pulse source panicked on a {gates}-gate group: {message}"
            ),
            CompileError::EspUnsatisfiable { achieved, required } => write!(
                f,
                "achievable ESP {achieved:.6} is below the required floor {required:.6}"
            ),
            CompileError::BackendMismatch { requested, actual } => write!(
                f,
                "options request backend {requested:?} but the device belongs to {actual:?}"
            ),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Mapping(e) => Some(e),
            CompileError::PulseSource { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<MapError> for CompileError {
    fn from(e: MapError) -> Self {
        CompileError::Mapping(e)
    }
}

impl From<ParseQasmError> for CompileError {
    fn from(e: ParseQasmError) -> Self {
        CompileError::MalformedCircuit(e.to_string())
    }
}

impl From<PulseGenError> for CompileError {
    fn from(e: PulseGenError) -> Self {
        CompileError::PulseSource {
            source: e,
            gates: 0,
        }
    }
}

/// One concession a successful compilation made to stay successful.
#[derive(Clone, Debug, PartialEq)]
pub enum Degradation {
    /// A customized (merged) group's pulse could not be generated even
    /// after retries; the merge was rolled back and its gates were
    /// re-attached from smaller groups.
    MergeRolledBack {
        /// Gates in the rolled-back group.
        gates: usize,
        /// Qubits the group spanned.
        qubits: usize,
        /// The generation failure that forced the rollback.
        reason: String,
    },
    /// A group kept its analytic-model estimate because the real pulse
    /// source failed on it even as a singleton.
    EstimatorFallback {
        /// Gates in the group.
        gates: usize,
        /// The generation failure that forced the fallback.
        reason: String,
    },
    /// The wall-clock deadline expired mid-compilation; the phase named
    /// here was cut short and the result is marked partial.
    DeadlineHit {
        /// Phase interrupted (`"merge"` or `"attach"`).
        phase: String,
    },
    /// The pulse-generation cost budget ran out mid-compilation; the
    /// result is marked partial.
    CostBudgetExhausted {
        /// Cost units spent when the budget tripped.
        spent: f64,
        /// The configured budget.
        budget: f64,
    },
    /// The pulse source **panicked** on a group; the supervisor caught
    /// the unwind, quarantined the group's cache key, and the group fell
    /// through the usual ladder (rollback, then estimator fallback).
    SourcePanic {
        /// Gates in the group whose generation panicked.
        gates: usize,
        /// The panic payload captured by the supervisor.
        message: String,
    },
    /// The persistent pulse store could not be opened; compilation
    /// proceeded with the in-memory table only, so this run's pulses
    /// will not survive the process.
    StoreUnavailable {
        /// Why the store could not be opened.
        reason: String,
    },
    /// The persistent pulse store opened read-only — another process
    /// holds the single-writer lock (or read-only was requested).
    /// Cached pulses are still served, but this run's fresh pulses will
    /// not be persisted.
    StoreReadOnly {
        /// Why the handle is read-only (`"lock-held"` or
        /// `"requested"`).
        reason: String,
    },
}

impl Degradation {
    /// A stable machine-readable tag for this degradation, used as the
    /// typed `kind` field when degradations cross a serialization
    /// boundary (the serve wire protocol). Tags are snake_case and
    /// never change once shipped.
    pub fn kind(&self) -> &'static str {
        match self {
            Degradation::MergeRolledBack { .. } => "merge_rolled_back",
            Degradation::EstimatorFallback { .. } => "estimator_fallback",
            Degradation::DeadlineHit { .. } => "deadline_hit",
            Degradation::CostBudgetExhausted { .. } => "cost_budget_exhausted",
            Degradation::SourcePanic { .. } => "source_panic",
            Degradation::StoreUnavailable { .. } => "store_unavailable",
            Degradation::StoreReadOnly { .. } => "store_read_only",
        }
    }
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Degradation::MergeRolledBack {
                gates,
                qubits,
                reason,
            } => write!(
                f,
                "rolled back a {gates}-gate merge on {qubits} qubits ({reason})"
            ),
            Degradation::EstimatorFallback { gates, reason } => write!(
                f,
                "kept the analytic estimate for a {gates}-gate group ({reason})"
            ),
            Degradation::DeadlineHit { phase } => {
                write!(f, "deadline hit during {phase}; result is partial")
            }
            Degradation::CostBudgetExhausted { spent, budget } => write!(
                f,
                "cost budget exhausted ({spent:.1} of {budget:.1} units); result is partial"
            ),
            Degradation::SourcePanic { gates, message } => write!(
                f,
                "pulse source panicked on a {gates}-gate group ({message}); key quarantined"
            ),
            Degradation::StoreUnavailable { reason } => write!(
                f,
                "persistent pulse store unavailable ({reason}); running in-memory only"
            ),
            Degradation::StoreReadOnly { reason } => write!(
                f,
                "persistent pulse store is read-only ({reason}); fresh pulses will not persist"
            ),
        }
    }
}
