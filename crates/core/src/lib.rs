//! # paqoc-core
//!
//! PAQOC itself: the grouped-circuit DAG with criticality analysis
//! ([`GroupedCircuit`]), the canonical-keyed [`PulseTable`], the
//! criticality-aware customized-gates generator implementing the paper's
//! Algorithm 1 ([`generate_customized_gates`]), and the end-to-end
//! [`compile`] pipeline (lower → SABRE map → mine APA basis → merge →
//! pulses) with the paper's `M ∈ {0, tuned, inf}` presets.
//!
//! The pulse table is fingerprint-keyed ([`composite_key`]), panic-
//! isolated (a crashing [`paqoc_device::PulseSource`] degrades instead
//! of aborting — [`Degradation::SourcePanic`]), and optionally backed by
//! the crash-safe persistent store in `paqoc-store` (set
//! `PipelineOptions::pulse_db` or the `PAQOC_PULSE_DB` environment
//! variable).
//!
//! ## Example
//!
//! ```
//! use paqoc_circuit::Circuit;
//! use paqoc_core::{compile, PipelineOptions};
//! use paqoc_device::{AnalyticModel, Device};
//!
//! let mut qaoa = Circuit::new(3);
//! qaoa.cp(0, 1, 0.7).cp(1, 2, 0.7).rx(0, 0.4).rx(1, 0.4).rx(2, 0.4);
//! let device = Device::grid5x5();
//! let mut source = AnalyticModel::new();
//! let result = compile(&qaoa, &device, &mut source, &PipelineOptions::m0());
//! assert!(result.latency_dt > 0);
//! assert!(result.esp > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod error;
mod generator;
mod group;
mod pipeline;
mod table;

pub use error::{CompileError, Degradation};
pub use generator::{
    generate_customized_gates, try_generate_customized_gates,
    try_generate_customized_gates_batched, BatchContext, GenerationLimits, GenerationOutcome,
    GeneratorReport, PaqocOptions,
};
pub use group::{Group, GroupKind, GroupedCircuit};
pub use pipeline::{
    compile, partition_is_acyclic, try_compile, try_compile_batch, CompilationResult,
    PipelineOptions,
};
pub use table::{composite_key, group_key, CompileStats, KeyPrefix, PulseTable};
