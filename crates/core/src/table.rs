//! The pulse lookup table (paper Section V-B).
//!
//! Stores previously generated control pulses keyed by the *canonical*
//! form of the gate group, so a customized gate that recurs — on the
//! same qubits or permuted onto different ones — is generated exactly
//! once. Misses are delegated to the [`PulseSource`] with warm starting
//! enabled once the table has seen similar work.

use paqoc_circuit::{combined_unitary, Circuit, Instruction};
use paqoc_device::{Device, PulseEstimate, PulseGenError, PulseSource};
use paqoc_math::{phase_aligned_distance, Matrix};
use paqoc_mining::{canonical_code, CircuitGraph};
use std::collections::{BTreeSet, HashMap};

/// Compile-cost accounting across a whole compilation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompileStats {
    /// Pulses actually generated (table misses).
    pub pulses_generated: usize,
    /// Table hits (free reuses).
    pub cache_hits: usize,
    /// Total synthetic compile cost of the misses.
    pub cost_units: f64,
    /// Failed generation attempts that were retried.
    pub retries: usize,
}

impl CompileStats {
    /// Accumulates another stats record.
    pub fn absorb(&mut self, other: CompileStats) {
        self.pulses_generated += other.pulses_generated;
        self.cache_hits += other.cache_hits;
        self.cost_units += other.cost_units;
        self.retries += other.retries;
    }
}

/// The canonical-keyed pulse table.
#[derive(Debug, Default)]
pub struct PulseTable {
    entries: HashMap<String, PulseEstimate>,
    /// Target unitaries of stored pulses (≤3-qubit groups), for
    /// similarity-based warm starting of new generations.
    unitaries: Vec<Matrix>,
    stats: CompileStats,
}

/// Canonical key of a gate group: the mining canonical code of the
/// group's instructions viewed as a standalone circuit, which identifies
/// structurally identical groups under qubit permutation.
pub fn group_key(group: &[Instruction]) -> String {
    let max_q = group
        .iter()
        .flat_map(|i| i.qubits().iter().copied())
        .max()
        .unwrap_or(0);
    let mut c = Circuit::new(max_q + 1);
    for inst in group {
        c.push(inst.clone());
    }
    let graph = CircuitGraph::from_circuit(&c);
    let nodes: Vec<usize> = (0..graph.len()).collect();
    canonical_code(&graph, &nodes)
}

/// Number of distinct qubits a group touches (its telemetry key).
fn group_arity(group: &[Instruction]) -> usize {
    group
        .iter()
        .flat_map(|i| i.qubits().iter().copied())
        .collect::<BTreeSet<_>>()
        .len()
}

impl PulseTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PulseTable::default()
    }

    /// Looks up or generates the pulse for a group.
    ///
    /// Infallible wrapper around [`PulseTable::try_pulse_for`] (single
    /// attempt): on generation failure it reports a zero-fidelity
    /// estimate at the source's typical latency so the failure stays
    /// visible, but — unlike the historical behaviour — the sentinel is
    /// **never cached**, so a later retry can still succeed.
    pub fn pulse_for(
        &mut self,
        group: &[Instruction],
        device: &Device,
        source: &mut dyn PulseSource,
        target_fidelity: f64,
    ) -> PulseEstimate {
        match self.try_pulse_for(group, device, source, target_fidelity, 0) {
            Ok(estimate) => estimate,
            Err(_) => {
                let latency_ns = source.typical_latency_ns(group_arity(group), device);
                PulseEstimate {
                    latency_ns,
                    latency_dt: device.spec().ns_to_dt(latency_ns),
                    fidelity: 0.0,
                    cost_units: 0.0,
                }
            }
        }
    }

    /// Looks up or generates the pulse for a group, retrying failures.
    ///
    /// On a hit the stored estimate is returned at zero marginal cost;
    /// on a miss the most similar stored pulse (by unitary distance)
    /// warm-starts the generation, so near-duplicates — the common case
    /// after customized-gate merging — converge almost for free, exactly
    /// the paper's pulse-database behaviour (Section V-B).
    ///
    /// A failed generation is retried up to `max_retries` times (each
    /// retry re-invokes the source, which re-rolls its own randomness
    /// and escalation); only *successful* estimates enter the table, so
    /// the historical `fidelity: 0.0` convergence-failure sentinel can
    /// never be cached and replayed as a hit.
    pub fn try_pulse_for(
        &mut self,
        group: &[Instruction],
        device: &Device,
        source: &mut dyn PulseSource,
        target_fidelity: f64,
        max_retries: usize,
    ) -> Result<PulseEstimate, PulseGenError> {
        let key = group_key(group);
        if let Some(&hit) = self.entries.get(&key) {
            self.stats.cache_hits += 1;
            if paqoc_telemetry::enabled() {
                paqoc_telemetry::counter(&format!("table.cache_hit.q{}", group_arity(group)), 1);
                paqoc_telemetry::event!(
                    "table.lookup",
                    hit = true,
                    arity = group_arity(group) as u64,
                    gates = group.len() as u64,
                    latency_ns = hit.latency_ns,
                );
            }
            return Ok(hit);
        }
        if paqoc_telemetry::enabled() {
            paqoc_telemetry::counter(&format!("table.cache_miss.q{}", group_arity(group)), 1);
        }
        // Similarity search over stored unitaries of the same dimension.
        let qubits: Vec<usize> = group
            .iter()
            .flat_map(|i| i.qubits().iter().copied())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let warm = if qubits.len() <= 3 {
            let target = combined_unitary(group, &qubits);
            let best = self
                .unitaries
                .iter()
                .filter(|u| u.rows() == target.rows())
                .map(|u| phase_aligned_distance(u, &target))
                .min_by(f64::total_cmp);
            self.unitaries.push(target);
            best
        } else {
            None
        };
        let mut last_err = None;
        for attempt in 0..=max_retries {
            if attempt > 0 {
                self.stats.retries += 1;
                paqoc_telemetry::counter("grape.retries", 1);
            }
            match source.try_generate(group, device, target_fidelity, warm) {
                Ok(estimate) => {
                    self.stats.pulses_generated += 1;
                    self.stats.cost_units += estimate.cost_units;
                    // Miss provenance: what the generation cost, and how
                    // close the warm-start seed was (Obs. 2 reuse).
                    paqoc_telemetry::event!(
                        "table.lookup",
                        hit = false,
                        arity = group_arity(group) as u64,
                        gates = group.len() as u64,
                        latency_ns = estimate.latency_ns,
                        cost_units = estimate.cost_units,
                        attempts = (attempt + 1) as u64,
                        warm_distance = warm.unwrap_or(-1.0),
                    );
                    self.entries.insert(key, estimate);
                    return Ok(estimate);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(PulseGenError::Convergence {
            achieved: 0.0,
            target: target_fidelity,
        }))
    }

    /// Number of distinct pulses stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no pulses are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The accumulated cost accounting.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_circuit::GateKind;
    use paqoc_device::AnalyticModel;

    fn inst(gate: GateKind, qubits: &[usize]) -> Instruction {
        Instruction::new(gate, qubits.to_vec(), vec![])
    }

    #[test]
    fn group_key_is_permutation_invariant() {
        // CX(0,1)+RZ(1) vs CX(5,3)+RZ(3): same canonical structure.
        let a = [
            inst(GateKind::Cx, &[0, 1]),
            Instruction::new(GateKind::Rz, vec![1], vec![0.7.into()]),
        ];
        let b = [
            inst(GateKind::Cx, &[5, 3]),
            Instruction::new(GateKind::Rz, vec![3], vec![0.7.into()]),
        ];
        assert_eq!(group_key(&a), group_key(&b));
    }

    #[test]
    fn group_key_distinguishes_roles() {
        let on_target = [
            inst(GateKind::Cx, &[0, 1]),
            Instruction::new(GateKind::Rz, vec![1], vec![0.7.into()]),
        ];
        let on_control = [
            inst(GateKind::Cx, &[0, 1]),
            Instruction::new(GateKind::Rz, vec![0], vec![0.7.into()]),
        ];
        assert_ne!(group_key(&on_target), group_key(&on_control));
    }

    #[test]
    fn second_lookup_is_a_cache_hit() {
        let dev = Device::grid5x5();
        let mut table = PulseTable::new();
        let mut model = AnalyticModel::new();
        let g = [inst(GateKind::Cx, &[0, 1])];
        let first = table.pulse_for(&g, &dev, &mut model, 0.999);
        let second = table.pulse_for(&g, &dev, &mut model, 0.999);
        assert_eq!(first, second);
        let stats = table.stats();
        assert_eq!(stats.pulses_generated, 1);
        assert_eq!(stats.cache_hits, 1);
        assert!(stats.cost_units > 0.0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn permuted_group_reuses_the_pulse() {
        let dev = Device::grid5x5();
        let mut table = PulseTable::new();
        let mut model = AnalyticModel::new();
        table.pulse_for(&[inst(GateKind::Cx, &[0, 1])], &dev, &mut model, 0.999);
        table.pulse_for(&[inst(GateKind::Cx, &[5, 6])], &dev, &mut model, 0.999);
        assert_eq!(table.stats().pulses_generated, 1);
        assert_eq!(table.stats().cache_hits, 1);
    }

    #[test]
    fn stats_absorb_adds_fields() {
        let mut a = CompileStats {
            pulses_generated: 1,
            cache_hits: 2,
            cost_units: 3.0,
            retries: 1,
        };
        a.absorb(CompileStats {
            pulses_generated: 4,
            cache_hits: 5,
            cost_units: 6.0,
            retries: 2,
        });
        assert_eq!(a.pulses_generated, 5);
        assert_eq!(a.cache_hits, 7);
        assert!((a.cost_units - 9.0).abs() < 1e-12);
        assert_eq!(a.retries, 3);
    }
}
