//! The pulse lookup table (paper Section V-B).
//!
//! Stores previously generated control pulses keyed by the *canonical*
//! form of the gate group, so a customized gate that recurs — on the
//! same qubits or permuted onto different ones — is generated exactly
//! once. Misses are delegated to the [`PulseSource`] with warm starting
//! enabled once the table has seen similar work.
//!
//! Two robustness layers sit around the source:
//!
//! * **Persistence** — an optional [`PulseStore`] behind the in-memory
//!   map (read-through on miss, write-behind on success) makes pulse
//!   reuse survive process restarts: a warm process performs zero
//!   generations for groups any earlier run already solved.
//! * **Panic isolation** — every source invocation runs under a
//!   `catch_unwind` supervisor. A panicking optimization surfaces as
//!   the typed [`PulseGenError::SourcePanic`] instead of killing the
//!   batch; the panic aborts the retry ladder immediately (a
//!   deterministic crash must not fire once per retry) and the
//!   offending key is *quarantined*: anything later generated for it is
//!   returned but never cached, in memory or on disk, so a poisoned
//!   entry cannot outlive the incident.
//!
//! Every cache key — in-memory and persistent alike — is prefixed with
//! the device fingerprint ([`Device::fingerprint`]), so two devices
//! sharing a process (or a reloaded database) can never cross-contaminate
//! each other's pulses.

use paqoc_circuit::{combined_unitary, Circuit, Instruction};
use paqoc_device::{Device, PulseEstimate, PulseGenError, PulseSource};
use paqoc_exec::{BatchReport, JobStatus, Provenance, PulseJob, SharedPulseTable};
use paqoc_math::{phase_aligned_distance, Matrix};
use paqoc_mining::{canonical_code, CircuitGraph};
use paqoc_store::PulseStore;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Compile-cost accounting across a whole compilation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompileStats {
    /// Pulses actually generated (table misses).
    pub pulses_generated: usize,
    /// Table hits (free reuses). Includes [`CompileStats::store_hits`].
    pub cache_hits: usize,
    /// The subset of hits served from the persistent pulse store rather
    /// than this process's own earlier work.
    pub store_hits: usize,
    /// Total synthetic compile cost of the misses.
    pub cost_units: f64,
    /// Failed generation attempts that were retried.
    pub retries: usize,
    /// Source panics caught by the supervisor (keys quarantined).
    pub source_panics: usize,
}

impl CompileStats {
    /// Accumulates another stats record.
    pub fn absorb(&mut self, other: CompileStats) {
        self.pulses_generated += other.pulses_generated;
        self.cache_hits += other.cache_hits;
        self.store_hits += other.store_hits;
        self.cost_units += other.cost_units;
        self.retries += other.retries;
        self.source_panics += other.source_panics;
    }
}

/// The canonical-keyed pulse table.
#[derive(Debug, Default)]
pub struct PulseTable {
    entries: HashMap<String, PulseEstimate>,
    /// Target unitaries of stored pulses (≤3-qubit groups), for
    /// similarity-based warm starting of new generations.
    unitaries: Vec<Matrix>,
    stats: CompileStats,
    /// Optional persistent layer (read-through / write-behind).
    store: Option<PulseStore>,
    /// Optional cross-compile shared layer (the executor's sharded
    /// cache). Consulted after a local miss, published to after a
    /// successful generation; in batch mode it also owns the store
    /// handle, since the append-only store is not multi-handle safe.
    shared: Option<Arc<SharedPulseTable>>,
    /// Composite keys whose generation has panicked: excluded from all
    /// caching and from further source invocations.
    quarantined: HashSet<String>,
    /// Cached `"<fingerprint>/"` prefix of the last device seen, so
    /// hot-path key builds don't re-format the fingerprint each time.
    prefix: Option<KeyPrefix>,
    /// Keys whose first sequential lookup must count nothing: a batch
    /// prefetch already accounted the generation/hit in
    /// [`PulseTable::absorb_batch`], and the sequential path would
    /// otherwise add a spurious cache hit — breaking stats parity
    /// between `threads=1` and `threads=N`.
    fresh: HashSet<String>,
}

/// Precomputed `"<fingerprint-hex>/"` composite-key prefix for one
/// device — the fix for the historical hot-path behaviour of
/// re-formatting the fingerprint on every [`composite_key`] call.
#[derive(Clone, Debug)]
pub struct KeyPrefix {
    fingerprint: u64,
    prefix: String,
}

impl KeyPrefix {
    /// Builds the prefix for `device`.
    pub fn new(device: &Device) -> Self {
        let fingerprint = device.fingerprint();
        KeyPrefix {
            fingerprint,
            prefix: format!("{fingerprint:016x}/"),
        }
    }

    /// The fingerprint this prefix was built from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The full composite key for `group` on this prefix's device.
    pub fn key(&self, group: &[Instruction]) -> String {
        let code = group_key(group);
        let mut key = String::with_capacity(self.prefix.len() + code.len());
        key.push_str(&self.prefix);
        key.push_str(&code);
        key
    }
}

/// Canonical key of a gate group: the mining canonical code of the
/// group's instructions viewed as a standalone circuit, which identifies
/// structurally identical groups under qubit permutation.
pub fn group_key(group: &[Instruction]) -> String {
    let max_q = group
        .iter()
        .flat_map(|i| i.qubits().iter().copied())
        .max()
        .unwrap_or(0);
    let mut c = Circuit::new(max_q + 1);
    for inst in group {
        c.push(inst.clone());
    }
    let graph = CircuitGraph::from_circuit(&c);
    let nodes: Vec<usize> = (0..graph.len()).collect();
    canonical_code(&graph, &nodes)
}

/// The full cache key: the device fingerprint prefixed onto the
/// canonical group code. Both the in-memory table and the persistent
/// store key by this, so pulses tuned for one device configuration can
/// never be served to another.
pub fn composite_key(device: &Device, group: &[Instruction]) -> String {
    KeyPrefix::new(device).key(group)
}

/// Best-effort string form of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Number of distinct qubits a group touches (its telemetry key).
fn group_arity(group: &[Instruction]) -> usize {
    group
        .iter()
        .flat_map(|i| i.qubits().iter().copied())
        .collect::<BTreeSet<_>>()
        .len()
}

impl PulseTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        PulseTable::default()
    }

    /// Looks up or generates the pulse for a group.
    ///
    /// Infallible wrapper around [`PulseTable::try_pulse_for`] (single
    /// attempt): on generation failure it reports a zero-fidelity
    /// estimate at the source's typical latency so the failure stays
    /// visible, but — unlike the historical behaviour — the sentinel is
    /// **never cached**, so a later retry can still succeed.
    pub fn pulse_for(
        &mut self,
        group: &[Instruction],
        device: &Device,
        source: &mut dyn PulseSource,
        target_fidelity: f64,
    ) -> PulseEstimate {
        match self.try_pulse_for(group, device, source, target_fidelity, 0) {
            Ok(estimate) => estimate,
            Err(_) => {
                let latency_ns = source.typical_latency_ns(group_arity(group), device);
                PulseEstimate {
                    latency_ns,
                    latency_dt: device.spec().ns_to_dt(latency_ns),
                    fidelity: 0.0,
                    cost_units: 0.0,
                }
            }
        }
    }

    /// Looks up or generates the pulse for a group, retrying failures.
    ///
    /// On a hit the stored estimate is returned at zero marginal cost;
    /// on a miss the most similar stored pulse (by unitary distance)
    /// warm-starts the generation, so near-duplicates — the common case
    /// after customized-gate merging — converge almost for free, exactly
    /// the paper's pulse-database behaviour (Section V-B).
    ///
    /// A failed generation is retried up to `max_retries` times (each
    /// retry re-invokes the source, which re-rolls its own randomness
    /// and escalation); only *successful* estimates enter the table, so
    /// the historical `fidelity: 0.0` convergence-failure sentinel can
    /// never be cached and replayed as a hit.
    pub fn try_pulse_for(
        &mut self,
        group: &[Instruction],
        device: &Device,
        source: &mut dyn PulseSource,
        target_fidelity: f64,
        max_retries: usize,
    ) -> Result<PulseEstimate, PulseGenError> {
        let key = self.key_for(device, group);
        if let Some(&hit) = self.entries.get(&key) {
            if self.fresh.remove(&key) {
                // First sequential touch of a batch-prefetched pulse:
                // absorb_batch already accounted it, count nothing.
                return Ok(hit);
            }
            self.stats.cache_hits += 1;
            if paqoc_telemetry::enabled() {
                paqoc_telemetry::counter(&format!("table.cache_hit.q{}", group_arity(group)), 1);
                paqoc_telemetry::event!(
                    "table.lookup",
                    hit = true,
                    arity = group_arity(group) as u64,
                    gates = group.len() as u64,
                    latency_ns = hit.latency_ns,
                );
            }
            return Ok(hit);
        }
        // Shared layer: a concurrent compile (or an earlier batch over
        // the same executor table) may already hold this pulse.
        if let Some(shared) = &self.shared {
            if let Some(hit) = shared.get(&key) {
                self.stats.cache_hits += 1;
                self.entries.insert(key, hit);
                if paqoc_telemetry::enabled() {
                    paqoc_telemetry::counter("table.shared_hit", 1);
                    paqoc_telemetry::event!(
                        "table.lookup",
                        hit = true,
                        shared = true,
                        arity = group_arity(group) as u64,
                        gates = group.len() as u64,
                        latency_ns = hit.latency_ns,
                    );
                }
                return Ok(hit);
            }
        }
        // Read-through: a miss in this process may be a hit in the
        // persistent store from an earlier run. `hit` (not `get`) bumps
        // the record's LFU metadata so eviction keeps reused keys.
        if let Some(store) = &mut self.store {
            if let Some(hit) = store.hit(&key) {
                self.stats.cache_hits += 1;
                self.stats.store_hits += 1;
                self.entries.insert(key, hit);
                if paqoc_telemetry::enabled() {
                    paqoc_telemetry::counter("table.store_hit", 1);
                    paqoc_telemetry::event!(
                        "table.lookup",
                        hit = true,
                        persistent = true,
                        arity = group_arity(group) as u64,
                        gates = group.len() as u64,
                        latency_ns = hit.latency_ns,
                    );
                }
                return Ok(hit);
            }
        }
        if paqoc_telemetry::enabled() {
            paqoc_telemetry::counter(&format!("table.cache_miss.q{}", group_arity(group)), 1);
        }
        // Similarity search over stored unitaries of the same dimension.
        let qubits: Vec<usize> = group
            .iter()
            .flat_map(|i| i.qubits().iter().copied())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let warm = if qubits.len() <= 3 {
            let target = combined_unitary(group, &qubits);
            let best = self
                .unitaries
                .iter()
                .filter(|u| u.rows() == target.rows())
                .map(|u| phase_aligned_distance(u, &target))
                .min_by(f64::total_cmp);
            self.unitaries.push(target);
            best
        } else {
            None
        };
        let source_name = source.name();
        let mut last_err = None;
        for attempt in 0..=max_retries {
            if attempt > 0 {
                self.stats.retries += 1;
                paqoc_telemetry::counter("grape.retries", 1);
            }
            // The supervisor: a panicking optimization must degrade,
            // not abort the batch. `AssertUnwindSafe` is sound here
            // because on unwind we never touch the source again — the
            // key is quarantined and the error propagates up the
            // degradation ladder instead.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                source.try_generate(group, device, target_fidelity, warm)
            }));
            match outcome {
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    self.quarantined.insert(key.clone());
                    if let Some(shared) = &self.shared {
                        // Propagate the quarantine so no concurrent
                        // compile re-runs the deterministic crash.
                        shared.quarantine(&key);
                    }
                    self.stats.source_panics += 1;
                    paqoc_telemetry::counter("table.source_panics", 1);
                    paqoc_telemetry::event!(
                        "table.source_panic",
                        source = source_name,
                        gates = group.len() as u64,
                        arity = group_arity(group) as u64,
                        message = message.clone(),
                    );
                    return Err(PulseGenError::SourcePanic {
                        source: source_name.to_string(),
                        message,
                    });
                }
                Ok(Ok(estimate)) => {
                    self.stats.pulses_generated += 1;
                    self.stats.cost_units += estimate.cost_units;
                    // Miss provenance: what the generation cost, and how
                    // close the warm-start seed was (Obs. 2 reuse).
                    paqoc_telemetry::event!(
                        "table.lookup",
                        hit = false,
                        arity = group_arity(group) as u64,
                        gates = group.len() as u64,
                        latency_ns = estimate.latency_ns,
                        cost_units = estimate.cost_units,
                        attempts = (attempt + 1) as u64,
                        warm_distance = warm.unwrap_or(-1.0),
                    );
                    // A key that has ever panicked is poisoned: serve
                    // the estimate but never cache it.
                    if !self.quarantined.contains(&key) {
                        if let Some(shared) = &self.shared {
                            // Write-behind persistence runs through the
                            // shared table in batch mode (it owns the
                            // single store handle).
                            shared.publish(&key, estimate);
                        }
                        if let Some(store) = &mut self.store {
                            if let Err(e) = store.put(&key, estimate) {
                                // Persistence is best-effort at this
                                // layer: losing the write-behind must
                                // not fail the compilation.
                                paqoc_telemetry::counter("store.append_failures", 1);
                                paqoc_telemetry::event!(
                                    "store.append_failed",
                                    error = e.to_string(),
                                );
                            }
                        }
                        self.entries.insert(key, estimate);
                    }
                    return Ok(estimate);
                }
                Ok(Err(e)) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(PulseGenError::Convergence {
            achieved: 0.0,
            target: target_fidelity,
        }))
    }

    /// Number of distinct pulses stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no pulses are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The accumulated cost accounting.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// Attaches a persistent store as the read-through/write-behind
    /// layer. The store's fingerprint binding happened at
    /// [`PulseStore::open`]; keys here additionally carry the
    /// fingerprint prefix, so even a mis-opened store cannot serve
    /// foreign pulses.
    pub fn attach_store(&mut self, store: PulseStore) {
        self.store = Some(store);
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&PulseStore> {
        self.store.as_ref()
    }

    /// Durably syncs the attached store (no-op without one).
    ///
    /// # Errors
    ///
    /// Propagates the store's fsync failure.
    pub fn sync_store(&mut self) -> Result<(), paqoc_store::StoreError> {
        match &mut self.store {
            Some(store) => {
                store.sync()?;
                // Post-sync maintenance: byte-budget eviction and
                // dead-byte compaction for a writer, refresh for a
                // reader.
                store.maintain()?;
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Keys currently quarantined after a source panic.
    pub fn quarantined(&self) -> usize {
        self.quarantined.len()
    }

    /// The composite key for `group` on `device`, served from the
    /// cached per-table [`KeyPrefix`] so the fingerprint prefix is
    /// formatted once per device, not once per lookup.
    pub fn key_for(&mut self, device: &Device, group: &[Instruction]) -> String {
        let fingerprint = device.fingerprint();
        if !matches!(&self.prefix, Some(p) if p.fingerprint() == fingerprint) {
            self.prefix = Some(KeyPrefix::new(device));
        }
        match &self.prefix {
            Some(p) => p.key(group),
            None => composite_key(device, group),
        }
    }

    /// Attaches the executor's shared pulse table as a cross-compile
    /// layer: consulted after a local miss, published to on success,
    /// quarantine-propagated on panic. In batch mode the shared table
    /// also owns the persistent store handle (see
    /// [`SharedPulseTable::sync`]), so don't *also* attach a local
    /// store for the same file.
    pub fn attach_shared(&mut self, shared: Arc<SharedPulseTable>) {
        self.shared = Some(shared);
    }

    /// The attached shared layer, if any.
    pub fn shared(&self) -> Option<&Arc<SharedPulseTable>> {
        self.shared.as_ref()
    }

    /// `true` when the local (in-process) layer holds `key`.
    pub fn has_entry(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Folds a batch-prefetch report into this table, preserving exact
    /// stats parity with the sequential path: each outcome is counted
    /// once, exactly as the sequential first touch of that key would
    /// have counted it, and the key is marked *fresh* so the following
    /// sequential lookup counts nothing.
    pub fn absorb_batch(&mut self, jobs: &[PulseJob], report: &BatchReport) {
        for (job, status) in jobs.iter().zip(&report.statuses) {
            match status {
                JobStatus::Generated(est) => {
                    self.stats.pulses_generated += 1;
                    self.stats.cost_units += est.cost_units;
                    self.entries.insert(job.key.clone(), *est);
                    self.fresh.insert(job.key.clone());
                }
                JobStatus::Hit(est, Provenance::Store) => {
                    self.stats.cache_hits += 1;
                    self.stats.store_hits += 1;
                    self.entries.insert(job.key.clone(), *est);
                    self.fresh.insert(job.key.clone());
                }
                JobStatus::Hit(est, _) | JobStatus::Deduped(est) => {
                    self.stats.cache_hits += 1;
                    self.entries.insert(job.key.clone(), *est);
                    self.fresh.insert(job.key.clone());
                }
                JobStatus::Panicked(_) => {
                    self.stats.source_panics += 1;
                    self.quarantined.insert(job.key.clone());
                }
                JobStatus::Failed(_) | JobStatus::Skipped(_) => {
                    // Falls through to the sequential ladder, which
                    // does its own accounting (retries, degradations).
                }
            }
        }
    }

    /// Deterministic dump of every cached pulse, sorted by composite
    /// key — the byte-comparable artifact the determinism tests diff
    /// across thread counts.
    pub fn dump_entries(&self) -> Vec<(String, PulseEstimate)> {
        let mut all: Vec<(String, PulseEstimate)> =
            self.entries.iter().map(|(k, v)| (k.clone(), *v)).collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_circuit::GateKind;
    use paqoc_device::AnalyticModel;

    fn inst(gate: GateKind, qubits: &[usize]) -> Instruction {
        Instruction::new(gate, qubits.to_vec(), vec![])
    }

    #[test]
    fn group_key_is_permutation_invariant() {
        // CX(0,1)+RZ(1) vs CX(5,3)+RZ(3): same canonical structure.
        let a = [
            inst(GateKind::Cx, &[0, 1]),
            Instruction::new(GateKind::Rz, vec![1], vec![0.7.into()]),
        ];
        let b = [
            inst(GateKind::Cx, &[5, 3]),
            Instruction::new(GateKind::Rz, vec![3], vec![0.7.into()]),
        ];
        assert_eq!(group_key(&a), group_key(&b));
    }

    #[test]
    fn group_key_distinguishes_roles() {
        let on_target = [
            inst(GateKind::Cx, &[0, 1]),
            Instruction::new(GateKind::Rz, vec![1], vec![0.7.into()]),
        ];
        let on_control = [
            inst(GateKind::Cx, &[0, 1]),
            Instruction::new(GateKind::Rz, vec![0], vec![0.7.into()]),
        ];
        assert_ne!(group_key(&on_target), group_key(&on_control));
    }

    #[test]
    fn second_lookup_is_a_cache_hit() {
        let dev = Device::grid5x5();
        let mut table = PulseTable::new();
        let mut model = AnalyticModel::new();
        let g = [inst(GateKind::Cx, &[0, 1])];
        let first = table.pulse_for(&g, &dev, &mut model, 0.999);
        let second = table.pulse_for(&g, &dev, &mut model, 0.999);
        assert_eq!(first, second);
        let stats = table.stats();
        assert_eq!(stats.pulses_generated, 1);
        assert_eq!(stats.cache_hits, 1);
        assert!(stats.cost_units > 0.0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn permuted_group_reuses_the_pulse() {
        let dev = Device::grid5x5();
        let mut table = PulseTable::new();
        let mut model = AnalyticModel::new();
        table.pulse_for(&[inst(GateKind::Cx, &[0, 1])], &dev, &mut model, 0.999);
        table.pulse_for(&[inst(GateKind::Cx, &[5, 6])], &dev, &mut model, 0.999);
        assert_eq!(table.stats().pulses_generated, 1);
        assert_eq!(table.stats().cache_hits, 1);
    }

    #[test]
    fn stats_absorb_adds_fields() {
        let mut a = CompileStats {
            pulses_generated: 1,
            cache_hits: 2,
            store_hits: 1,
            cost_units: 3.0,
            retries: 1,
            source_panics: 1,
        };
        a.absorb(CompileStats {
            pulses_generated: 4,
            cache_hits: 5,
            store_hits: 2,
            cost_units: 6.0,
            retries: 2,
            source_panics: 3,
        });
        assert_eq!(a.pulses_generated, 5);
        assert_eq!(a.cache_hits, 7);
        assert_eq!(a.store_hits, 3);
        assert!((a.cost_units - 9.0).abs() < 1e-12);
        assert_eq!(a.retries, 3);
        assert_eq!(a.source_panics, 4);
    }

    #[test]
    fn cache_keys_separate_devices() {
        // The same canonical group on two different devices must be two
        // different cache entries: pulses depend on the control limits.
        let mut spec = *Device::grid5x5().spec();
        spec.mu_max *= 2.0;
        let fast = Device::new(Device::grid5x5().topology().clone(), spec);
        let slow = Device::grid5x5();
        let mut table = PulseTable::new();
        let mut model = AnalyticModel::new();
        let g = [inst(GateKind::Cx, &[0, 1])];
        let on_slow = table.pulse_for(&g, &slow, &mut model, 0.999);
        let on_fast = table.pulse_for(&g, &fast, &mut model, 0.999);
        assert_eq!(table.stats().pulses_generated, 2, "no cross-device hit");
        assert_eq!(table.stats().cache_hits, 0);
        assert!(
            on_fast.latency_ns < on_slow.latency_ns,
            "doubled coupler limit must shorten the pulse"
        );
        // And each device still hits its own entry.
        table.pulse_for(&g, &slow, &mut model, 0.999);
        table.pulse_for(&g, &fast, &mut model, 0.999);
        assert_eq!(table.stats().cache_hits, 2);
    }

    /// A source that panics on its first `n` calls, then recovers.
    struct PanicsFirst {
        remaining: usize,
        inner: AnalyticModel,
    }

    impl PulseSource for PanicsFirst {
        fn generate(
            &mut self,
            group: &[Instruction],
            device: &Device,
            target_fidelity: f64,
            warm_start: Option<f64>,
        ) -> PulseEstimate {
            if self.remaining > 0 {
                self.remaining -= 1;
                panic!("synthetic optimizer crash");
            }
            self.inner
                .generate(group, device, target_fidelity, warm_start)
        }

        fn typical_latency_ns(&self, num_qubits: usize, device: &Device) -> f64 {
            self.inner.typical_latency_ns(num_qubits, device)
        }

        fn name(&self) -> &'static str {
            "panics-first"
        }
    }

    #[test]
    fn panic_is_caught_typed_and_aborts_the_retry_ladder() {
        let dev = Device::grid5x5();
        let mut table = PulseTable::new();
        let mut source = PanicsFirst {
            remaining: 1,
            inner: AnalyticModel::new(),
        };
        let g = [inst(GateKind::Cx, &[0, 1])];
        // Plenty of retries available — the panic must consume none.
        let err = table
            .try_pulse_for(&g, &dev, &mut source, 0.999, 5)
            .expect_err("first call panics");
        match err {
            PulseGenError::SourcePanic { source, message } => {
                assert_eq!(source, "panics-first");
                assert_eq!(message, "synthetic optimizer crash");
            }
            other => panic!("expected SourcePanic, got {other:?}"),
        }
        assert_eq!(table.stats().retries, 0, "no retry after a panic");
        assert_eq!(table.stats().source_panics, 1);
        assert_eq!(table.quarantined(), 1);
    }

    #[test]
    fn quarantined_key_is_served_but_never_cached() {
        let dev = Device::grid5x5();
        let mut table = PulseTable::new();
        let mut source = PanicsFirst {
            remaining: 1,
            inner: AnalyticModel::new(),
        };
        let g = [inst(GateKind::Cx, &[0, 1])];
        assert!(table
            .try_pulse_for(&g, &dev, &mut source, 0.999, 0)
            .is_err());
        // The source has recovered; the estimate is served…
        let est = table
            .try_pulse_for(&g, &dev, &mut source, 0.999, 0)
            .expect("source recovered");
        assert!(est.fidelity > 0.0);
        // …but the poisoned key never enters the cache.
        assert_eq!(table.len(), 0);
        let again = table
            .try_pulse_for(&g, &dev, &mut source, 0.999, 0)
            .expect("regenerates");
        assert_eq!(est, again);
        assert_eq!(table.stats().cache_hits, 0);
        assert_eq!(table.stats().pulses_generated, 2);
    }

    #[test]
    fn store_round_trip_warm_starts_a_fresh_table() {
        let dir = std::env::temp_dir().join(format!("paqoc-table-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("table_roundtrip.pqps");
        let _ = std::fs::remove_file(&path);
        let dev = Device::grid5x5();
        let g = [inst(GateKind::Cx, &[0, 1])];
        let cold = {
            let mut table = PulseTable::new();
            table.attach_store(
                paqoc_store::PulseStore::open(&path, dev.fingerprint()).expect("open"),
            );
            let mut model = AnalyticModel::new();
            let est = table.pulse_for(&g, &dev, &mut model, 0.999);
            assert_eq!(table.stats().pulses_generated, 1);
            table.sync_store().expect("sync");
            est
        };
        // A brand-new table (new process, conceptually) backed by the
        // same file serves the pulse without generating.
        let mut table = PulseTable::new();
        table.attach_store(paqoc_store::PulseStore::open(&path, dev.fingerprint()).expect("open"));
        let mut model = AnalyticModel::new();
        let warm = table.pulse_for(&g, &dev, &mut model, 0.999);
        assert_eq!(cold, warm);
        assert_eq!(table.stats().pulses_generated, 0);
        assert_eq!(table.stats().cache_hits, 1);
        assert_eq!(table.stats().store_hits, 1);
    }
}
