//! The end-to-end PAQOC compilation pipeline (paper Fig. 7).
//!
//! logical circuit → universal-basis lowering → SABRE mapping onto the
//! device → frequent-subcircuit mining → APA-basis substitution →
//! criticality-aware customized-gate generation → pulses.

use crate::error::{CompileError, Degradation};
use crate::generator::{
    try_generate_customized_gates_batched, BatchContext, GenerationLimits, GeneratorReport,
    PaqocOptions,
};
use crate::group::{GroupKind, GroupedCircuit};
use crate::table::{CompileStats, PulseTable};
use paqoc_circuit::{decompose, Basis, Circuit, Instruction};
use paqoc_device::{Device, PulseEstimate, PulseSource};
use paqoc_exec::{effective_threads, PulseSourceFactory, SharedPulseTable};
use paqoc_mapping::{try_sabre_map, SabreOptions};
use paqoc_mining::{
    mine_frequent_subcircuits, select_apa_basis, ApaBudget, ApaCover, MinerOptions,
};
use paqoc_telemetry::{counter, span};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// APA-basis budget (the paper's `M`).
    pub apa_budget: ApaBudget,
    /// Frequent-subcircuit miner knobs.
    pub miner: MinerOptions,
    /// Customized-gates generator knobs.
    pub generator: PaqocOptions,
    /// SABRE knobs.
    pub sabre: SabreOptions,
    /// Skip mapping when the input is already a physical circuit.
    pub skip_mapping: bool,
    /// Disable the customized-gates generator entirely (the paper's
    /// APA-only mode of Section V-C).
    pub enable_generator: bool,
    /// Force telemetry collection on for this compilation. When false,
    /// collection still turns on if the `PAQOC_TRACE` environment
    /// variable is set (see [`paqoc_telemetry`]).
    pub trace: bool,
    /// Wall-clock budget for the whole compilation, measured from entry.
    /// When it expires mid-run the pipeline finishes with the current
    /// valid grouping marked [`CompilationResult::partial`]; a zero
    /// deadline fails fast with [`CompileError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Pulse-generation cost budget in synthetic `cost_units`;
    /// exhaustion behaves like a deadline hit (partial result, never an
    /// error).
    pub cost_budget_units: Option<f64>,
    /// Hard ESP floor: a finished compilation below it fails with
    /// [`CompileError::EspUnsatisfiable`].
    pub min_esp: Option<f64>,
    /// Failed pulse generations retried per group (see
    /// [`GenerationLimits::pulse_retries`]).
    pub pulse_retries: usize,
    /// Whether a group that fails even as a singleton may keep its
    /// analytic estimate (see
    /// [`GenerationLimits::allow_estimator_fallback`]).
    pub allow_estimator_fallback: bool,
    /// Path of the persistent pulse store. `None` consults the
    /// `PAQOC_PULSE_DB` environment variable; set it (or the variable)
    /// to make pulse reuse survive process restarts. A store that fails
    /// to open degrades to in-memory compilation with a
    /// [`Degradation::StoreUnavailable`] entry — never an error.
    pub pulse_db: Option<std::path::PathBuf>,
    /// Tuning for the persistent store handle ([`PulseStore::open_with`]):
    /// eviction budget, forced read-only mode, IO fault injection. A
    /// `max_bytes` of `None` consults the `PAQOC_PULSE_DB_MAX_BYTES`
    /// environment variable. When the handle comes up read-only —
    /// another process holds the single-writer lock, or read-only was
    /// requested — the compilation proceeds and records a
    /// [`Degradation::StoreReadOnly`] entry.
    ///
    /// [`PulseStore::open_with`]: paqoc_store::PulseStore::open_with
    pub store_options: paqoc_store::StoreOptions,
    /// Worker count for [`try_compile_batch`]. `None` consults the
    /// `PAQOC_THREADS` environment variable, then hardware parallelism
    /// (see [`effective_threads`]). Ignored by the sequential
    /// [`try_compile`].
    pub threads: Option<usize>,
    /// A shared executor pulse table for [`try_compile_batch`],
    /// letting concurrent compiles (the bench suite) pool pulses and a
    /// single persistent-store handle. `None` gives each compile its
    /// own fresh table. Ignored by the sequential [`try_compile`].
    pub shared_table: Option<Arc<SharedPulseTable>>,
    /// Expected backend of the target device (a `paqoc-backend`
    /// registry name). When set, compilation fails fast with
    /// [`CompileError::BackendMismatch`] unless it equals
    /// `device.backend_name()` — the guard that keeps a multi-backend
    /// caller (serve, bench) from filing pulses under the wrong store
    /// namespace. `None` skips the check.
    pub backend: Option<String>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            apa_budget: ApaBudget::None,
            miner: MinerOptions::default(),
            generator: PaqocOptions::default(),
            sabre: SabreOptions::default(),
            skip_mapping: false,
            enable_generator: true,
            trace: false,
            deadline: None,
            cost_budget_units: None,
            min_esp: None,
            pulse_retries: 2,
            allow_estimator_fallback: true,
            pulse_db: None,
            store_options: paqoc_store::StoreOptions::default(),
            threads: None,
            shared_table: None,
            backend: None,
        }
    }
}

impl PipelineOptions {
    /// The paper's `paqoc(M=0)` configuration.
    pub fn m0() -> Self {
        PipelineOptions {
            apa_budget: ApaBudget::None,
            ..PipelineOptions::default()
        }
    }

    /// The paper's `paqoc(M=inf)` configuration.
    pub fn m_inf() -> Self {
        PipelineOptions {
            apa_budget: ApaBudget::Unlimited,
            ..PipelineOptions::default()
        }
    }

    /// The paper's `paqoc(M=tuned)` configuration.
    pub fn m_tuned() -> Self {
        PipelineOptions {
            apa_budget: ApaBudget::Tuned,
            ..PipelineOptions::default()
        }
    }
}

/// The outcome of compiling one circuit.
#[derive(Debug)]
pub struct CompilationResult {
    /// The physical circuit after lowering and mapping.
    pub physical: Circuit,
    /// The final grouping with pulses attached.
    pub grouped: GroupedCircuit,
    /// Whole-circuit pulse latency, nanoseconds.
    pub latency_ns: f64,
    /// Whole-circuit pulse latency in device cycles.
    pub latency_dt: u64,
    /// Estimated success probability (paper Eq. 2).
    pub esp: f64,
    /// Pulse-generation cost accounting.
    pub stats: CompileStats,
    /// Generator loop report.
    pub report: GeneratorReport,
    /// The APA cover that was applied.
    pub apa: ApaCover,
    /// Wall-clock compilation time in seconds.
    pub wall_seconds: f64,
    /// `true` when a deadline or cost budget cut pulse work short; the
    /// result is still valid (monotone latency) but some groups carry
    /// analytic estimates instead of generated pulses.
    pub partial: bool,
    /// Everything the compilation sacrificed to succeed, in order.
    pub degradations: Vec<Degradation>,
    /// Deterministic dump of the compile's pulse table (sorted by
    /// composite key) — the byte-comparable artifact the determinism
    /// tests diff across thread counts.
    pub pulse_table: Vec<(String, PulseEstimate)>,
    /// Nanoseconds spent in each numeric kernel (`mathkit.expm`, …)
    /// during this compile: the caller thread's own probe delta plus
    /// every batch worker's attribution. Empty when kernel probes are
    /// disarmed. Times are schedule-dependent — soft observability
    /// data, deliberately kept out of [`CompileStats`] and the
    /// deterministic dumps.
    pub kernel_ns: std::collections::BTreeMap<String, u64>,
    /// Kernel call counts matching [`kernel_ns`](Self::kernel_ns).
    /// Counts are deterministic across thread counts.
    pub kernel_calls: std::collections::BTreeMap<String, u64>,
}

impl CompilationResult {
    /// Number of customized gates in the final schedule.
    pub fn num_groups(&self) -> usize {
        self.grouped.len()
    }

    /// The decoherence-aware success estimate: the control-error ESP
    /// (Eq. 2) multiplied by the qubits' survival probability over the
    /// schedule — shorter circuits win twice, which is the paper's
    /// motivation for latency reduction made quantitative.
    pub fn esp_with_decoherence(&self, device: &Device) -> f64 {
        let active: std::collections::BTreeSet<usize> = self
            .grouped
            .group_ids()
            .into_iter()
            .flat_map(|id| self.grouped.group(id).qubits.iter().copied())
            .collect();
        self.esp
            * device
                .spec()
                .survival_probability(active.len(), self.latency_ns)
    }
}

/// Compiles a logical circuit to pulses with PAQOC.
///
/// Thin wrapper over [`try_compile`], kept for callers that treat
/// compilation failure as a programming error.
///
/// # Panics
///
/// Panics on any [`CompileError`] — most commonly a circuit needing
/// more qubits than the device offers, or a malformed input circuit.
pub fn compile(
    logical: &Circuit,
    device: &Device,
    source: &mut dyn PulseSource,
    opts: &PipelineOptions,
) -> CompilationResult {
    match try_compile(logical, device, source, opts) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

/// Compiles a logical circuit to pulses with PAQOC, fallibly.
///
/// This is the primary entry point. The contract under fault: the
/// pipeline *degrades* — pulse-source failures are retried, then rolled
/// back to decomposed per-gate pulses, then (by default) absorbed as
/// analytic estimates, all recorded in
/// [`CompilationResult::degradations`]; deadline or cost-budget
/// exhaustion finishes with the current valid grouping marked
/// [`CompilationResult::partial`]. A typed [`CompileError`] is returned
/// only when no result is possible: unmappable or malformed input, a
/// zero deadline, pulse-source failure with fallback disabled, or an
/// unsatisfied `min_esp` floor.
pub fn try_compile(
    logical: &Circuit,
    device: &Device,
    source: &mut dyn PulseSource,
    opts: &PipelineOptions,
) -> Result<CompilationResult, CompileError> {
    compile_inner(logical, device, source, opts, None)
}

/// Compiles with the attach phase parallelized on the executor.
///
/// Instead of one long-lived source, the caller hands a
/// [`PulseSourceFactory`]: each attach sweep batch-generates its
/// pending pulses as [`paqoc_exec::PulseJob`]s across
/// [`PipelineOptions::threads`] workers (per-key seeded, deduped,
/// panic-isolated — see `paqoc_exec`), and the existing sequential
/// commit logic then consumes them as free hits. Failed jobs fall
/// through to the unchanged sequential degradation ladder, driven by a
/// factory-built fallback source.
///
/// Determinism contract: for a fixed input and factory, `threads = 1`
/// and `threads = N` produce bit-identical pulses, latencies, ESP and
/// stats — batch generations are pure functions of their job key.
/// Deadline/cost-budget runs are exempt (which jobs a budget cuts off
/// depends on the schedule, exactly as wall-clock deadlines already
/// behave sequentially).
///
/// The persistent store, when configured, is owned by the shared table
/// (one handle behind a mutex — the append-only log is not multi-handle
/// safe) and flushed once per compile via its single-writer sync.
pub fn try_compile_batch(
    logical: &Circuit,
    device: &Device,
    factory: Arc<dyn PulseSourceFactory>,
    opts: &PipelineOptions,
) -> Result<CompilationResult, CompileError> {
    let threads = effective_threads(opts.threads);
    let shared = opts
        .shared_table
        .clone()
        .unwrap_or_else(|| Arc::new(SharedPulseTable::new()));
    let ctx = BatchContext {
        factory: factory.clone(),
        threads,
        base_seed: 0,
    };
    // The ladder's fallback source: deterministic given the factory,
    // shared across the sequential residue of all sweeps.
    let mut fallback = factory.make(paqoc_exec::job_seed("sequential-fallback"));
    compile_inner(
        logical,
        device,
        fallback.as_mut(),
        opts,
        Some((ctx, shared)),
    )
}

fn compile_inner(
    logical: &Circuit,
    device: &Device,
    source: &mut dyn PulseSource,
    opts: &PipelineOptions,
    batch: Option<(BatchContext, Arc<SharedPulseTable>)>,
) -> Result<CompilationResult, CompileError> {
    let start = Instant::now();
    if let Some(requested) = &opts.backend {
        let actual = device.backend_name();
        if requested != actual {
            return Err(CompileError::BackendMismatch {
                requested: requested.clone(),
                actual: actual.to_string(),
            });
        }
    }
    if opts.trace {
        paqoc_telemetry::set_enabled(true);
    }
    let _compile_span = span("compile");
    // Caller-thread kernel-probe baseline: the sequential paths (weyl
    // invariants, estimator latencies, non-batch GRAPE) run right here,
    // so the compile's own delta plus the batch workers' attribution
    // covers all kernel work this compile caused.
    let kernels_at_start = if paqoc_telemetry::kernel_probes_enabled() {
        Some(paqoc_telemetry::kernel_thread_totals())
    } else {
        None
    };

    if let Some(deadline) = opts.deadline {
        if deadline.is_zero() {
            counter("pipeline.deadline_hits", 1);
            return Err(CompileError::DeadlineExceeded { deadline });
        }
    }
    if logical.num_qubits() == 0 {
        return Err(CompileError::MalformedCircuit(
            "circuit has zero qubits".to_string(),
        ));
    }
    // `Circuit::push` enforces this today, but inputs may come from
    // deserialization paths that bypass it — reject rather than panic
    // deep inside the mapper.
    for inst in logical.iter() {
        if let Some(&q) = inst.qubits().iter().find(|&&q| q >= logical.num_qubits()) {
            return Err(CompileError::MalformedCircuit(format!(
                "gate {} addresses qubit {q} but the circuit has {} qubits",
                inst.gate(),
                logical.num_qubits()
            )));
        }
    }
    if logical.num_qubits() > device.topology().num_qubits() {
        // Checked up front so even `skip_mapping` compilations reject
        // circuits wider than the device.
        return Err(CompileError::Mapping(
            paqoc_mapping::MapError::CircuitTooWide {
                needed: logical.num_qubits(),
                available: device.topology().num_qubits(),
            },
        ));
    }

    // 1. Lower to the universal basis and map onto the device. The
    //    Extended basis keeps named single-qubit gates whole (H stays
    //    "h"), matching the level the paper mines at (Fig. 5).
    let lowered = {
        let _s = span("lower");
        decompose(logical, Basis::Extended)
    };
    let physical = if opts.skip_mapping {
        lowered
    } else {
        let _s = span("map");
        let mapped = try_sabre_map(&lowered, device.topology(), &opts.sabre)?;
        // Routing inserts SWAP gates; lower them to CX chains — these are
        // exactly the recurring patterns the miner should see (Table III).
        decompose(&mapped.circuit, Basis::Extended)
    };

    // 2. Mine frequent subcircuits and select the APA basis.
    let apa = {
        let _s = span("mine");
        if opts.apa_budget == ApaBudget::None {
            ApaCover::default()
        } else {
            let miner_opts = MinerOptions {
                max_qubits: opts.generator.max_qubits,
                ..opts.miner
            };
            let patterns = mine_frequent_subcircuits(&physical, &miner_opts);
            select_apa_basis(&patterns, opts.apa_budget, physical.len())
        }
    };

    // 3. Build the grouped circuit, keeping only APA occurrences whose
    //    joint contraction (a) leaves the dependence DAG acyclic and
    //    (b) does not increase the estimated critical path — the paper's
    //    §V-C guarantee ("APA-basis gate sets are chosen in a way that
    //    it will guarantee not to increase the critical path").
    let mut estimator = paqoc_device::AnalyticModel::new();
    let mut est_cache: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut estimated_span = |partition: &[(Vec<usize>, GroupKind)],
                              estimator: &mut paqoc_device::AnalyticModel|
     -> f64 {
        let mut g = GroupedCircuit::new(physical.instructions(), physical.num_qubits(), partition);
        for id in g.group_ids() {
            let key = crate::table::group_key(&g.group(id).instructions);
            let lat = *est_cache.entry(key).or_insert_with(|| {
                estimator
                    .generate(
                        &g.group(id).instructions,
                        device,
                        opts.generator.target_fidelity,
                        None,
                    )
                    .latency_ns
            });
            g.group_mut(id).latency_ns = lat;
        }
        g.makespan_ns()
    };

    let group_span = span("group");
    let mut partition: Vec<(Vec<usize>, GroupKind)> = Vec::new();
    let mut current_span = if apa.selections.is_empty() {
        0.0
    } else {
        estimated_span(&partition, &mut estimator)
    };
    for (pattern_idx, occ) in apa.occurrences() {
        let mut trial: Vec<(Vec<usize>, GroupKind)> = partition.clone();
        trial.push((occ.clone(), GroupKind::Apa(pattern_idx)));
        if !partition_is_acyclic(physical.instructions(), physical.num_qubits(), &trial) {
            counter("apa.rejected_acyclic", 1);
            continue;
        }
        let trial_span = estimated_span(&trial, &mut estimator);
        if trial_span <= current_span + opts.generator.tolerance_ns {
            counter("apa.accepted", 1);
            partition = trial;
            current_span = trial_span;
        } else {
            counter("apa.rejected_critical_path", 1);
        }
    }
    let mut grouped =
        GroupedCircuit::new(physical.instructions(), physical.num_qubits(), &partition);
    drop(group_span);

    // 4. Criticality-aware customized gate generation + pulses, over a
    //    pulse table optionally backed by the persistent store.
    let mut table = PulseTable::new();
    let mut degradations: Vec<Degradation> = Vec::new();
    let db_path = opts.pulse_db.clone().or_else(|| {
        std::env::var_os("PAQOC_PULSE_DB")
            .filter(|v| !v.is_empty())
            .map(std::path::PathBuf::from)
    });
    if let Some(path) = db_path {
        // In batch mode the persistent store belongs to the shared
        // executor table (its log is single-handle; workers read through
        // it and the write-behind sync is the one writer). An already
        // store-backed shared table — the bench suite pooling compiles —
        // keeps its handle.
        let store_owner_has_one = batch
            .as_ref()
            .map(|(_, shared)| shared.has_store())
            .unwrap_or(false);
        if !store_owner_has_one {
            let mut store_opts = opts.store_options.clone();
            if store_opts.max_bytes.is_none() {
                store_opts.max_bytes = std::env::var("PAQOC_PULSE_DB_MAX_BYTES")
                    .ok()
                    .and_then(|v| v.parse().ok());
            }
            match paqoc_store::PulseStore::open_with(&path, device.fingerprint(), store_opts) {
                Ok(store) => {
                    if store.role() == paqoc_store::StoreRole::ReadOnly {
                        // Reads still come through; only durability of
                        // this run's fresh pulses is lost.
                        let reason = if opts.store_options.read_only {
                            "requested"
                        } else {
                            "lock-held"
                        };
                        degradations.push(Degradation::StoreReadOnly {
                            reason: reason.to_string(),
                        });
                    }
                    match &batch {
                        Some((_, shared)) => shared.attach_store(store),
                        None => table.attach_store(store),
                    }
                }
                Err(e) => {
                    // Persistence is an accelerator, not a requirement:
                    // compile in-memory and record the concession.
                    counter("store.open_failures", 1);
                    paqoc_telemetry::event!("store.open_failed", error = e.to_string());
                    degradations.push(Degradation::StoreUnavailable {
                        reason: e.to_string(),
                    });
                }
            }
        }
    }
    if let Some((_, shared)) = &batch {
        table.attach_shared(shared.clone());
    }
    let gen_opts = if opts.enable_generator {
        opts.generator
    } else {
        PaqocOptions {
            max_iterations: 0,
            preprocess: false,
            ..opts.generator
        }
    };
    let limits = GenerationLimits {
        deadline: opts.deadline.map(|d| start + d),
        cost_budget_units: opts.cost_budget_units,
        pulse_retries: opts.pulse_retries,
        allow_estimator_fallback: opts.allow_estimator_fallback,
    };
    let outcome = {
        let _s = span("generate");
        try_generate_customized_gates_batched(
            &mut grouped,
            device,
            source,
            &mut table,
            &gen_opts,
            &limits,
            batch.as_ref().map(|(ctx, _)| ctx),
        )?
    };
    degradations.extend(outcome.degradations);
    // Write-behind flush: everything generated this run becomes durable
    // before the result is returned. In batch mode the shared table owns
    // the store handle and its single-writer sync drains all shards.
    let flush = match &batch {
        Some((_, shared)) => shared.sync().map(|_| ()),
        None => table.sync_store(),
    };
    if let Err(e) = flush {
        counter("store.sync_failures", 1);
        degradations.push(Degradation::StoreUnavailable {
            reason: format!("sync failed: {e}"),
        });
    }

    let esp = grouped.esp();
    if let Some(required) = opts.min_esp {
        if esp < required {
            return Err(CompileError::EspUnsatisfiable {
                achieved: esp,
                required,
            });
        }
    }

    let latency_ns = grouped.makespan_ns();
    if paqoc_telemetry::enabled() {
        for d in &degradations {
            paqoc_telemetry::event!("pipeline.degradation", detail = d.to_string());
        }
        paqoc_telemetry::event!(
            "pipeline.result",
            latency_ns = latency_ns,
            esp = esp,
            groups = grouped.len() as u64,
            iterations = outcome.report.iterations as u64,
            pulses_generated = table.stats().pulses_generated as u64,
            cache_hits = table.stats().cache_hits as u64,
            store_hits = table.stats().store_hits as u64,
            partial = outcome.partial,
            degradations = degradations.len() as u64,
        );
    }
    let mut kernel_ns = outcome.kernel_ns;
    let mut kernel_calls = outcome.kernel_calls;
    if let Some(before) = kernels_at_start {
        for (name, (calls, ns)) in paqoc_telemetry::kernel_thread_totals() {
            let (c0, ns0) = before.get(name).copied().unwrap_or((0, 0));
            let (dc, dns) = (calls.saturating_sub(c0), ns.saturating_sub(ns0));
            if dc > 0 || dns > 0 {
                *kernel_calls.entry(name.to_string()).or_insert(0) += dc;
                *kernel_ns.entry(name.to_string()).or_insert(0) += dns;
            }
        }
    }
    Ok(CompilationResult {
        physical,
        latency_ns,
        latency_dt: device.spec().ns_to_dt(latency_ns),
        esp,
        stats: table.stats(),
        report: outcome.report,
        apa,
        grouped,
        wall_seconds: start.elapsed().as_secs_f64(),
        partial: outcome.partial,
        degradations,
        pulse_table: table.dump_entries(),
        kernel_ns,
        kernel_calls,
    })
}

/// `true` when contracting each set of the partition (remaining
/// instructions as singletons) leaves the dependence DAG acyclic.
pub fn partition_is_acyclic(
    instructions: &[Instruction],
    num_qubits: usize,
    partition: &[(Vec<usize>, GroupKind)],
) -> bool {
    let n = instructions.len();
    let mut owner: Vec<usize> = (0..n).collect();
    // Singleton ids = instruction index; merged groups start at n.
    for (next_group, (set, _)) in (n..).zip(partition.iter()) {
        for &i in set {
            if owner[i] != i {
                return false; // overlap: instruction claimed twice
            }
            owner[i] = next_group;
        }
    }
    // Quotient edges.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut last_use: Vec<Option<usize>> = vec![None; num_qubits];
    for (i, inst) in instructions.iter().enumerate() {
        let g = owner[i];
        for &q in inst.qubits() {
            if let Some(p) = last_use[q] {
                if p != g {
                    edges.push((p, g));
                }
            }
            last_use[q] = Some(g);
        }
    }
    edges.sort_unstable();
    edges.dedup();
    // Kahn over the quotient.
    use std::collections::HashMap;
    let mut indeg: HashMap<usize, usize> = HashMap::new();
    let mut succs: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut nodes: std::collections::HashSet<usize> = owner.iter().copied().collect();
    for &(a, b) in &edges {
        *indeg.entry(b).or_insert(0) += 1;
        succs.entry(a).or_default().push(b);
        nodes.insert(a);
        nodes.insert(b);
    }
    let mut queue: Vec<usize> = nodes
        .iter()
        .copied()
        .filter(|v| !indeg.contains_key(v))
        .collect();
    let mut seen = 0usize;
    while let Some(v) = queue.pop() {
        seen += 1;
        if let Some(ss) = succs.get(&v) {
            for &s in ss {
                // Every successor edge incremented `indeg[s]` above, so
                // the entry exists; a defensive miss is simply skipped.
                if let Some(d) = indeg.get_mut(&s) {
                    *d -= 1;
                    if *d == 0 {
                        queue.push(s);
                    }
                }
            }
        }
    }
    seen == nodes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_device::AnalyticModel;

    fn qaoa_like() -> Circuit {
        // Repeated CPHASE skeletons: mining fodder.
        let mut c = Circuit::new(4);
        for _ in 0..2 {
            for (a, b) in [(0usize, 1usize), (1, 2), (2, 3)] {
                c.cp(a, b, 0.7);
            }
            for q in 0..4 {
                c.rx(q, 0.35);
            }
        }
        c
    }

    #[test]
    fn m0_pipeline_compiles_and_improves_over_no_merging() {
        let device = Device::grid5x5();
        let mut source = AnalyticModel::new();
        let merged = compile(&qaoa_like(), &device, &mut source, &PipelineOptions::m0());
        let mut source2 = AnalyticModel::new();
        let unmerged = compile(
            &qaoa_like(),
            &device,
            &mut source2,
            &PipelineOptions {
                enable_generator: false,
                ..PipelineOptions::m0()
            },
        );
        assert!(
            merged.latency_ns < unmerged.latency_ns,
            "{} vs {}",
            merged.latency_ns,
            unmerged.latency_ns
        );
        assert!(merged.esp > unmerged.esp);
        assert!(merged.latency_dt > 0);
    }

    #[test]
    fn m_inf_reduces_compilation_cost() {
        let device = Device::grid5x5();
        let mut s0 = AnalyticModel::new();
        let m0 = compile(&qaoa_like(), &device, &mut s0, &PipelineOptions::m0());
        let mut si = AnalyticModel::new();
        let mi = compile(&qaoa_like(), &device, &mut si, &PipelineOptions::m_inf());
        assert!(
            mi.stats.cost_units <= m0.stats.cost_units,
            "inf {} vs m0 {}",
            mi.stats.cost_units,
            m0.stats.cost_units
        );
        assert!(mi.apa.num_apa_gates() > 0, "{:?}", mi.apa);
    }

    #[test]
    fn tuned_sits_between_m0_and_inf_in_cost() {
        let device = Device::grid5x5();
        let mut s = AnalyticModel::new();
        let m0 = compile(&qaoa_like(), &device, &mut s, &PipelineOptions::m0());
        let mut s = AnalyticModel::new();
        let mt = compile(&qaoa_like(), &device, &mut s, &PipelineOptions::m_tuned());
        let mut s = AnalyticModel::new();
        let mi = compile(&qaoa_like(), &device, &mut s, &PipelineOptions::m_inf());
        // On a tiny synthetic circuit the exact ordering is noisy; the
        // full-benchmark harness (fig11) asserts the paper's ordering.
        assert!(
            mt.stats.cost_units <= m0.stats.cost_units * 2.0 + 1e-9,
            "tuned {} vs m0 {}",
            mt.stats.cost_units,
            m0.stats.cost_units
        );
        assert!(mt.latency_ns <= mi.latency_ns * 1.3);
    }

    #[test]
    fn skip_mapping_uses_the_raw_circuit() {
        let device = Device::grid5x5();
        let mut source = AnalyticModel::new();
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let r = compile(
            &c,
            &device,
            &mut source,
            &PipelineOptions {
                skip_mapping: true,
                ..PipelineOptions::m0()
            },
        );
        // h lowers to rz·sx·rz; all merged with cx into one group.
        assert_eq!(r.num_groups(), 1);
    }

    #[test]
    fn partition_acyclicity_rejects_cross_dependences() {
        // g0: cx(0,1); g1: rz(0); g2: rz(1); g3: cx(0,1)
        // Sets {0,3} is non-convex contraction; {g1} and {g2} singletons.
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(0, 0.1).rz(1, 0.2).cx(0, 1);
        assert!(!partition_is_acyclic(
            c.instructions(),
            2,
            &[(vec![0, 3], GroupKind::Apa(0))],
        ));
        assert!(partition_is_acyclic(
            c.instructions(),
            2,
            &[
                (vec![0, 1], GroupKind::Apa(0)),
                (vec![2, 3], GroupKind::Apa(0))
            ],
        ));
    }

    #[test]
    fn mutual_cycle_between_two_groups_is_rejected() {
        // A = {g0 on q0, g3 on q1}, B = {g1 on q0, g2 on q1} with
        // g0→g1 (q0) and g2→g3 (q1): quotient has A→B and B→A.
        let mut c = Circuit::new(2);
        c.rz(0, 0.1).rz(0, 0.2).rz(1, 0.3).rz(1, 0.4);
        assert!(!partition_is_acyclic(
            c.instructions(),
            2,
            &[
                (vec![0, 3], GroupKind::Apa(0)),
                (vec![1, 2], GroupKind::Apa(0)),
            ],
        ));
    }

    #[test]
    fn wall_time_is_recorded() {
        let device = Device::grid5x5();
        let mut source = AnalyticModel::new();
        let r = compile(&qaoa_like(), &device, &mut source, &PipelineOptions::m0());
        assert!(r.wall_seconds > 0.0);
    }

    fn store_tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("paqoc-pipeline-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(paqoc_store::lock_path(&path));
        path
    }

    #[test]
    fn requested_read_only_store_degrades_but_still_serves_reads() {
        let device = Device::grid5x5();
        let path = store_tmp("readonly.pqps");
        // Warm pass: a writer persists this compile's pulses.
        let mut source = AnalyticModel::new();
        let opts = PipelineOptions {
            pulse_db: Some(path.clone()),
            ..PipelineOptions::m0()
        };
        let warm = compile(&qaoa_like(), &device, &mut source, &opts);
        assert!(
            !warm
                .degradations
                .iter()
                .any(|d| matches!(d, Degradation::StoreReadOnly { .. })),
            "first opener must win the writer lock"
        );
        // Read-only pass: still compiles, still hits the store, but the
        // concession is recorded.
        let ro = PipelineOptions {
            pulse_db: Some(path.clone()),
            store_options: paqoc_store::StoreOptions {
                read_only: true,
                ..paqoc_store::StoreOptions::default()
            },
            ..PipelineOptions::m0()
        };
        let mut source = AnalyticModel::new();
        let r = compile(&qaoa_like(), &device, &mut source, &ro);
        assert!(
            r.degradations.iter().any(
                |d| matches!(d, Degradation::StoreReadOnly { reason } if reason == "requested")
            ),
            "degradations: {:?}",
            r.degradations
        );
        assert!(
            r.stats.store_hits > 0,
            "a read-only handle must still serve the warm pass's pulses"
        );
    }

    #[test]
    fn backend_mismatch_fails_fast_with_a_typed_error() {
        let device = Device::grid5x5();
        let opts = PipelineOptions {
            backend: Some("heavy-hex".to_string()),
            ..PipelineOptions::m0()
        };
        let mut source = AnalyticModel::new();
        let err = try_compile(&qaoa_like(), &device, &mut source, &opts)
            .expect_err("grid device cannot satisfy a heavy-hex request");
        assert_eq!(err.kind(), "backend_mismatch");
        assert!(err.to_string().contains("heavy-hex"), "{err}");
        assert!(err.to_string().contains("transmon-grid"), "{err}");
        // The matching name compiles normally.
        let ok = PipelineOptions {
            backend: Some("transmon-grid".to_string()),
            ..PipelineOptions::m0()
        };
        assert!(try_compile(&qaoa_like(), &device, &mut source, &ok).is_ok());
    }

    #[test]
    fn held_writer_lock_degrades_compile_to_read_only() {
        let device = Device::grid5x5();
        let path = store_tmp("lock-held.pqps");
        // Another "process" (handle in this one — the flock is
        // per-open-file-description) holds the writer lock.
        let _writer =
            paqoc_store::PulseStore::open(&path, device.fingerprint()).expect("writer handle");
        let opts = PipelineOptions {
            pulse_db: Some(path.clone()),
            ..PipelineOptions::m0()
        };
        let mut source = AnalyticModel::new();
        let r = compile(&qaoa_like(), &device, &mut source, &opts);
        assert!(
            r.degradations.iter().any(
                |d| matches!(d, Degradation::StoreReadOnly { reason } if reason == "lock-held")
            ),
            "degradations: {:?}",
            r.degradations
        );
    }
}
