//! The criticality-aware customized gates generator (paper Algorithm 1).
//!
//! Iteratively merges pairs of groups, pruned by the paper's criticality
//! analysis (only candidates touching the critical path are ranked;
//! Case III pairs are discarded), ranked by the predicted whole-circuit
//! latency delta using the free analytic estimator (Observations 1 & 2
//! stand in for pulse generation), and committed top-k per iteration
//! with real pulse generation and a monotonic-decrease guarantee: a
//! merge whose generated pulse fails to shorten the circuit is rolled
//! back (its wasted generation cost still counts, like the paper's
//! rejected Case-II trial generations).

use crate::error::{CompileError, Degradation};
use crate::group::{GroupKind, GroupedCircuit};
use crate::table::PulseTable;
use paqoc_circuit::Instruction;
use paqoc_device::{AnalyticModel, Device, PulseGenError, PulseSource};
use paqoc_exec::{run_batch, ExecOptions, PulseJob, PulseSourceFactory};
use paqoc_telemetry::{counter, event, observe, FieldValue};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Parallel-prefetch context for the attach phase: with one of these,
/// the generator batch-generates every pending pulse of an attach sweep
/// across the executor's worker pool before the sequential commit logic
/// runs. Requires the table to carry a shared layer
/// ([`PulseTable::attach_shared`]); without one the prefetch is a
/// no-op and the generator stays fully sequential.
#[derive(Clone)]
pub struct BatchContext {
    /// Builds one seeded source per job (see [`paqoc_exec::job_seed`]).
    pub factory: Arc<dyn PulseSourceFactory>,
    /// Worker count for each prefetch batch.
    pub threads: usize,
    /// Seed folded into every per-key job seed.
    pub base_seed: u64,
}

impl std::fmt::Debug for BatchContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchContext")
            .field("factory", &self.factory.name())
            .field("threads", &self.threads)
            .field("base_seed", &self.base_seed)
            .finish()
    }
}

/// Knobs of the customized-gates generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaqocOptions {
    /// Maximum qubits per customized gate (the paper's `maxN`, default 3).
    pub max_qubits: usize,
    /// Customized gates committed per iteration (the paper's `top-k`).
    pub top_k: usize,
    /// Per-pulse fidelity target handed to the pulse source.
    pub target_fidelity: f64,
    /// Enable the Observation-1 preprocessing merge of same-qubit runs.
    pub preprocess: bool,
    /// Enable criticality pruning (disable to rank *all* contractible
    /// pairs — the ablation of Section V-A1).
    pub criticality_pruning: bool,
    /// Critical-path tolerance in ns.
    pub tolerance_ns: f64,
    /// Upper bound on merge iterations (safety valve).
    pub max_iterations: usize,
}

impl Default for PaqocOptions {
    fn default() -> Self {
        PaqocOptions {
            max_qubits: 3,
            top_k: 1,
            target_fidelity: 0.999,
            preprocess: true,
            criticality_pruning: true,
            tolerance_ns: 1e-9,
            max_iterations: 10_000,
        }
    }
}

/// Outcome of the generator loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GeneratorReport {
    /// Merges committed by preprocessing.
    pub preprocess_merges: usize,
    /// Merges committed by the criticality-aware loop.
    pub criticality_merges: usize,
    /// Candidate merges rejected after real pulse generation.
    pub rejected_merges: usize,
    /// Iterations of the outer loop.
    pub iterations: usize,
    /// Merges rolled back at attachment time because their pulse could
    /// not be generated even after retries.
    pub fallbacks: usize,
    /// Groups that kept their analytic estimate because the real pulse
    /// source failed on them even as singletons.
    pub estimator_fallbacks: usize,
}

/// Wall-clock and cost budgets plus fallback policy for one generator
/// run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenerationLimits {
    /// Hard wall-clock cutoff. When it passes mid-run the generator
    /// stops merging (or attaching real pulses) and finishes with the
    /// current valid grouping, marked partial.
    pub deadline: Option<Instant>,
    /// Pulse-generation cost cap in the estimator's synthetic
    /// `cost_units`; exhaustion behaves like a deadline hit.
    pub cost_budget_units: Option<f64>,
    /// Failed generations retried per group at the table layer (the
    /// source may escalate internally on top of this).
    pub pulse_retries: usize,
    /// When a group fails even as a singleton: `true` keeps its analytic
    /// estimate (recorded as a degradation), `false` aborts the run with
    /// [`CompileError::PulseSource`].
    pub allow_estimator_fallback: bool,
}

impl Default for GenerationLimits {
    fn default() -> Self {
        GenerationLimits {
            deadline: None,
            cost_budget_units: None,
            pulse_retries: 2,
            allow_estimator_fallback: true,
        }
    }
}

/// What a fallible generator run produced.
#[derive(Clone, Debug)]
pub struct GenerationOutcome {
    /// Merge/iteration accounting.
    pub report: GeneratorReport,
    /// Everything the run sacrificed to finish (rollbacks, fallbacks,
    /// budget hits), in the order it happened.
    pub degradations: Vec<Degradation>,
    /// `true` when a deadline or cost budget cut the run short.
    pub partial: bool,
    /// Nanoseconds the prefetch batches spent in each numeric kernel
    /// (worker-side probe attribution, see
    /// [`BatchReport::kernel_ns`](paqoc_exec::BatchReport)). Empty when
    /// kernel probes are disarmed or no batch ran. Schedule-dependent
    /// soft data — never part of the deterministic outputs.
    pub kernel_ns: BTreeMap<String, u64>,
    /// Kernel call counts matching [`kernel_ns`](Self::kernel_ns);
    /// deterministic across thread counts.
    pub kernel_calls: BTreeMap<String, u64>,
}

/// Runs Algorithm 1 over a grouped circuit.
///
/// On return every live group has a generated pulse (latency and
/// fidelity set), and the circuit latency is monotonically no worse
/// than the input grouping's.
///
/// Infallible wrapper over [`try_generate_customized_gates`] with
/// default limits — estimator fallback enabled, no budgets — under
/// which the ladder always bottoms out in a valid result.
///
/// # Panics
///
/// Panics only if the degradation ladder is unexpectedly bypassed;
/// unreachable with [`GenerationLimits::default`].
pub fn generate_customized_gates(
    grouped: &mut GroupedCircuit,
    device: &Device,
    source: &mut dyn PulseSource,
    table: &mut PulseTable,
    opts: &PaqocOptions,
) -> GeneratorReport {
    match try_generate_customized_gates(
        grouped,
        device,
        source,
        table,
        opts,
        &GenerationLimits::default(),
    ) {
        Ok(outcome) => outcome.report,
        Err(e) => panic!("generator failed with fallbacks enabled: {e}"),
    }
}

/// Fallible [`generate_customized_gates`] with budgets and the
/// degradation ladder (paper Algorithm 1 hardened for production).
///
/// The ladder, from cheapest to most drastic:
/// 1. retry the pulse source per group (`limits.pulse_retries`, plus
///    whatever escalation the source does internally),
/// 2. roll a failing merged group back to decomposed per-gate pulses
///    (rebuilding the DAG with that group split into singletons),
/// 3. keep the analytic estimate for a group that fails even as a
///    singleton (when `limits.allow_estimator_fallback`).
///
/// Budgets are checked every merge iteration and before every real
/// pulse generation; exhaustion finishes the run with the current valid
/// grouping marked `partial` instead of erroring. Every concession is
/// recorded in [`GenerationOutcome::degradations`].
pub fn try_generate_customized_gates(
    grouped: &mut GroupedCircuit,
    device: &Device,
    source: &mut dyn PulseSource,
    table: &mut PulseTable,
    opts: &PaqocOptions,
    limits: &GenerationLimits,
) -> Result<GenerationOutcome, CompileError> {
    try_generate_customized_gates_batched(grouped, device, source, table, opts, limits, None)
}

/// [`try_generate_customized_gates`] with an optional parallel-prefetch
/// context: before each attach sweep, every pending pulse is generated
/// as a [`PulseJob`] batch on the executor (deduped, panic-isolated,
/// budget-shared), and the sweep then commits sequentially — hits are
/// free, failures fall through to the unchanged degradation ladder. The
/// per-key seeding keeps results bit-identical to the sequential path
/// for deterministic sources.
#[allow(clippy::too_many_arguments)]
pub fn try_generate_customized_gates_batched(
    grouped: &mut GroupedCircuit,
    device: &Device,
    source: &mut dyn PulseSource,
    table: &mut PulseTable,
    opts: &PaqocOptions,
    limits: &GenerationLimits,
    exec: Option<&BatchContext>,
) -> Result<GenerationOutcome, CompileError> {
    let mut report = GeneratorReport::default();
    let mut degradations: Vec<Degradation> = Vec::new();
    let mut partial = false;
    let mut kernel_ns: BTreeMap<String, u64> = BTreeMap::new();
    let mut kernel_calls: BTreeMap<String, u64> = BTreeMap::new();
    let mut estimator = AnalyticModel::new();

    // Seed every starting group (basis gates and APA gates) with a free
    // estimator latency; the fidelity-0 marker means "no real pulse
    // yet". Real pulses are generated once, for the final grouping.
    for id in grouped.group_ids() {
        let insts = grouped.group(id).instructions.clone();
        let est = estimator
            .generate(&insts, device, opts.target_fidelity, None)
            .latency_ns;
        let g = grouped.group_mut(id);
        g.latency_ns = est;
        g.fidelity = 0.0;
    }

    if opts.preprocess {
        // Preprocessed groups keep free estimator latencies (fidelity-0
        // marker); real pulses are only generated for the *final*
        // grouping at the end of this function — the paper's central
        // compile-time saving.
        report.preprocess_merges =
            preprocess_same_qubit_runs(grouped, device, &mut estimator, opts);
        counter(
            "generator.preprocess_merges",
            report.preprocess_merges as u64,
        );
    }

    // Merged-latency estimates are cached by group-id pair: ids are
    // never mutated in place (merges mint fresh ids), so entries stay
    // valid for the whole loop.
    let mut est_cache: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();

    // One compilation gets at most one DeadlineHit degradation and one
    // `pipeline.deadline_hits` increment (same for the cost budget),
    // whether the limit trips in the merge loop, the attach loop, or
    // both — the flags are shared across the phases.
    let mut budget_noted = false;
    let mut deadline_noted = false;

    for _ in 0..opts.max_iterations {
        if let Some(deadline) = limits.deadline {
            if Instant::now() >= deadline {
                deadline_noted = true;
                counter("pipeline.deadline_hits", 1);
                degradations.push(Degradation::DeadlineHit {
                    phase: "merge".to_string(),
                });
                partial = true;
                break;
            }
        }
        if let Some(budget) = limits.cost_budget_units {
            let spent = table.stats().cost_units;
            if spent >= budget {
                budget_noted = true;
                degradations.push(Degradation::CostBudgetExhausted { spent, budget });
                partial = true;
                break;
            }
        }
        report.iterations += 1;
        counter("generator.iterations", 1);
        let span = grouped.makespan_ns();
        let before = grouped.cp_before();
        let after = grouped.cp_after();
        // Top-3 whole-path weights, for O(1) "heaviest path elsewhere".
        let mut top_paths: Vec<(f64, usize)> = grouped
            .group_ids()
            .into_iter()
            .map(|g| (before[g] + grouped.group(g).latency_ns + after[g], g))
            .collect();
        top_paths.sort_by(|x, y| y.0.total_cmp(&x.0));
        top_paths.truncate(3);
        let critical: Vec<bool> = {
            let mut flags = vec![false; before.len()];
            for id in grouped.critical_groups(opts.tolerance_ns) {
                flags[id] = true;
            }
            flags
        };

        // Candidate pairs: direct edges plus sibling pairs sharing a
        // parent or child, filtered to contractible, ≤ maxN qubits, and
        // (when pruning) at least one critical member (Cases I and II).
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for a in grouped.group_ids() {
            for &b in grouped.succs(a) {
                candidates.push((a, b));
            }
            let around: Vec<usize> = grouped
                .preds(a)
                .iter()
                .chain(grouped.succs(a).iter())
                .copied()
                .collect();
            for (i, &x) in around.iter().enumerate() {
                for &y in &around[i + 1..] {
                    if x != y {
                        candidates.push((x.min(y), x.max(y)));
                    }
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        // Per-iteration decision accounting for the event journal:
        // candidate volume, Case I/II/III split (paper §IV-B), and the
        // Obs.1/Obs.2 prune counts.
        let candidates_total = candidates.len();
        let (mut case1, mut case2, mut case3) = (0usize, 0usize, 0usize);
        let mut pruned_qubit_cap = 0usize;
        let mut scored: Vec<(f64, f64, usize, usize)> = Vec::new();
        for (a, b) in candidates {
            counter("generator.candidates_evaluated", 1);
            let ga = grouped.group(a);
            let gb = grouped.group(b);
            let union_qubits: std::collections::BTreeSet<usize> =
                ga.qubits.union(&gb.qubits).copied().collect();
            if union_qubits.len() > opts.max_qubits {
                counter("generator.pruned_qubit_cap", 1);
                pruned_qubit_cap += 1;
                continue;
            }
            match (critical[a], critical[b]) {
                (true, true) => case1 += 1,
                (true, false) | (false, true) => case2 += 1,
                (false, false) => case3 += 1,
            }
            if opts.criticality_pruning && !critical[a] && !critical[b] {
                counter("generator.pruned_case3", 1);
                continue; // Case III: cannot shorten the critical path
            }
            // Contractibility (a graph search) is deferred to commit
            // time; scoring stays cheap.
            // Free latency estimate of the merged gate (Obs. 1 & 2 via
            // the analytic model; no pulse-generation cost incurred),
            // cached per id pair.
            let est = *est_cache.entry((a, b)).or_insert_with(|| {
                let merged_insts: Vec<_> = ga
                    .instructions
                    .iter()
                    .chain(gb.instructions.iter())
                    .cloned()
                    .collect();
                estimator
                    .generate(&merged_insts, device, opts.target_fidelity, None)
                    .latency_ns
            });
            // Paper's three-term critical path update: the merged node's
            // heaviest path vs the heaviest path elsewhere (approximated
            // by the unmerged span of the untouched groups). The merged
            // node's window comes from its *external* neighbours —
            // using before[b]/after[a] directly would double-count the
            // partner's latency on dependent pairs.
            let new_before = grouped
                .preds(a)
                .iter()
                .chain(grouped.preds(b).iter())
                .filter(|&&p| p != a && p != b)
                .map(|&p| before[p] + grouped.group(p).latency_ns)
                .fold(0.0f64, f64::max);
            let new_after = grouped
                .succs(a)
                .iter()
                .chain(grouped.succs(b).iter())
                .filter(|&&s| s != a && s != b)
                .map(|&s| grouped.group(s).latency_ns + after[s])
                .fold(0.0f64, f64::max);
            let through_merged = new_before + est + new_after;
            let elsewhere = top_paths
                .iter()
                .find(|&&(_, g)| g != a && g != b)
                .map(|&(w, _)| w)
                .unwrap_or(0.0);
            let new_span_est = through_merged.max(elsewhere.min(span));
            let span_gain = span - new_span_est;
            // Secondary criterion: local latency saved (Obs. 1). With
            // parallel identical chains every single merge has zero span
            // gain, yet merging all of them is what eventually shortens
            // the circuit — so zero-span-gain merges are accepted when
            // they strictly reduce total pulse time.
            let local_gain = grouped.group(a).latency_ns + grouped.group(b).latency_ns - est;
            if span_gain > opts.tolerance_ns
                || (span_gain >= -opts.tolerance_ns && local_gain > opts.tolerance_ns)
            {
                scored.push((span_gain, local_gain, a, b));
            }
        }
        // Note: no early break on an empty `scored` — the loop falls
        // through to the per-iteration decision event below and exits
        // via `committed == 0`, so every counted iteration is journaled.
        scored.sort_by(|x, y| {
            y.0.total_cmp(&x.0)
                .then(y.1.total_cmp(&x.1))
                .then((x.2, x.3).cmp(&(y.2, y.3)))
        });

        // Commit up to top-k disjoint candidates, each validated with
        // the (free) estimator latency and rolled back if it fails to
        // help — the paper's core compile-time saving: Observations 1
        // and 2 replace trial pulse generation; real pulses are only
        // generated once the grouping is final.
        let mut committed = 0usize;
        let mut touched: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for &(_, _, a, b) in &scored {
            if committed >= opts.top_k {
                break;
            }
            if touched.contains(&a) || touched.contains(&b) {
                continue; // candidate invalidated by an earlier merge
            }
            if !grouped.contractible(a, b) {
                continue;
            }
            let saved_latency = grouped.group(a).latency_ns + grouped.group(b).latency_ns;
            let est = est_cache[&(a, b)];
            let mut trial = grouped.clone();
            let m = trial.merge(a, b);
            trial.group_mut(m).latency_ns = est;
            trial.group_mut(m).fidelity = 0.0; // marker: estimate only
            let new_span = trial.makespan_ns();
            // Commit on strict span decrease, or on span non-increase
            // with a strict total-pulse-time decrease (guarantees
            // monotonic span and loop termination).
            let total_gain = saved_latency - est;
            let commit = new_span < span - opts.tolerance_ns
                || (new_span <= span + opts.tolerance_ns && total_gain > opts.tolerance_ns);
            if paqoc_telemetry::enabled() {
                let m = trial
                    .group_ids()
                    .last()
                    .copied()
                    .expect("merge minted a group");
                let g = trial.group(m);
                event(
                    if commit {
                        "search.merge_commit"
                    } else {
                        "search.merge_reject"
                    },
                    &[
                        ("iter", FieldValue::U64(report.iterations as u64)),
                        ("a", FieldValue::U64(a as u64)),
                        ("b", FieldValue::U64(b as u64)),
                        ("gates", FieldValue::U64(g.instructions.len() as u64)),
                        ("qubits", FieldValue::U64(g.qubits.len() as u64)),
                        ("predicted_latency_ns", FieldValue::F64(est)),
                        ("predicted_span_gain_ns", FieldValue::F64(span - new_span)),
                        ("local_gain_ns", FieldValue::F64(total_gain)),
                    ],
                );
            }
            if commit {
                *grouped = trial;
                touched.insert(a);
                touched.insert(b);
                committed += 1;
                report.criticality_merges += 1;
                counter("generator.merges_committed", 1);
            } else {
                report.rejected_merges += 1;
                counter("generator.merges_rejected", 1);
            }
        }
        // One decision event per merge iteration, whatever happened:
        // the journal's view of the whole criticality search.
        event!(
            "search.iteration",
            iter = report.iterations as u64,
            groups = grouped.len() as u64,
            span_ns = span,
            candidates = candidates_total as u64,
            case1 = case1 as u64,
            case2 = case2 as u64,
            case3 = case3 as u64,
            pruned_case3 = (if opts.criticality_pruning { case3 } else { 0 }) as u64,
            pruned_qubit_cap = pruned_qubit_cap as u64,
            scored = scored.len() as u64,
            committed = committed as u64,
        );
        if committed == 0 {
            break;
        }
    }

    // Attach real generated pulses to every group still carrying an
    // estimate (fidelity-0 marker). Recurring shapes hit the table.
    //
    // This is where the degradation ladder lives: a multi-gate group
    // whose pulse cannot be generated (even after retries) is rolled
    // back — the whole DAG is rebuilt with that group split into
    // singletons, already-attached shapes re-attach through the table
    // cache for free, and the loop restarts. The multi-gate group count
    // strictly decreases per rollback, so the loop terminates.
    'attach: loop {
        // Parallel prefetch: batch-generate every pending pulse of this
        // sweep before the sequential commit pass touches it. After a
        // rollback rebuild the sweep re-runs, and with it the prefetch
        // (already-attached shapes are local hits and produce no jobs).
        if let Some(ctx) = exec {
            prefetch_pending_pulses(
                grouped,
                device,
                table,
                opts,
                limits,
                ctx,
                &mut kernel_ns,
                &mut kernel_calls,
            );
        }
        let mut rollback: Option<usize> = None;
        for id in grouped.group_ids() {
            if grouped.group(id).fidelity != 0.0 {
                continue;
            }
            let out_of_time = limits
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline);
            let out_of_budget = limits
                .cost_budget_units
                .is_some_and(|budget| table.stats().cost_units >= budget);
            if out_of_time || out_of_budget {
                if out_of_time && !deadline_noted {
                    deadline_noted = true;
                    partial = true;
                    counter("pipeline.deadline_hits", 1);
                    degradations.push(Degradation::DeadlineHit {
                        phase: "attach".to_string(),
                    });
                }
                if out_of_budget && !budget_noted {
                    budget_noted = true;
                    partial = true;
                    degradations.push(Degradation::CostBudgetExhausted {
                        spent: table.stats().cost_units,
                        budget: limits.cost_budget_units.unwrap_or(0.0),
                    });
                }
                // Keep the (already validated) analytic estimate: the
                // latency stays monotone, only the fidelity is a model
                // value rather than a generated one.
                let insts = grouped.group(id).instructions.clone();
                let est = estimator.generate(&insts, device, opts.target_fidelity, None);
                let g = grouped.group_mut(id);
                g.latency_ns = est.latency_ns;
                g.fidelity = est.fidelity;
                continue;
            }
            let insts = grouped.group(id).instructions.clone();
            // The group's latency still holds the free analytic
            // estimate the search committed on; comparing it with the
            // realized pulse length measures the Obs.1 estimator error
            // (negative = conservative over-estimate).
            let predicted_ns = grouped.group(id).latency_ns;
            match table.try_pulse_for(
                &insts,
                device,
                source,
                opts.target_fidelity,
                limits.pulse_retries,
            ) {
                Ok(pulse) => {
                    observe(
                        "search.predicted_latency_error_ns",
                        pulse.latency_ns - predicted_ns,
                    );
                    event!(
                        "pulse.attach",
                        group = id as u64,
                        gates = insts.len() as u64,
                        predicted_ns = predicted_ns,
                        realized_ns = pulse.latency_ns,
                        fidelity = pulse.fidelity,
                    );
                    let g = grouped.group_mut(id);
                    g.latency_ns = pulse.latency_ns;
                    g.fidelity = pulse.fidelity;
                }
                Err(e) if grouped.group(id).instructions.len() > 1 => {
                    // Rung 2: roll the merge back to per-gate pulses. A
                    // caught panic gets its own degradation entry on top
                    // of the rollback — callers triaging a batch need to
                    // distinguish "would not converge" from "crashed".
                    if let PulseGenError::SourcePanic { message, .. } = &e {
                        degradations.push(Degradation::SourcePanic {
                            gates: grouped.group(id).instructions.len(),
                            message: message.clone(),
                        });
                    }
                    let g = grouped.group(id);
                    report.fallbacks += 1;
                    counter("generator.fallbacks", 1);
                    event!(
                        "search.merge_rollback",
                        group = id as u64,
                        gates = g.instructions.len() as u64,
                        qubits = g.qubits.len() as u64,
                        reason = e.to_string(),
                    );
                    degradations.push(Degradation::MergeRolledBack {
                        gates: g.instructions.len(),
                        qubits: g.qubits.len(),
                        reason: e.to_string(),
                    });
                    rollback = Some(id);
                    break;
                }
                Err(e) => {
                    if !limits.allow_estimator_fallback {
                        return Err(match e {
                            PulseGenError::SourcePanic { message, .. } => {
                                CompileError::SourcePanic {
                                    gates: insts.len(),
                                    message,
                                }
                            }
                            other => CompileError::PulseSource {
                                source: other,
                                gates: insts.len(),
                            },
                        });
                    }
                    // Rung 3: a singleton failed — keep the analytic
                    // estimate and record the concession.
                    if let PulseGenError::SourcePanic { message, .. } = &e {
                        degradations.push(Degradation::SourcePanic {
                            gates: insts.len(),
                            message: message.clone(),
                        });
                    }
                    report.estimator_fallbacks += 1;
                    counter("generator.fallbacks", 1);
                    degradations.push(Degradation::EstimatorFallback {
                        gates: insts.len(),
                        reason: e.to_string(),
                    });
                    let est = estimator.generate(&insts, device, opts.target_fidelity, None);
                    let g = grouped.group_mut(id);
                    g.latency_ns = est.latency_ns;
                    g.fidelity = est.fidelity;
                }
            }
        }
        match rollback {
            None => break 'attach,
            Some(id) => {
                *grouped = rebuild_with_group_split(grouped, id);
                // Re-seed the markers: every group re-attaches on the
                // next sweep (cached shapes are free table hits).
                for gid in grouped.group_ids() {
                    let insts = grouped.group(gid).instructions.clone();
                    let est = estimator
                        .generate(&insts, device, opts.target_fidelity, None)
                        .latency_ns;
                    let g = grouped.group_mut(gid);
                    g.latency_ns = est;
                    g.fidelity = 0.0;
                }
            }
        }
    }

    Ok(GenerationOutcome {
        report,
        degradations,
        partial,
        kernel_ns,
        kernel_calls,
    })
}

/// Batch-generates every pulse the coming attach sweep will need: one
/// deduped [`PulseJob`] per pending group shape (fidelity-0 marker, no
/// local table entry), priority = the group's predicted latency so the
/// biggest pulses start first. Outcomes are folded into the table with
/// exact sequential stats parity ([`PulseTable::absorb_batch`]);
/// failures and budget skips are left for the sequential ladder, whose
/// semantics are unchanged. A no-op when the table has no shared layer.
///
/// The batch's worker-side kernel-probe attribution is folded into the
/// `kernel_ns`/`kernel_calls` accumulators so the compile result can
/// report it (observational only; never touches the pulses).
#[allow(clippy::too_many_arguments)]
fn prefetch_pending_pulses(
    grouped: &GroupedCircuit,
    device: &Device,
    table: &mut PulseTable,
    opts: &PaqocOptions,
    limits: &GenerationLimits,
    ctx: &BatchContext,
    kernel_ns: &mut BTreeMap<String, u64>,
    kernel_calls: &mut BTreeMap<String, u64>,
) {
    let Some(shared) = table.shared().cloned() else {
        return;
    };
    let mut seen: HashSet<String> = HashSet::new();
    let mut jobs: Vec<PulseJob> = Vec::new();
    for id in grouped.group_ids() {
        let g = grouped.group(id);
        if g.fidelity != 0.0 {
            continue;
        }
        let key = table.key_for(device, &g.instructions);
        if table.has_entry(&key) || !seen.insert(key.clone()) {
            continue;
        }
        jobs.push(PulseJob {
            key,
            group: g.instructions.clone(),
            priority: g.latency_ns,
            target_fidelity: opts.target_fidelity,
        });
    }
    if jobs.is_empty() {
        return;
    }
    let exec_opts = ExecOptions {
        threads: ctx.threads,
        deadline: limits.deadline,
        cost_budget_units: limits.cost_budget_units,
        cost_spent_units: table.stats().cost_units,
        base_seed: ctx.base_seed,
        stall_budget: None,
    };
    paqoc_telemetry::gauge!("core.sweep_pending_pulses", jobs.len() as f64);
    let report = run_batch(&jobs, device, ctx.factory.as_ref(), &shared, &exec_opts);
    paqoc_telemetry::gauge!("core.sweep_pending_pulses", 0.0);
    for (name, ns) in &report.kernel_ns {
        *kernel_ns.entry(name.clone()).or_insert(0) += ns;
    }
    for (name, calls) in &report.kernel_calls {
        *kernel_calls.entry(name.clone()).or_insert(0) += calls;
    }
    table.absorb_batch(&jobs, &report);
}

/// Rebuilds the grouped circuit with group `split_id` dissolved into
/// singletons and every other multi-gate group preserved (instructions
/// are reassembled in original circuit order from the groups' stored
/// indices; the live groups always partition the full circuit).
fn rebuild_with_group_split(grouped: &GroupedCircuit, split_id: usize) -> GroupedCircuit {
    let mut indexed: Vec<(usize, Instruction)> = Vec::new();
    let mut partition: Vec<(Vec<usize>, GroupKind)> = Vec::new();
    for id in grouped.group_ids() {
        let g = grouped.group(id);
        for (&i, inst) in g.indices.iter().zip(&g.instructions) {
            indexed.push((i, inst.clone()));
        }
        if id != split_id && g.instructions.len() > 1 {
            partition.push((g.indices.clone(), g.kind));
        }
    }
    indexed.sort_by_key(|&(i, _)| i);
    let instructions: Vec<Instruction> = indexed.into_iter().map(|(_, inst)| inst).collect();
    GroupedCircuit::new(&instructions, grouped.num_qubits(), &partition)
}

/// Observation-1 preprocessing (the paper's Fig. 8 step): coalesce
/// adjacent groups confined to a shared ≤2-qubit set — maximal
/// same-qubit runs like `rz·cx·rz·cx·rz` become single customized gates
/// before the criticality search starts. Merges use *free* estimator
/// latencies (no pulse generation — the whole point of Obs. 1) and are
/// only committed when the estimated circuit span does not grow. Merged
/// groups are marked with `fidelity = 0` so the caller can attach real
/// pulses afterwards. Runs to fixpoint.
fn preprocess_same_qubit_runs(
    grouped: &mut GroupedCircuit,
    device: &Device,
    estimator: &mut AnalyticModel,
    opts: &PaqocOptions,
) -> usize {
    let mut merges = 0usize;
    let cap = opts.max_qubits.min(2);
    let mut est_cache: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    loop {
        let mut merged_this_round = false;
        let span = grouped.makespan_ns();
        let before = grouped.cp_before();
        let after = grouped.cp_after();
        'scan: for a in grouped.group_ids() {
            for &b in &grouped.succs(a).clone() {
                let qa = &grouped.group(a).qubits;
                let qb = &grouped.group(b).qubits;
                let union = qa.union(qb).count();
                if union > cap || !grouped.contractible(a, b) {
                    continue;
                }
                let est = *est_cache.entry((a, b)).or_insert_with(|| {
                    let insts: Vec<_> = grouped
                        .group(a)
                        .instructions
                        .iter()
                        .chain(grouped.group(b).instructions.iter())
                        .cloned()
                        .collect();
                    estimator
                        .generate(&insts, device, opts.target_fidelity, None)
                        .latency_ns
                });
                // Cheap span check: the merged node's heaviest path must
                // not exceed the current span (the rest of the DAG can
                // only have gotten lighter).
                let new_before = grouped
                    .preds(a)
                    .iter()
                    .chain(grouped.preds(b).iter())
                    .filter(|&&p| p != a && p != b)
                    .map(|&p| before[p] + grouped.group(p).latency_ns)
                    .fold(0.0f64, f64::max);
                let new_after = grouped
                    .succs(a)
                    .iter()
                    .chain(grouped.succs(b).iter())
                    .filter(|&&s| s != a && s != b)
                    .map(|&s| grouped.group(s).latency_ns + after[s])
                    .fold(0.0f64, f64::max);
                if new_before + est + new_after <= span + opts.tolerance_ns {
                    let m = grouped.merge(a, b);
                    grouped.group_mut(m).latency_ns = est;
                    grouped.group_mut(m).fidelity = 0.0; // marker: estimate only
                    merges += 1;
                    merged_this_round = true;
                    break 'scan; // ids changed; rescan
                }
            }
        }
        if !merged_this_round {
            return merges;
        }
    }
}

/// Ensures every live group has its pulse latency and fidelity set.
/// Used by the no-merging baselines in tests and benches.
#[cfg(test)]
fn refresh_latencies(
    grouped: &mut GroupedCircuit,
    device: &Device,
    source: &mut dyn PulseSource,
    table: &mut PulseTable,
    opts: &PaqocOptions,
) {
    for id in grouped.group_ids() {
        if grouped.group(id).latency_ns == 0.0 {
            let insts = grouped.group(id).instructions.clone();
            let pulse = table.pulse_for(&insts, device, source, opts.target_fidelity);
            let g = grouped.group_mut(id);
            g.latency_ns = pulse.latency_ns;
            g.fidelity = pulse.fidelity;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupKind;
    use paqoc_circuit::Circuit;
    use paqoc_device::AnalyticModel;

    fn run(c: &Circuit, opts: &PaqocOptions) -> (GroupedCircuit, GeneratorReport, PulseTable) {
        let device = Device::grid5x5();
        let mut grouped = GroupedCircuit::new(c.instructions(), c.num_qubits(), &[]);
        let mut source = AnalyticModel::new();
        let mut table = PulseTable::new();
        let report =
            generate_customized_gates(&mut grouped, &device, &mut source, &mut table, opts);
        (grouped, report, table)
    }

    #[test]
    fn merges_a_linear_same_pair_run() {
        // h(0); cx(0,1); rz(1): all nest into ≤2 qubits and chain.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(1, 0.7);
        let (grouped, report, _) = run(&c, &PaqocOptions::default());
        assert_eq!(grouped.len(), 1, "{report:?}");
        assert!(report.preprocess_merges >= 2, "{report:?}");
        let only = grouped.group_ids()[0];
        assert_eq!(grouped.group(only).kind, GroupKind::Customized);
        assert!(grouped.group(only).latency_ns > 0.0);
    }

    #[test]
    fn latency_never_increases() {
        let mut c = Circuit::new(5);
        for q in 0..4 {
            c.h(q);
            c.cx(q, q + 1);
            c.rz(q + 1, 0.3 * (q as f64 + 1.0));
        }
        // Baseline: no merging at all.
        let device = Device::grid5x5();
        let mut baseline = GroupedCircuit::new(c.instructions(), 5, &[]);
        let mut src = AnalyticModel::new();
        let mut tbl = PulseTable::new();
        refresh_latencies(
            &mut baseline,
            &device,
            &mut src,
            &mut tbl,
            &PaqocOptions::default(),
        );
        let unmerged_span = baseline.makespan_ns();

        let (grouped, _, _) = run(&c, &PaqocOptions::default());
        assert!(
            grouped.makespan_ns() <= unmerged_span + 1e-9,
            "merged {} vs unmerged {}",
            grouped.makespan_ns(),
            unmerged_span
        );
        assert!(
            grouped.makespan_ns() < unmerged_span * 0.9,
            "should clearly improve"
        );
    }

    #[test]
    fn respects_max_qubits() {
        let mut c = Circuit::new(6);
        for q in 0..5 {
            c.cx(q, q + 1);
        }
        let opts = PaqocOptions {
            max_qubits: 3,
            ..PaqocOptions::default()
        };
        let (grouped, _, _) = run(&c, &opts);
        for id in grouped.group_ids() {
            assert!(grouped.group(id).qubits.len() <= 3);
        }
    }

    #[test]
    fn without_criticality_pruning_still_monotonic() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(2, 3).rz(3, 0.4).cx(1, 2);
        let opts = PaqocOptions {
            criticality_pruning: false,
            ..PaqocOptions::default()
        };
        let (grouped, report, _) = run(&c, &opts);
        assert!(report.criticality_merges + report.preprocess_merges > 0);
        assert!(grouped.makespan_ns() > 0.0);
    }

    #[test]
    fn pruning_reduces_ranked_work_not_quality_much() {
        // The ablation claim: same-ish latency, fewer pulse generations.
        let mut c = Circuit::new(5);
        for q in 0..4 {
            c.h(q);
            c.cx(q, q + 1);
        }
        for q in (0..4).rev() {
            c.cx(q, q + 1);
        }
        let pruned = run(
            &c,
            &PaqocOptions {
                criticality_pruning: true,
                ..PaqocOptions::default()
            },
        );
        let full = run(
            &c,
            &PaqocOptions {
                criticality_pruning: false,
                ..PaqocOptions::default()
            },
        );
        let (g1, _, t1) = pruned;
        let (g2, _, t2) = full;
        // Pruned search generates no more pulses than the full search.
        assert!(
            t1.stats().pulses_generated <= t2.stats().pulses_generated,
            "{} vs {}",
            t1.stats().pulses_generated,
            t2.stats().pulses_generated
        );
        // And lands within 25% of the exhaustive latency.
        assert!(g1.makespan_ns() <= g2.makespan_ns() * 1.25);
    }

    #[test]
    fn top_k_commits_multiple_disjoint_merges_per_iteration() {
        // Pairs chosen to be grid-adjacent on the 5×5 device (pair
        // (4,5) would straddle a row boundary and distort criticality).
        let mut c = Circuit::new(9);
        for q in [0usize, 2, 5, 7] {
            c.h(q);
            c.cx(q, q + 1);
        }
        let opts = PaqocOptions {
            preprocess: false,
            top_k: 4,
            ..PaqocOptions::default()
        };
        let (grouped, report, _) = run(&c, &opts);
        assert!(report.criticality_merges >= 2, "{report:?}");
        assert!(grouped.len() <= 6);
    }

    #[test]
    fn single_gate_circuit_is_a_fixpoint() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let (grouped, report, _) = run(&c, &PaqocOptions::default());
        assert_eq!(grouped.len(), 1);
        assert_eq!(report.criticality_merges, 0);
        assert_eq!(report.preprocess_merges, 0);
    }

    #[test]
    fn esp_reflects_group_count() {
        // Fewer groups after merging → higher ESP at equal per-pulse
        // fidelity budget.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(1, 0.3).cx(0, 1).h(1);
        let merged = run(&c, &PaqocOptions::default());
        let unmerged = {
            let device = Device::grid5x5();
            let mut g = GroupedCircuit::new(c.instructions(), 2, &[]);
            let mut src = AnalyticModel::new();
            let mut tbl = PulseTable::new();
            refresh_latencies(
                &mut g,
                &device,
                &mut src,
                &mut tbl,
                &PaqocOptions::default(),
            );
            g
        };
        assert!(merged.0.esp() > unmerged.esp());
    }
}
