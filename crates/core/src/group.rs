//! The grouped circuit: a mutable DAG of customized-gate groups.
//!
//! PAQOC's search operates on *groups* of consecutive basis gates. The
//! structure starts with one group per instruction (plus pre-formed APA
//! groups) and contracts pairs as the criticality-aware generator merges
//! them. All of the paper's critical-path quantities (`CP(X)`, slack,
//! critical membership) are computed over this DAG with per-group pulse
//! latencies as node weights.

use paqoc_circuit::Instruction;
use std::collections::BTreeSet;

/// How a group came to exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupKind {
    /// A single original basis gate.
    Single,
    /// An occurrence of an APA-basis gate (pattern index into the cover).
    Apa(usize),
    /// A customized gate built by the criticality-aware generator.
    Customized,
}

/// One customized-gate group.
#[derive(Clone, Debug)]
pub struct Group {
    /// Instructions in original circuit order.
    pub instructions: Vec<Instruction>,
    /// Original circuit indices of `instructions`, aligned entry by
    /// entry. Kept so a failed group can be rolled back: the generator
    /// rebuilds the grouped circuit from these indices with the failed
    /// merge split into singletons.
    pub indices: Vec<usize>,
    /// Union of qubits touched.
    pub qubits: BTreeSet<usize>,
    /// Pulse latency in nanoseconds (updated as pulses are generated).
    pub latency_ns: f64,
    /// Fidelity of the group's pulse.
    pub fidelity: f64,
    /// Provenance.
    pub kind: GroupKind,
}

/// A mutable DAG of groups supporting contraction.
#[derive(Clone, Debug)]
pub struct GroupedCircuit {
    groups: Vec<Option<Group>>,
    preds: Vec<BTreeSet<usize>>,
    succs: Vec<BTreeSet<usize>>,
    num_qubits: usize,
}

impl GroupedCircuit {
    /// Builds the grouped circuit from instructions and a partition.
    ///
    /// `partition` lists disjoint instruction-index sets, each becoming
    /// one group (with the given kind); instructions not covered become
    /// singleton groups. Sets must be *convex* in the dependence DAG
    /// (guaranteed by the miner) — edges are derived from per-qubit
    /// last-use chains over the partition.
    ///
    /// # Panics
    ///
    /// Panics if partition sets overlap or index out of range.
    pub fn new(
        instructions: &[Instruction],
        num_qubits: usize,
        partition: &[(Vec<usize>, GroupKind)],
    ) -> Self {
        let n = instructions.len();
        let mut owner: Vec<Option<usize>> = vec![None; n];
        let mut groups: Vec<Option<Group>> = Vec::new();
        for (set, kind) in partition {
            let gid = groups.len();
            let mut insts = Vec::new();
            let mut qubits = BTreeSet::new();
            let mut sorted = set.clone();
            sorted.sort_unstable();
            for &i in &sorted {
                assert!(i < n, "instruction index {i} out of range");
                assert!(owner[i].is_none(), "instruction {i} in two groups");
                owner[i] = Some(gid);
                insts.push(instructions[i].clone());
                qubits.extend(instructions[i].qubits().iter().copied());
            }
            groups.push(Some(Group {
                instructions: insts,
                indices: sorted,
                qubits,
                latency_ns: 0.0,
                fidelity: 1.0,
                kind: *kind,
            }));
        }
        for (i, inst) in instructions.iter().enumerate() {
            if owner[i].is_none() {
                let gid = groups.len();
                owner[i] = Some(gid);
                groups.push(Some(Group {
                    instructions: vec![inst.clone()],
                    indices: vec![i],
                    qubits: inst.qubits().iter().copied().collect(),
                    latency_ns: 0.0,
                    fidelity: 1.0,
                    kind: GroupKind::Single,
                }));
            }
        }

        let g = groups.len();
        let mut preds = vec![BTreeSet::new(); g];
        let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); g];
        let mut last_use: Vec<Option<usize>> = vec![None; num_qubits];
        for (i, inst) in instructions.iter().enumerate() {
            let gid = owner[i].expect("assigned above");
            for &q in inst.qubits() {
                if let Some(p) = last_use[q] {
                    if p != gid {
                        succs[p].insert(gid);
                        preds[gid].insert(p);
                    }
                }
                last_use[q] = Some(gid);
            }
        }
        GroupedCircuit {
            groups,
            preds,
            succs,
            num_qubits,
        }
    }

    /// Number of qubits of the underlying circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Live group ids in ascending order.
    pub fn group_ids(&self) -> Vec<usize> {
        (0..self.groups.len())
            .filter(|&i| self.groups[i].is_some())
            .collect()
    }

    /// Number of live groups.
    pub fn len(&self) -> usize {
        self.groups.iter().filter(|g| g.is_some()).count()
    }

    /// `true` when no live groups remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Immutable access to a group, or `None` if `id` is dead or out of
    /// range.
    pub fn try_group(&self, id: usize) -> Option<&Group> {
        self.groups.get(id).and_then(Option::as_ref)
    }

    /// Mutable access to a group, or `None` if `id` is dead or out of
    /// range.
    pub fn try_group_mut(&mut self, id: usize) -> Option<&mut Group> {
        self.groups.get_mut(id).and_then(Option::as_mut)
    }

    /// Immutable access to a live group.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead or out of range. Callers holding ids from
    /// [`GroupedCircuit::group_ids`] satisfy the invariant by
    /// construction; use [`GroupedCircuit::try_group`] otherwise.
    pub fn group(&self, id: usize) -> &Group {
        self.try_group(id).expect("group is live")
    }

    /// Mutable access to a live group.
    ///
    /// # Panics
    ///
    /// Panics if `id` is dead or out of range. Callers holding ids from
    /// [`GroupedCircuit::group_ids`] satisfy the invariant by
    /// construction; use [`GroupedCircuit::try_group_mut`] otherwise.
    pub fn group_mut(&mut self, id: usize) -> &mut Group {
        self.try_group_mut(id).expect("group is live")
    }

    /// Predecessors of a live group.
    pub fn preds(&self, id: usize) -> &BTreeSet<usize> {
        &self.preds[id]
    }

    /// Successors of a live group.
    pub fn succs(&self, id: usize) -> &BTreeSet<usize> {
        &self.succs[id]
    }

    /// `true` when a path `from ⇝ to` exists over live groups.
    pub fn has_path(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = vec![false; self.groups.len()];
        seen[from] = true;
        while let Some(v) = stack.pop() {
            for &s in &self.succs[v] {
                if s == to {
                    return true;
                }
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// `true` when contracting `a` and `b` keeps the DAG acyclic:
    /// no path between them other than a possible direct edge.
    pub fn contractible(&self, a: usize, b: usize) -> bool {
        if a == b || self.groups[a].is_none() || self.groups[b].is_none() {
            return false;
        }
        !self.has_intermediate_path(a, b) && !self.has_intermediate_path(b, a)
    }

    fn has_intermediate_path(&self, from: usize, to: usize) -> bool {
        let mut seen = vec![false; self.groups.len()];
        let mut stack: Vec<usize> = self.succs[from]
            .iter()
            .copied()
            .filter(|&s| s != to)
            .collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(v) = stack.pop() {
            for &s in &self.succs[v] {
                if s == to {
                    return true;
                }
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Contracts groups `a` and `b` into a new group, returning its id.
    ///
    /// The new group's instructions keep original circuit order (both
    /// inputs hold instructions from a single source circuit, so sorting
    /// is unnecessary — `a`'s and `b`'s runs are interleaved by taking
    /// the earlier-starting run first; since both sets are convex and
    /// contractible, simple concatenation in DAG order is valid).
    /// Latency and fidelity are reset to zero pending pulse generation.
    ///
    /// # Panics
    ///
    /// Panics if the pair is not contractible.
    pub fn merge(&mut self, a: usize, b: usize) -> usize {
        assert!(self.contractible(a, b), "({a},{b}) is not contractible");
        // Counts every contraction including trial merges on cloned
        // DAGs — the search's total structural work, which the
        // committed-merge counters alone understate.
        paqoc_telemetry::counter("group.contractions", 1);
        // Order: if b ⇝ a, b's instructions come first.
        let (first, second) = if self.has_path(b, a) { (b, a) } else { (a, b) };
        let ga = self.groups[first].take().expect("live");
        let gb = self.groups[second].take().expect("live");

        let mut instructions = ga.instructions;
        instructions.extend(gb.instructions);
        let mut indices = ga.indices;
        indices.extend(gb.indices);
        let mut qubits = ga.qubits;
        qubits.extend(gb.qubits.iter().copied());

        let new_id = self.groups.len();
        self.groups.push(Some(Group {
            instructions,
            indices,
            qubits,
            latency_ns: 0.0,
            fidelity: 1.0,
            kind: GroupKind::Customized,
        }));

        let mut new_preds = BTreeSet::new();
        let mut new_succs = BTreeSet::new();
        for &old in &[first, second] {
            for &p in &self.preds[old].clone() {
                if p != first && p != second {
                    self.succs[p].remove(&old);
                    self.succs[p].insert(new_id);
                    new_preds.insert(p);
                }
            }
            for &s in &self.succs[old].clone() {
                if s != first && s != second {
                    self.preds[s].remove(&old);
                    self.preds[s].insert(new_id);
                    new_succs.insert(s);
                }
            }
            self.preds[old].clear();
            self.succs[old].clear();
        }
        self.preds.push(new_preds);
        self.succs.push(new_succs);
        new_id
    }

    /// A topological order of the live groups.
    pub fn topological_order(&self) -> Vec<usize> {
        let ids = self.group_ids();
        let mut indeg: Vec<usize> = vec![0; self.groups.len()];
        for &id in &ids {
            indeg[id] = self.preds[id].len();
        }
        let mut queue: Vec<usize> = ids.iter().copied().filter(|&i| indeg[i] == 0).collect();
        queue.sort_unstable();
        let mut order = Vec::with_capacity(ids.len());
        let mut qi = 0;
        while qi < queue.len() {
            let v = queue[qi];
            qi += 1;
            order.push(v);
            for &s in &self.succs[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        assert_eq!(order.len(), ids.len(), "group DAG must stay acyclic");
        order
    }

    /// Longest path *after* each group (paper's `CP(X)`, excluding the
    /// group's own latency), keyed by group id; dead ids hold 0.
    pub fn cp_after(&self) -> Vec<f64> {
        let order = self.topological_order();
        let mut cp = vec![0.0f64; self.groups.len()];
        for &v in order.iter().rev() {
            let mut best = 0.0f64;
            for &s in &self.succs[v] {
                best = best.max(self.group(s).latency_ns + cp[s]);
            }
            cp[v] = best;
        }
        cp
    }

    /// Longest path *before* each group starts.
    pub fn cp_before(&self) -> Vec<f64> {
        let order = self.topological_order();
        let mut cp = vec![0.0f64; self.groups.len()];
        for &v in &order {
            let mut best = 0.0f64;
            for &p in &self.preds[v] {
                best = best.max(self.group(p).latency_ns + cp[p]);
            }
            cp[v] = best;
        }
        cp
    }

    /// Whole-circuit latency in ns: the heaviest path through the DAG.
    pub fn makespan_ns(&self) -> f64 {
        let after = self.cp_after();
        self.group_ids()
            .into_iter()
            .map(|id| self.group(id).latency_ns + after[id])
            .fold(0.0, f64::max)
    }

    /// Group ids on at least one critical path (within `tol` ns).
    pub fn critical_groups(&self, tol: f64) -> Vec<usize> {
        let before = self.cp_before();
        let after = self.cp_after();
        let span = self.makespan_ns();
        self.group_ids()
            .into_iter()
            .filter(|&id| before[id] + self.group(id).latency_ns + after[id] >= span - tol)
            .collect()
    }

    /// ESP (paper Eq. 2): the product of per-group pulse success rates.
    pub fn esp(&self) -> f64 {
        self.group_ids()
            .into_iter()
            .map(|id| self.group(id).fidelity)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_circuit::Circuit;

    /// h(0); cx(0,1); x(2); cx(1,2)
    fn sample() -> GroupedCircuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).x(2).cx(1, 2);
        GroupedCircuit::new(c.instructions(), 3, &[])
    }

    #[test]
    fn singleton_groups_mirror_the_circuit_dag() {
        let g = sample();
        assert_eq!(g.len(), 4);
        assert!(g.succs(0).contains(&1));
        assert!(g.succs(1).contains(&3));
        assert!(g.succs(2).contains(&3));
        assert!(g.preds(3).contains(&1) && g.preds(3).contains(&2));
    }

    #[test]
    fn partition_builds_apa_groups() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0).cx(0, 1).h(0);
        let g = GroupedCircuit::new(c.instructions(), 2, &[(vec![0, 1, 2], GroupKind::Apa(0))]);
        assert_eq!(g.len(), 2);
        let apa = g.group(0);
        assert_eq!(apa.instructions.len(), 3);
        assert_eq!(apa.kind, GroupKind::Apa(0));
        // h depends on the APA group via qubit 0.
        assert!(g.succs(0).contains(&1));
    }

    #[test]
    fn merge_rewires_edges() {
        let mut g = sample();
        // Merge h(0) and cx(0,1): direct edge, contractible.
        assert!(g.contractible(0, 1));
        let m = g.merge(0, 1);
        assert_eq!(g.len(), 3);
        assert!(g.succs(m).contains(&3));
        assert!(g.preds(3).contains(&m) && g.preds(3).contains(&2));
        assert_eq!(g.group(m).instructions.len(), 2);
        assert_eq!(g.group(m).kind, GroupKind::Customized);
        assert_eq!(g.group(m).qubits.len(), 2);
    }

    #[test]
    fn merge_keeps_instruction_order() {
        let mut g = sample();
        let m = g.merge(1, 0); // arguments reversed: h still comes first
        let labels: Vec<String> = g.group(m).instructions.iter().map(|i| i.label()).collect();
        assert_eq!(labels, vec!["h", "cx"]);
    }

    #[test]
    fn non_contractible_pairs_are_detected() {
        let g = sample();
        // h(0) ⇝ cx(1,2) via cx(0,1): intermediate path.
        assert!(!g.contractible(0, 3));
        // independent h(0) and x(2) are contractible.
        assert!(g.contractible(0, 2));
    }

    #[test]
    fn makespan_and_critical_groups() {
        let mut g = sample();
        for (id, w) in [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)] {
            g.group_mut(id).latency_ns = w;
        }
        assert!((g.makespan_ns() - 7.0).abs() < 1e-12);
        let crit = g.critical_groups(1e-9);
        assert_eq!(crit, vec![0, 1, 2, 3]);
        g.group_mut(2).latency_ns = 0.5;
        assert_eq!(g.critical_groups(1e-9), vec![0, 1, 3]);
    }

    #[test]
    fn merging_shorter_groups_reduces_makespan() {
        let mut g = sample();
        for (id, w) in [(0, 1.0), (1, 2.0), (2, 0.5), (3, 4.0)] {
            g.group_mut(id).latency_ns = w;
        }
        let before = g.makespan_ns();
        let m = g.merge(0, 1);
        g.group_mut(m).latency_ns = 2.2; // merged pulse shorter than 3.0
        assert!(g.makespan_ns() < before);
    }

    #[test]
    fn esp_multiplies_group_fidelities() {
        let mut g = sample();
        for id in g.group_ids() {
            g.group_mut(id).fidelity = 0.99;
        }
        assert!((g.esp() - 0.99f64.powi(4)).abs() < 1e-12);
    }

    #[test]
    fn merging_independent_groups_creates_one_node() {
        let mut g = sample();
        let m = g.merge(0, 2); // h(0) and x(2): independent
        assert_eq!(g.group(m).qubits.len(), 2);
        // New group inherits both successor edges.
        assert!(g.succs(m).contains(&1));
        assert!(g.succs(m).contains(&3));
    }

    #[test]
    #[should_panic(expected = "not contractible")]
    fn merging_blocked_pair_panics() {
        let mut g = sample();
        g.merge(0, 3);
    }
}
