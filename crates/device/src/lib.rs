//! # paqoc-device
//!
//! The simulated hardware model of the PAQOC reproduction: coupling
//! [`Topology`] presets (including the paper's 5×5 grid), the transmon
//! XY-interaction control Hamiltonians with the paper's field limits
//! ([`HardwareSpec`], [`transmon_xy_controls`]), and the analytic
//! time-optimal latency surrogate ([`AnalyticModel`]) behind the
//! [`PulseSource`] abstraction shared with the real GRAPE optimizer.
//!
//! ## Example
//!
//! ```
//! use paqoc_device::{AnalyticModel, Device, PulseSource};
//! use paqoc_circuit::{GateKind, Instruction};
//!
//! let dev = Device::grid5x5();
//! let mut model = AnalyticModel::new();
//! let cx = Instruction::new(GateKind::Cx, vec![0, 1], vec![]);
//! let pulse = model.generate(&[cx], &dev, 0.999, None);
//! assert!(pulse.latency_dt > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corruption;
mod faults;
pub mod fingerprint;
mod hamiltonian;
mod io_faults;
mod latency;
mod spec;
mod topology;
mod tuning;

pub use faults::{
    ChaosAction, ConnChaos, ConnChaosCounts, FaultConfig, FaultCounts, FaultySource,
    DRIBBLE_DELAY_CAP, STALL_CAP,
};
pub use fingerprint::{
    decode_fingerprint, encode_namespaced, is_namespaced, namespace_name, FingerprintKind,
    NAMESPACE_MAGIC, NS_HEAVY_HEX, NS_TUNABLE_COUPLER,
};
pub use hamiltonian::{transmon_xy_controls, ControlChannel, ControlSet, Device};
pub use io_faults::{IoFaultCounts, IoFaultInjector};
pub use latency::{validate_estimate, AnalyticModel, PulseEstimate, PulseGenError, PulseSource};
pub use spec::HardwareSpec;
pub use topology::Topology;
pub use tuning::{BackendTag, DeviceTuning, QubitCal};
