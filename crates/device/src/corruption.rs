//! Byte-level corruption injectors for durability testing.
//!
//! The persistent pulse store claims to survive torn tails, flipped
//! bits, stale fingerprints and mid-write crashes; these helpers let
//! tests *manufacture* each of those conditions against a real file.
//! They live in the device crate next to [`crate::FaultySource`] — the
//! fault-injection layer — rather than in the store crate, so the store
//! is tested through the same public byte surface any external
//! corruption would hit, and so `paqoc-store` (which depends on this
//! crate) needs no test-only reverse dependency.
//!
//! All helpers operate on raw bytes and know nothing about the store's
//! record format; tests aim them using the store's published layout
//! constants (`HEADER_LEN`, `record_len`).

use paqoc_math::Rng;
use std::io::Write;
use std::path::Path;

/// Flips one bit: bit `bit` (0–7) of the byte at `offset`.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be read or
/// rewritten; panics if `offset` is past the end of the file (that is a
/// test bug, not a runtime condition).
pub fn flip_bit(path: &Path, offset: u64, bit: u8) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    let i = offset as usize;
    assert!(
        i < bytes.len(),
        "flip_bit offset {i} past EOF {}",
        bytes.len()
    );
    bytes[i] ^= 1 << (bit & 7);
    std::fs::write(path, bytes)
}

/// Flips `count` bits at seeded-random positions anywhere after byte
/// `skip` (pass the header length to spare the header, or 0 to allow
/// hitting it too). Returns the `(offset, bit)` pairs flipped so a test
/// can report exactly what it injected.
///
/// # Errors
///
/// Returns the underlying I/O error; panics when the file has no bytes
/// after `skip` to corrupt.
pub fn flip_random_bits(
    path: &Path,
    count: usize,
    seed: u64,
    skip: u64,
) -> std::io::Result<Vec<(u64, u8)>> {
    let mut bytes = std::fs::read(path)?;
    let skip = skip as usize;
    assert!(
        bytes.len() > skip,
        "file has only {} bytes, nothing after skip={skip}",
        bytes.len()
    );
    let mut rng = Rng::seed_from_u64(seed);
    let mut flipped = Vec::with_capacity(count);
    for _ in 0..count {
        let offset = skip + (rng.next_u64() as usize) % (bytes.len() - skip);
        let bit = (rng.next_u64() % 8) as u8;
        bytes[offset] ^= 1 << bit;
        flipped.push((offset as u64, bit));
    }
    std::fs::write(path, bytes)?;
    Ok(flipped)
}

/// Truncates the last `tail_bytes` bytes off the file — a crash after a
/// partial append, as seen by the next reader.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be opened or
/// resized.
pub fn truncate_tail(path: &Path, tail_bytes: u64) -> std::io::Result<()> {
    let len = std::fs::metadata(path)?.len();
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(len.saturating_sub(tail_bytes))
}

/// Appends raw bytes — used to simulate a crash *mid-write*: append a
/// prefix of a valid record (its framing header but only part of its
/// payload) and the file looks exactly as it would after power loss
/// between two `write` calls.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be appended to.
pub fn append_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new().append(true).open(path)?;
    file.write_all(bytes)
}

/// Overwrites bytes in place at `offset` — used to plant a stale or
/// foreign device fingerprint in a header, or to rewrite a length
/// prefix with garbage.
///
/// # Errors
///
/// Returns the underlying I/O error; panics when the write would extend
/// past EOF (overwrite means overwrite, not grow).
pub fn overwrite_bytes(path: &Path, offset: u64, replacement: &[u8]) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    let start = offset as usize;
    assert!(
        start + replacement.len() <= bytes.len(),
        "overwrite [{start}, {}) past EOF {}",
        start + replacement.len(),
        bytes.len()
    );
    bytes[start..start + replacement.len()].copy_from_slice(replacement);
    std::fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("paqoc-corruption-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(name);
        std::fs::write(&path, b"0123456789abcdef").expect("seed file");
        path
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let path = tmp("flip.bin");
        flip_bit(&path, 3, 0).expect("flip");
        let bytes = std::fs::read(&path).expect("read");
        assert_eq!(bytes[3], b'3' ^ 1);
        assert_eq!(&bytes[..3], b"012");
        assert_eq!(&bytes[4..], b"456789abcdef");
    }

    #[test]
    fn flip_random_bits_is_seeded_and_spares_the_skip_region() {
        let a = tmp("rand_a.bin");
        let b = tmp("rand_b.bin");
        let fa = flip_random_bits(&a, 8, 42, 4).expect("flip a");
        let fb = flip_random_bits(&b, 8, 42, 4).expect("flip b");
        assert_eq!(fa, fb, "same seed, same flips");
        assert!(fa.iter().all(|&(off, _)| off >= 4));
        assert_eq!(
            std::fs::read(&a).expect("read"),
            std::fs::read(&b).expect("read")
        );
        assert_eq!(&std::fs::read(&a).expect("read")[..4], b"0123");
    }

    #[test]
    fn truncate_append_overwrite_do_what_they_say() {
        let path = tmp("edit.bin");
        truncate_tail(&path, 6).expect("truncate");
        assert_eq!(std::fs::read(&path).expect("read"), b"0123456789");
        append_bytes(&path, b"XY").expect("append");
        assert_eq!(std::fs::read(&path).expect("read"), b"0123456789XY");
        overwrite_bytes(&path, 1, b"..").expect("overwrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"0..3456789XY");
    }

    #[test]
    fn truncating_more_than_the_file_empties_it() {
        let path = tmp("over_truncate.bin");
        truncate_tail(&path, 1000).expect("truncate");
        assert!(std::fs::read(&path).expect("read").is_empty());
    }
}
