//! Deterministic, seeded fault injection for pulse sources.
//!
//! Production hardening needs reproducible chaos: [`FaultySource`] wraps
//! any [`PulseSource`] and injects the failure modes a real QOC backend
//! exhibits under load — convergence failures (the GRAPE cliff AccQOC
//! and EPOC both report), NaN/Inf estimates from numerically blown-up
//! optimizations, latency spikes, and slow calls — at configurable,
//! seeded rates. Every injection is drawn from an in-tree xoshiro256**
//! stream, so a failing run replays exactly from its seed.
//!
//! Injections are visible three ways: the returned estimates themselves,
//! the [`FaultCounts`] tally on the wrapper, and telemetry counters
//! (`faults.convergence`, `faults.nan`, `faults.latency_spike`,
//! `faults.slow_call`, `faults.panic`, `faults.stall`) in the
//! `paqoc-telemetry` report.

use crate::hamiltonian::Device;
use crate::latency::{PulseEstimate, PulseSource};
use paqoc_circuit::Instruction;
use paqoc_math::Rng;
use std::time::Duration;

/// Injection rates and magnitudes for a [`FaultySource`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed of the injection stream (replays are exact per seed).
    pub seed: u64,
    /// Probability that a generation reports convergence failure: a
    /// zero-fidelity estimate at the duration-search cap, exactly the
    /// shape a failed GRAPE minimum-duration search produces.
    pub convergence_failure_rate: f64,
    /// Probability that a generation returns a NaN fidelity or latency
    /// (a numerically diverged optimization).
    pub nan_rate: f64,
    /// Probability that a generation's latency is multiplied by
    /// [`FaultConfig::latency_spike_factor`].
    pub latency_spike_rate: f64,
    /// Latency multiplier applied on a spike.
    pub latency_spike_factor: f64,
    /// Probability that a generation blocks for
    /// [`FaultConfig::slow_call`] of wall time before answering.
    pub slow_call_rate: f64,
    /// Stall injected on a slow call.
    pub slow_call: Duration,
    /// Probability that a generation **panics** mid-call — the crash
    /// shape of a debug assertion or index bug deep in an optimizer.
    /// Callers survive it only through the pulse table's `catch_unwind`
    /// supervisor.
    pub panic_rate: f64,
    /// Deterministic stall injected on **every** generation (zero
    /// disables it), bounded at [`STALL_CAP`]. Unlike the probabilistic
    /// [`FaultConfig::slow_call_rate`], the stall is unconditional, so
    /// executor tests get a *predictable* slow worker to race against
    /// deadlines and fast peers.
    pub stall: Duration,
    /// Probability that a pulse-store `sync` (fsync) fails — consumed by
    /// [`crate::IoFaultInjector`], not by [`FaultySource`].
    pub io_sync_fail_rate: f64,
    /// Probability that a pulse-store compaction `rename` fails —
    /// consumed by [`crate::IoFaultInjector`].
    pub io_rename_fail_rate: f64,
    /// Probability that a pulse-store record append is torn (only a
    /// prefix of the record reaches disk) — consumed by
    /// [`crate::IoFaultInjector`].
    pub io_short_write_rate: f64,
    /// Probability that a network client disconnects **mid-frame**
    /// (sends a truncated prefix of a framed request, then closes) —
    /// consumed by [`ConnChaos`], not by [`FaultySource`].
    pub conn_disconnect_rate: f64,
    /// Probability that a network client turns slow-loris: the frame is
    /// dribbled out a few bytes at a time with pauses between chunks —
    /// consumed by [`ConnChaos`].
    pub conn_dribble_rate: f64,
    /// Probability that a network client sends a garbage frame (random
    /// bytes where a length-prefixed JSON request should be) — consumed
    /// by [`ConnChaos`].
    pub conn_garbage_rate: f64,
}

/// Hard ceiling on [`FaultConfig::stall`]: a misconfigured fault
/// injection must slow a test down, never hang it.
pub const STALL_CAP: Duration = Duration::from_millis(500);

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA17,
            convergence_failure_rate: 0.0,
            nan_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike_factor: 10.0,
            slow_call_rate: 0.0,
            slow_call: Duration::from_millis(5),
            panic_rate: 0.0,
            stall: Duration::ZERO,
            io_sync_fail_rate: 0.0,
            io_rename_fail_rate: 0.0,
            io_short_write_rate: 0.0,
            conn_disconnect_rate: 0.0,
            conn_dribble_rate: 0.0,
            conn_garbage_rate: 0.0,
        }
    }
}

impl FaultConfig {
    /// A convergence-failure storm at the given per-call rate.
    pub fn convergence_storm(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            convergence_failure_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// A NaN-fidelity/latency storm at the given per-call rate.
    pub fn nan_storm(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            nan_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// A panic storm at the given per-call rate.
    pub fn panic_storm(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            panic_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// An IO fault storm for the pulse-store path: failed syncs, failed
    /// renames and torn appends all at the given rate. Feed to
    /// [`crate::IoFaultInjector::from_config`].
    pub fn io_storm(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            io_sync_fail_rate: rate,
            io_rename_fail_rate: rate,
            io_short_write_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// A connection-chaos storm for network clients: mid-frame
    /// disconnects, slow-loris dribble and garbage frames all at the
    /// given rate. Feed to [`ConnChaos::new`].
    pub fn conn_chaos(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            conn_disconnect_rate: rate,
            conn_dribble_rate: rate,
            conn_garbage_rate: rate,
            ..FaultConfig::default()
        }
    }

    /// An unconditional per-call stall (bounded at [`STALL_CAP`]): every
    /// generation sleeps `stall` before answering. The deterministic
    /// slow-worker shape for executor deadline tests.
    pub fn stalling(stall: Duration) -> Self {
        FaultConfig {
            stall,
            ..FaultConfig::default()
        }
    }
}

/// Tally of the faults a [`FaultySource`] has injected so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Convergence failures injected.
    pub convergence_failures: u64,
    /// NaN estimates injected.
    pub nans: u64,
    /// Latency spikes injected.
    pub latency_spikes: u64,
    /// Slow calls injected.
    pub slow_calls: u64,
    /// Panics injected.
    pub panics: u64,
    /// Unconditional stalls injected ([`FaultConfig::stall`]).
    pub stalls: u64,
    /// Total generations that passed through untouched.
    pub clean_calls: u64,
}

impl FaultCounts {
    /// Total faults of any kind injected.
    pub fn total(&self) -> u64 {
        self.convergence_failures
            + self.nans
            + self.latency_spikes
            + self.slow_calls
            + self.panics
            + self.stalls
    }
}

/// A [`PulseSource`] wrapper that injects seeded faults (see the module
/// docs). Retries genuinely help against it: every call re-rolls the
/// injection stream, so a convergence failure on one attempt does not
/// imply failure on the next — mirroring GRAPE restarts from a fresh
/// random initialization.
#[derive(Debug)]
pub struct FaultySource<S> {
    inner: S,
    cfg: FaultConfig,
    rng: Rng,
    counts: FaultCounts,
}

impl<S: PulseSource> FaultySource<S> {
    /// Wraps `inner` with the given fault configuration.
    pub fn new(inner: S, cfg: FaultConfig) -> Self {
        FaultySource {
            inner,
            rng: Rng::seed_from_u64(cfg.seed),
            cfg,
            counts: FaultCounts::default(),
        }
    }

    /// The faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn roll(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.rng.random::<f64>() < rate
    }
}

impl<S: PulseSource> PulseSource for FaultySource<S> {
    fn generate(
        &mut self,
        group: &[Instruction],
        device: &Device,
        target_fidelity: f64,
        warm_start: Option<f64>,
    ) -> PulseEstimate {
        // Draw every fault decision up front so the stream position per
        // call is fixed regardless of which faults fire.
        let slow = self.roll(self.cfg.slow_call_rate);
        let nan = self.roll(self.cfg.nan_rate);
        let converge_fail = self.roll(self.cfg.convergence_failure_rate);
        let spike = self.roll(self.cfg.latency_spike_rate);
        let panic_now = self.roll(self.cfg.panic_rate);
        let nan_in_latency = self.rng.random::<f64>() < 0.5;

        if !self.cfg.stall.is_zero() {
            self.counts.stalls += 1;
            paqoc_telemetry::counter("faults.stall", 1);
            std::thread::sleep(self.cfg.stall.min(STALL_CAP));
        }
        if slow {
            self.counts.slow_calls += 1;
            paqoc_telemetry::counter("faults.slow_call", 1);
            std::thread::sleep(self.cfg.slow_call);
        }
        if panic_now {
            // Tally *before* unwinding so the injection is observable
            // even though this call never returns normally.
            self.counts.panics += 1;
            paqoc_telemetry::counter("faults.panic", 1);
            panic!("injected pulse-source panic");
        }

        let mut est = self
            .inner
            .generate(group, device, target_fidelity, warm_start);

        if nan {
            self.counts.nans += 1;
            paqoc_telemetry::counter("faults.nan", 1);
            if nan_in_latency {
                est.latency_ns = f64::NAN;
            } else {
                est.fidelity = f64::NAN;
            }
            return est;
        }
        if converge_fail {
            self.counts.convergence_failures += 1;
            paqoc_telemetry::counter("faults.convergence", 1);
            // The exact shape of a failed GRAPE duration search: the
            // step-cap latency with zero fidelity, full cost spent.
            est.latency_ns = 1024.0 * 0.5;
            est.latency_dt = device.spec().ns_to_dt(est.latency_ns);
            est.fidelity = 0.0;
            return est;
        }
        if spike {
            self.counts.latency_spikes += 1;
            paqoc_telemetry::counter("faults.latency_spike", 1);
            est.latency_ns *= self.cfg.latency_spike_factor;
            est.latency_dt = device.spec().ns_to_dt(est.latency_ns);
            return est;
        }
        self.counts.clean_calls += 1;
        est
    }

    fn typical_latency_ns(&self, num_qubits: usize, device: &Device) -> f64 {
        self.inner.typical_latency_ns(num_qubits, device)
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}

/// How [`ConnChaos`] says one framed network send should be mangled.
///
/// The planner only *decides*; the caller (a chaos test's client loop)
/// owns the socket and applies the action, so the planner stays free of
/// any network dependency and the decision stream replays exactly from
/// the seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Send the frame intact.
    Deliver,
    /// Send only the first `n` bytes of the frame, then close the
    /// connection mid-frame. `n` is strictly less than the frame
    /// length (and can be zero: connect-then-slam).
    Truncate(usize),
    /// Send `n` bytes of seeded garbage (from
    /// [`ConnChaos::garbage_bytes`]) instead of the frame, then close.
    Garbage(usize),
    /// Slow-loris: send the frame in `chunk`-byte pieces, pausing
    /// `delay` between pieces.
    Dribble {
        /// Bytes per piece (at least 1).
        chunk: usize,
        /// Pause between pieces, bounded so a chaos test cannot hang.
        delay: Duration,
    },
    /// Close the connection without sending anything.
    Disconnect,
}

/// Tally of the actions a [`ConnChaos`] planner has issued so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnChaosCounts {
    /// Frames delivered intact.
    pub delivered: u64,
    /// Frames truncated mid-send.
    pub truncated: u64,
    /// Garbage frames issued.
    pub garbage: u64,
    /// Slow-loris dribbles issued.
    pub dribbled: u64,
    /// Silent disconnects issued.
    pub disconnects: u64,
}

impl ConnChaosCounts {
    /// Total hostile (non-`Deliver`) actions issued.
    pub fn hostile(&self) -> u64 {
        self.truncated + self.garbage + self.dribbled + self.disconnects
    }
}

/// Ceiling on the per-chunk dribble delay [`ConnChaos`] plans, so a
/// slow-loris client slows a chaos test down but can never hang it.
pub const DRIBBLE_DELAY_CAP: Duration = Duration::from_millis(20);

/// Seeded planner for hostile network-client behaviour (the connection
/// sibling of [`FaultySource`] and [`crate::IoFaultInjector`]). Each
/// [`ConnChaos::next_action`] call decides how the *next* framed send
/// should be mangled — delivered, truncated mid-frame, replaced with
/// garbage, dribbled slow-loris style, or dropped entirely — drawing
/// rates from the `conn_*` fields of a [`FaultConfig`]. All decisions
/// for one call are drawn up front, so the stream position per frame is
/// fixed regardless of which chaos fires, and a failing run replays
/// exactly from its seed.
#[derive(Debug)]
pub struct ConnChaos {
    cfg: FaultConfig,
    rng: Rng,
    counts: ConnChaosCounts,
}

impl ConnChaos {
    /// Creates a planner drawing from `cfg`'s `conn_*` rates and seed.
    pub fn new(cfg: FaultConfig) -> Self {
        ConnChaos {
            rng: Rng::seed_from_u64(cfg.seed ^ 0xC0FFEE),
            cfg,
            counts: ConnChaosCounts::default(),
        }
    }

    /// The actions issued so far.
    pub fn counts(&self) -> ConnChaosCounts {
        self.counts
    }

    /// Decides how a frame of `frame_len` bytes should be sent.
    /// Precedence when several rates fire on one draw set: disconnect >
    /// garbage > truncate > dribble — the nastier action wins.
    pub fn next_action(&mut self, frame_len: usize) -> ChaosAction {
        // Fixed draw order, all up front (see FaultySource::generate).
        let disconnect = self.roll(self.cfg.conn_disconnect_rate);
        let garbage = self.roll(self.cfg.conn_garbage_rate);
        let truncate = self.roll(self.cfg.conn_disconnect_rate);
        let dribble = self.roll(self.cfg.conn_dribble_rate);
        let frac = self.rng.random::<f64>();
        let len_draw = self.rng.random_range(1usize..=64);

        if disconnect {
            self.counts.disconnects += 1;
            return ChaosAction::Disconnect;
        }
        if garbage {
            self.counts.garbage += 1;
            return ChaosAction::Garbage(len_draw);
        }
        if truncate {
            self.counts.truncated += 1;
            let cut = ((frame_len as f64) * frac) as usize;
            return ChaosAction::Truncate(cut.min(frame_len.saturating_sub(1)));
        }
        if dribble {
            self.counts.dribbled += 1;
            let delay_ms = 1 + (frac * 4.0) as u64;
            return ChaosAction::Dribble {
                chunk: 1 + len_draw % 3,
                delay: Duration::from_millis(delay_ms).min(DRIBBLE_DELAY_CAP),
            };
        }
        self.counts.delivered += 1;
        ChaosAction::Deliver
    }

    /// `len` bytes of seeded garbage for a [`ChaosAction::Garbage`]
    /// frame. Deliberately includes high bytes and embedded zeros — the
    /// shapes most likely to confuse a sloppy frame parser.
    pub fn garbage_bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len)
            .map(|_| self.rng.random_range(0u32..=255) as u8)
            .collect()
    }

    fn roll(&mut self, rate: f64) -> bool {
        let draw = self.rng.random::<f64>();
        rate > 0.0 && draw < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{AnalyticModel, PulseGenError};
    use paqoc_circuit::GateKind;

    fn cx() -> [Instruction; 1] {
        [Instruction::new(GateKind::Cx, vec![0, 1], vec![])]
    }

    fn storm(rate: f64, seed: u64) -> FaultySource<AnalyticModel> {
        FaultySource::new(
            AnalyticModel::new(),
            FaultConfig::convergence_storm(seed, rate),
        )
    }

    #[test]
    fn zero_rates_are_transparent() {
        let dev = Device::grid5x5();
        let mut clean = AnalyticModel::new();
        let mut faulty = FaultySource::new(AnalyticModel::new(), FaultConfig::default());
        assert_eq!(
            clean.generate(&cx(), &dev, 0.999, None),
            faulty.generate(&cx(), &dev, 0.999, None)
        );
        assert_eq!(faulty.counts().total(), 0);
        assert_eq!(faulty.counts().clean_calls, 1);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let dev = Device::grid5x5();
        let run = |seed: u64| {
            let mut s = storm(0.4, seed);
            let ests: Vec<PulseEstimate> = (0..32)
                .map(|_| s.generate(&cx(), &dev, 0.999, None))
                .collect();
            (ests, s.counts())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn convergence_failures_fire_at_roughly_the_configured_rate() {
        let dev = Device::grid5x5();
        let mut s = storm(0.3, 11);
        for _ in 0..500 {
            s.generate(&cx(), &dev, 0.999, None);
        }
        let rate = s.counts().convergence_failures as f64 / 500.0;
        assert!((0.2..0.4).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn try_generate_rejects_injected_nan_and_zero_fidelity() {
        let dev = Device::grid5x5();
        let mut nan = FaultySource::new(AnalyticModel::new(), FaultConfig::nan_storm(3, 1.0));
        assert!(matches!(
            nan.try_generate(&cx(), &dev, 0.999, None),
            Err(PulseGenError::InvalidEstimate { .. })
        ));
        let mut fail = storm(1.0, 3);
        assert!(matches!(
            fail.try_generate(&cx(), &dev, 0.999, None),
            Err(PulseGenError::Convergence { .. })
        ));
    }

    #[test]
    fn panic_storm_panics_and_is_counted() {
        let dev = Device::grid5x5();
        let mut s = FaultySource::new(AnalyticModel::new(), FaultConfig::panic_storm(5, 1.0));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.generate(&cx(), &dev, 0.999, None)
        }));
        let err = caught.expect_err("panic storm at rate 1.0 must panic");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "injected pulse-source panic");
        assert_eq!(s.counts().panics, 1);
    }

    #[test]
    fn stall_is_bounded_counted_and_result_preserving() {
        let dev = Device::grid5x5();
        let mut clean = AnalyticModel::new();
        let base = clean.generate(&cx(), &dev, 0.999, None);
        let mut s = FaultySource::new(
            AnalyticModel::new(),
            FaultConfig::stalling(Duration::from_millis(5)),
        );
        let t0 = std::time::Instant::now();
        let est = s.generate(&cx(), &dev, 0.999, None);
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(5),
            "stall not applied: {elapsed:?}"
        );
        assert_eq!(s.counts().stalls, 1);
        assert_eq!(s.counts().total(), 1);
        // A stall delays generation but must not alter the estimate itself.
        assert!((est.latency_ns - base.latency_ns).abs() < 1e-12);
        assert!((est.fidelity - base.fidelity).abs() < 1e-12);
        // Requests beyond the cap are clamped — a 1-hour stall sleeps at most STALL_CAP.
        assert_eq!(
            FaultConfig::stalling(Duration::from_secs(3600))
                .stall
                .min(STALL_CAP),
            STALL_CAP
        );
    }

    #[test]
    fn latency_spike_scales_the_estimate() {
        let dev = Device::grid5x5();
        let mut clean = AnalyticModel::new();
        let base = clean.generate(&cx(), &dev, 0.999, None);
        let mut s = FaultySource::new(
            AnalyticModel::new(),
            FaultConfig {
                latency_spike_rate: 1.0,
                latency_spike_factor: 10.0,
                ..FaultConfig::default()
            },
        );
        let spiked = s.generate(&cx(), &dev, 0.999, None);
        assert!((spiked.latency_ns - 10.0 * base.latency_ns).abs() < 1e-9);
        assert_eq!(s.counts().latency_spikes, 1);
    }

    #[test]
    fn conn_chaos_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut c = ConnChaos::new(FaultConfig::conn_chaos(seed, 0.4));
            let actions: Vec<ChaosAction> = (0..64).map(|_| c.next_action(200)).collect();
            (actions, c.counts())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).1, run(10).1);
    }

    #[test]
    fn conn_chaos_zero_rate_always_delivers() {
        let mut c = ConnChaos::new(FaultConfig::default());
        for _ in 0..32 {
            assert_eq!(c.next_action(128), ChaosAction::Deliver);
        }
        assert_eq!(c.counts().hostile(), 0);
        assert_eq!(c.counts().delivered, 32);
    }

    #[test]
    fn conn_chaos_storm_hits_every_hostile_shape() {
        let mut c = ConnChaos::new(FaultConfig::conn_chaos(0xC4A05, 0.5));
        for _ in 0..256 {
            match c.next_action(512) {
                ChaosAction::Truncate(n) => assert!(n < 512, "truncation must be mid-frame"),
                ChaosAction::Garbage(n) => assert!(n >= 1),
                ChaosAction::Dribble { chunk, delay } => {
                    assert!(chunk >= 1);
                    assert!(delay <= DRIBBLE_DELAY_CAP);
                }
                ChaosAction::Deliver | ChaosAction::Disconnect => {}
            }
        }
        let counts = c.counts();
        assert!(counts.truncated > 0, "no truncations in 256 draws");
        assert!(counts.garbage > 0, "no garbage frames in 256 draws");
        assert!(counts.dribbled > 0, "no dribbles in 256 draws");
        assert!(counts.disconnects > 0, "no disconnects in 256 draws");
        assert!(counts.delivered > 0, "storm at 0.5 must still deliver some");
    }

    #[test]
    fn conn_chaos_garbage_is_seeded_and_sized() {
        let mut a = ConnChaos::new(FaultConfig::conn_chaos(3, 1.0));
        let mut b = ConnChaos::new(FaultConfig::conn_chaos(3, 1.0));
        assert_eq!(a.garbage_bytes(48), b.garbage_bytes(48));
        assert_eq!(a.garbage_bytes(7).len(), 7);
    }
}
