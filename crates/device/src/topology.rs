//! Qubit coupling topologies.

use std::collections::VecDeque;

/// An undirected coupling graph over physical qubits.
///
/// # Examples
///
/// ```
/// use paqoc_device::Topology;
/// let grid = Topology::grid(5, 5); // the paper's evaluation platform
/// assert_eq!(grid.num_qubits(), 25);
/// assert!(grid.are_coupled(0, 1));
/// assert!(!grid.are_coupled(0, 6)); // diagonal
/// assert_eq!(grid.distance(0, 24), 8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    num_qubits: usize,
    edges: Vec<(usize, usize)>,
    adjacency: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds a topology from an explicit edge list.
    ///
    /// Edges are normalized to `(min, max)` and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or endpoints `≥ num_qubits`.
    pub fn new(num_qubits: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut normalized: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(a, b)| {
                assert!(a != b, "self-loop on qubit {a}");
                assert!(
                    a < num_qubits && b < num_qubits,
                    "edge ({a},{b}) out of range"
                );
                (a.min(b), a.max(b))
            })
            .collect();
        normalized.sort_unstable();
        normalized.dedup();
        let mut adjacency = vec![Vec::new(); num_qubits];
        for &(a, b) in &normalized {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        Topology {
            num_qubits,
            edges: normalized,
            adjacency,
        }
    }

    /// A 1-D chain `0 − 1 − … − (n−1)`.
    pub fn line(n: usize) -> Self {
        Topology::new(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
    }

    /// A ring: the line plus the wrap-around edge.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring needs at least 3 qubits");
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        Topology::new(n, edges)
    }

    /// An `rows × cols` nearest-neighbour grid (the paper's 5×5 platform
    /// is `grid(5, 5)`), row-major qubit numbering.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        Topology::new(rows * cols, edges)
    }

    /// An IBM-style heavy-hex lattice with `rows` hexagon rows and
    /// `cols` hexagon columns (unit cells of degree ≤ 3).
    ///
    /// Construction: alternating rows of "row qubits" (a full chain of
    /// `4·cols + 1` qubits) and "bridge qubits" (one per hexagon edge,
    /// connecting consecutive row chains), matching the connectivity of
    /// IBM's Falcon/Hummingbird devices.
    pub fn heavy_hex(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1, "heavy-hex needs at least one cell");
        let row_len = 4 * cols + 1;
        let bridges_per_row = cols + 1;
        let mut edges = Vec::new();
        let mut next_id = 0usize;
        let mut prev_row: Option<Vec<usize>> = None;
        for r in 0..=rows {
            // The row chain.
            let chain: Vec<usize> = (0..row_len).map(|k| next_id + k).collect();
            next_id += row_len;
            for w in chain.windows(2) {
                edges.push((w[0], w[1]));
            }
            if let Some(prev) = prev_row {
                // Bridge qubits between the two chains; bridges of even
                // rows attach at positions 0, 4, 8, …, odd rows offset
                // by 2 (the heavy-hex stagger).
                let offset = if r % 2 == 1 { 0 } else { 2 };
                for b in 0..bridges_per_row {
                    let pos = (offset + 4 * b).min(row_len - 1);
                    let bridge = next_id;
                    next_id += 1;
                    edges.push((prev[pos], bridge));
                    edges.push((bridge, chain[pos]));
                }
            }
            prev_row = Some(chain);
        }
        Topology::new(next_id, edges)
    }

    /// The complete graph (all-to-all coupling).
    pub fn full(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Topology::new(n, edges)
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The normalized, deduplicated edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbours of qubit `q`.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// `true` when `a` and `b` share a coupler.
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        self.adjacency[a].contains(&b)
    }

    /// BFS hop distance between two qubits (`usize::MAX` if disconnected).
    pub fn distance(&self, from: usize, to: usize) -> usize {
        self.distances_from(from)[to]
    }

    /// BFS hop distances from one qubit to every qubit.
    pub fn distances_from(&self, from: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.num_qubits];
        dist[from] = 0;
        let mut queue = VecDeque::from([from]);
        while let Some(q) = queue.pop_front() {
            for &n in &self.adjacency[q] {
                if dist[n] == usize::MAX {
                    dist[n] = dist[q] + 1;
                    queue.push_back(n);
                }
            }
        }
        dist
    }

    /// The full all-pairs distance matrix (row `i` = distances from `i`).
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        (0..self.num_qubits)
            .map(|q| self.distances_from(q))
            .collect()
    }

    /// The coupling edges internal to a subset of qubits.
    pub fn induced_edges(&self, qubits: &[usize]) -> Vec<(usize, usize)> {
        self.edges
            .iter()
            .copied()
            .filter(|&(a, b)| qubits.contains(&a) && qubits.contains(&b))
            .collect()
    }

    /// `true` when the subset of qubits induces a connected subgraph.
    pub fn is_connected_subset(&self, qubits: &[usize]) -> bool {
        if qubits.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.num_qubits];
        let mut stack = vec![qubits[0]];
        seen[qubits[0]] = true;
        let mut count = 1;
        while let Some(q) = stack.pop() {
            for &n in &self.adjacency[q] {
                if !seen[n] && qubits.contains(&n) {
                    seen[n] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == qubits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_structure() {
        let t = Topology::line(4);
        assert_eq!(t.edges(), &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.distance(0, 3), 3);
        assert_eq!(t.neighbors(1), &[0, 2]);
    }

    #[test]
    fn ring_wraps_around() {
        let t = Topology::ring(5);
        assert!(t.are_coupled(4, 0));
        assert_eq!(t.distance(0, 3), 2); // around the back
    }

    #[test]
    fn grid_degrees() {
        let t = Topology::grid(3, 3);
        assert_eq!(t.neighbors(4).len(), 4); // center
        assert_eq!(t.neighbors(0).len(), 2); // corner
        assert_eq!(t.neighbors(1).len(), 3); // edge
        assert_eq!(t.edges().len(), 12);
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let t = Topology::grid(4, 4);
        for r1 in 0..4usize {
            for c1 in 0..4usize {
                for r2 in 0..4usize {
                    for c2 in 0..4usize {
                        let d = t.distance(r1 * 4 + c1, r2 * 4 + c2);
                        let manhattan = r1.abs_diff(r2) + c1.abs_diff(c2);
                        assert_eq!(d, manhattan);
                    }
                }
            }
        }
    }

    #[test]
    fn heavy_hex_has_low_degree_and_is_connected() {
        let t = Topology::heavy_hex(2, 2);
        // Heavy-hex never exceeds degree 3.
        for q in 0..t.num_qubits() {
            assert!(t.neighbors(q).len() <= 3, "qubit {q} has degree > 3");
        }
        // Single connected component.
        let d = t.distances_from(0);
        assert!(d.iter().all(|&x| x != usize::MAX));
        // 3 row chains of 9 + 2×3 bridges = 33 qubits for a 2×2 lattice.
        assert_eq!(t.num_qubits(), 33);
    }

    #[test]
    fn heavy_hex_routes_circuits() {
        use paqoc_circuit::Circuit;
        let t = Topology::heavy_hex(1, 1);
        let mut c = Circuit::new(4);
        c.cx(0, 3).cx(1, 2);
        // Smoke: SABRE lives in another crate; here just verify the
        // distance metric behaves (no panic, finite distances).
        assert!(t.distance(0, t.num_qubits() - 1) < t.num_qubits());
        assert_eq!(c.num_qubits(), 4);
    }

    #[test]
    fn full_graph_distance_is_one() {
        let t = Topology::full(6);
        assert_eq!(t.edges().len(), 15);
        assert_eq!(t.distance(2, 5), 1);
    }

    #[test]
    fn duplicate_edges_are_merged() {
        let t = Topology::new(3, [(0, 1), (1, 0), (1, 2)]);
        assert_eq!(t.edges().len(), 2);
    }

    #[test]
    fn induced_edges_and_connectivity() {
        let t = Topology::grid(2, 3);
        // subset {0,1,2}: top row, connected with 2 internal edges
        assert_eq!(t.induced_edges(&[0, 1, 2]).len(), 2);
        assert!(t.is_connected_subset(&[0, 1, 2]));
        // subset {0,5}: opposite corners, disconnected internally
        assert!(!t.is_connected_subset(&[0, 5]));
        assert!(t.induced_edges(&[0, 5]).is_empty());
    }

    #[test]
    fn disconnected_distance_is_max() {
        let t = Topology::new(4, [(0, 1)]);
        assert_eq!(t.distance(0, 3), usize::MAX);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        Topology::new(2, [(1, 1)]);
    }
}
