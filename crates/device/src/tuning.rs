//! Per-qubit / per-coupler calibration overlays.
//!
//! A [`crate::HardwareSpec`] describes a device whose qubits are all
//! identical — the paper's idealized 5×5 grid. Real lattices drift: each
//! qubit has its own frequency, anharmonicity, decoherence times and
//! drive strength, and each coupler its own effective rate. A
//! [`DeviceTuning`] carries that snapshot on top of the spec; the
//! [`crate::Device`] consults it through `single_qubit_limit_for` /
//! `coupler_limit` so the analytic model and GRAPE both see per-site
//! limits. An untuned device (`tuning = None`) answers every per-site
//! query with the exact spec-level value — the legacy code path is
//! bit-identical.

use std::collections::BTreeMap;

/// Calibration of one qubit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QubitCal {
    /// Qubit transition frequency, GHz.
    pub frequency_ghz: f64,
    /// Anharmonicity, GHz (negative for transmons).
    pub anharmonicity_ghz: f64,
    /// Relaxation time, µs.
    pub t1_us: f64,
    /// Dephasing time, µs.
    pub t2_us: f64,
    /// Multiplier on the spec's single-qubit amplitude limit.
    pub drive_scale: f64,
}

impl Default for QubitCal {
    fn default() -> Self {
        QubitCal {
            frequency_ghz: 5.0,
            anharmonicity_ghz: -0.33,
            t1_us: 100.0,
            t2_us: 80.0,
            drive_scale: 1.0,
        }
    }
}

/// A calibration snapshot: one [`QubitCal`] per qubit plus per-coupler
/// rate multipliers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeviceTuning {
    /// Per-qubit calibration, indexed by physical qubit.
    pub qubits: Vec<QubitCal>,
    /// Multiplier on the spec's `mu_max` per coupler, keyed by the
    /// normalized `(min, max)` endpoint pair. Missing edges scale by 1.
    pub coupler_scale: BTreeMap<(usize, usize), f64>,
}

impl DeviceTuning {
    /// A neutral snapshot (every scale 1, default qubit values).
    pub fn identity(num_qubits: usize) -> Self {
        DeviceTuning {
            qubits: vec![QubitCal::default(); num_qubits],
            coupler_scale: BTreeMap::new(),
        }
    }

    /// Calibration of qubit `q`; defaults when the snapshot is short.
    pub fn qubit(&self, q: usize) -> QubitCal {
        self.qubits.get(q).copied().unwrap_or_default()
    }

    /// Rate multiplier of the coupler between `a` and `b` (1 when the
    /// snapshot carries no entry for the pair).
    pub fn coupler(&self, a: usize, b: usize) -> f64 {
        let key = (a.min(b), a.max(b));
        self.coupler_scale.get(&key).copied().unwrap_or(1.0)
    }

    /// FNV-1a hash of the full snapshot (every f64 by exact bit
    /// pattern), feeding the fingerprint's calibration digest: any
    /// drifted field rotates the namespace.
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.qubits.len() as u64).to_le_bytes());
        for q in &self.qubits {
            for field in [
                q.frequency_ghz,
                q.anharmonicity_ghz,
                q.t1_us,
                q.t2_us,
                q.drive_scale,
            ] {
                eat(&field.to_bits().to_le_bytes());
            }
        }
        for (&(a, b), &scale) in &self.coupler_scale {
            eat(&(a as u64).to_le_bytes());
            eat(&(b as u64).to_le_bytes());
            eat(&scale.to_bits().to_le_bytes());
        }
        h
    }

    /// The snapshot's 16-bit digest (the fingerprint `cal_id` field).
    pub fn cal_id(&self) -> u16 {
        let h = self.content_hash();
        (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) as u16
    }
}

/// Identity of the backend a device was built by, carried on the device
/// so every layer (store namespacing, serve routing, bench schema) can
/// ask `device.backend_name()` instead of assuming the paper grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendTag {
    /// Registry name, e.g. `"heavy-hex"`.
    pub name: String,
    /// Namespace id packed into the fingerprint (see
    /// [`crate::fingerprint`]).
    pub ns_id: u8,
    /// Calibration digest packed into the fingerprint.
    pub cal_id: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untuned_queries_default_sanely() {
        let t = DeviceTuning::identity(3);
        assert_eq!(t.qubit(0).drive_scale, 1.0);
        assert_eq!(t.qubit(99).drive_scale, 1.0, "out of range → defaults");
        assert_eq!(t.coupler(0, 1), 1.0);
        assert_eq!(t.coupler(1, 0), 1.0, "endpoint order is normalized");
    }

    #[test]
    fn content_hash_sees_every_field() {
        let base = DeviceTuning::identity(2);
        let mut drift = base.clone();
        drift.qubits[1].t1_us = 99.0;
        assert_ne!(base.content_hash(), drift.content_hash());
        assert_ne!(base.cal_id(), drift.cal_id());
        let mut coupler = base.clone();
        coupler.coupler_scale.insert((0, 1), 0.9);
        assert_ne!(base.content_hash(), coupler.content_hash());
    }

    #[test]
    fn coupler_scale_lookup_normalizes_endpoints() {
        let mut t = DeviceTuning::identity(2);
        t.coupler_scale.insert((0, 1), 0.5);
        assert_eq!(t.coupler(1, 0), 0.5);
        assert_eq!(t.coupler(0, 1), 0.5);
    }
}
