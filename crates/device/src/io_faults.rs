//! Seeded IO fault injection for the persistent pulse store.
//!
//! The pulse store's crash-safety claims — torn tails truncated, failed
//! fsyncs surfacing as typed errors, a failed compaction rename leaving
//! the old file intact — are only worth anything if tests can *make*
//! those failures happen. [`IoFaultInjector`] is the storage-side
//! sibling of [`crate::FaultySource`]: a seeded, thread-safe decision
//! stream the store consults before every `sync`, `rename` and record
//! append, injecting the three failure shapes a real filesystem
//! exhibits under pressure:
//!
//! * **failed sync** — `fsync` returns an error (disk full, dying
//!   device, container quota);
//! * **failed rename** — the atomic compaction rename is refused,
//!   leaving the previous file untouched;
//! * **short write** — only a prefix of an appended record reaches the
//!   file before the error surfaces, manufacturing exactly the torn
//!   tail the loader must truncate on the next open.
//!
//! Every injection is drawn from the same in-tree xoshiro256** stream
//! family the source-level faults use, so a failing run replays exactly
//! from its seed, and is tallied both on the injector
//! ([`IoFaultInjector::counts`]) and as telemetry counters
//! (`faults.io_sync`, `faults.io_rename`, `faults.io_short_write`).

use crate::faults::FaultConfig;
use paqoc_math::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Tally of the IO faults an [`IoFaultInjector`] has fired so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoFaultCounts {
    /// `sync` calls failed.
    pub sync_failures: u64,
    /// `rename` calls failed.
    pub rename_failures: u64,
    /// Appends cut short (torn tails manufactured).
    pub short_writes: u64,
}

impl IoFaultCounts {
    /// Total IO faults of any kind injected.
    pub fn total(&self) -> u64 {
        self.sync_failures + self.rename_failures + self.short_writes
    }
}

/// A seeded decision stream for storage-path fault injection (see the
/// module docs). Shared across threads behind `&self`: the store keeps
/// one injector per handle and consults it from whatever thread runs
/// the sync or compaction.
#[derive(Debug)]
pub struct IoFaultInjector {
    sync_fail_rate: f64,
    rename_fail_rate: f64,
    short_write_rate: f64,
    rng: Mutex<Rng>,
    sync_failures: AtomicU64,
    rename_failures: AtomicU64,
    short_writes: AtomicU64,
}

impl IoFaultInjector {
    /// Builds an injector with explicit per-operation rates.
    pub fn new(
        seed: u64,
        sync_fail_rate: f64,
        rename_fail_rate: f64,
        short_write_rate: f64,
    ) -> Self {
        IoFaultInjector {
            sync_fail_rate,
            rename_fail_rate,
            short_write_rate,
            rng: Mutex::new(Rng::seed_from_u64(seed)),
            sync_failures: AtomicU64::new(0),
            rename_failures: AtomicU64::new(0),
            short_writes: AtomicU64::new(0),
        }
    }

    /// Builds an injector from a [`FaultConfig`]'s IO rates, or `None`
    /// when every IO rate is zero (the common no-faults case costs
    /// nothing on the store path).
    pub fn from_config(cfg: &FaultConfig) -> Option<Self> {
        if cfg.io_sync_fail_rate <= 0.0
            && cfg.io_rename_fail_rate <= 0.0
            && cfg.io_short_write_rate <= 0.0
        {
            return None;
        }
        Some(IoFaultInjector::new(
            cfg.seed,
            cfg.io_sync_fail_rate,
            cfg.io_rename_fail_rate,
            cfg.io_short_write_rate,
        ))
    }

    fn roll(&self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let mut rng = self.rng.lock().unwrap_or_else(|p| p.into_inner());
        rng.random::<f64>() < rate
    }

    /// Decides whether the next `sync` should fail; returns the error
    /// to surface when it should.
    pub fn fail_sync(&self) -> Option<std::io::Error> {
        if !self.roll(self.sync_fail_rate) {
            return None;
        }
        self.sync_failures.fetch_add(1, Ordering::Relaxed);
        paqoc_telemetry::counter("faults.io_sync", 1);
        Some(std::io::Error::other("injected fsync failure"))
    }

    /// Decides whether the next `rename` should fail; returns the error
    /// to surface when it should.
    pub fn fail_rename(&self) -> Option<std::io::Error> {
        if !self.roll(self.rename_fail_rate) {
            return None;
        }
        self.rename_failures.fetch_add(1, Ordering::Relaxed);
        paqoc_telemetry::counter("faults.io_rename", 1);
        Some(std::io::Error::other("injected rename failure"))
    }

    /// Decides whether the next append of `full_len` bytes should be
    /// torn; returns how many bytes to actually write when it should.
    /// The truncated length is seeded-random in `[0, full_len)`, so the
    /// torn tail can cut framing, payload or nothing at all.
    pub fn short_write(&self, full_len: usize) -> Option<usize> {
        if full_len == 0 || !self.roll(self.short_write_rate) {
            return None;
        }
        self.short_writes.fetch_add(1, Ordering::Relaxed);
        paqoc_telemetry::counter("faults.io_short_write", 1);
        let mut rng = self.rng.lock().unwrap_or_else(|p| p.into_inner());
        Some((rng.next_u64() as usize) % full_len)
    }

    /// The IO faults injected so far.
    pub fn counts(&self) -> IoFaultCounts {
        IoFaultCounts {
            sync_failures: self.sync_failures.load(Ordering::Relaxed),
            rename_failures: self.rename_failures.load(Ordering::Relaxed),
            short_writes: self.short_writes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_build_no_injector_and_fire_nothing() {
        assert!(IoFaultInjector::from_config(&FaultConfig::default()).is_none());
        let inj = IoFaultInjector::new(1, 0.0, 0.0, 0.0);
        for _ in 0..100 {
            assert!(inj.fail_sync().is_none());
            assert!(inj.fail_rename().is_none());
            assert!(inj.short_write(64).is_none());
        }
        assert_eq!(inj.counts().total(), 0);
    }

    #[test]
    fn io_storm_config_builds_an_injector_that_fires() {
        let cfg = FaultConfig::io_storm(9, 1.0);
        let inj = IoFaultInjector::from_config(&cfg).expect("rates set");
        assert!(inj.fail_sync().is_some());
        assert!(inj.fail_rename().is_some());
        let short = inj.short_write(100).expect("short write");
        assert!(short < 100, "torn prefix must be a strict prefix");
        assert_eq!(inj.counts().total(), 3);
    }

    #[test]
    fn injection_stream_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let inj = IoFaultInjector::new(seed, 0.3, 0.3, 0.3);
            let decisions: Vec<(bool, bool, Option<usize>)> = (0..64)
                .map(|_| {
                    (
                        inj.fail_sync().is_some(),
                        inj.fail_rename().is_some(),
                        inj.short_write(128),
                    )
                })
                .collect();
            (decisions, inj.counts())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).1, run(6).1);
    }
}
