//! Hardware control-field specification.
//!
//! The paper's platform (Section VI): a transmon architecture with XY
//! interaction, two-qubit control-field limit `μ_max = 0.02 GHz` and a
//! single-qubit rotation limit of `5·μ_max`, on a 5×5 grid.

/// Control-field limits and time discretization of the simulated device.
///
/// All frequencies are in GHz and all times in nanoseconds; latencies are
/// reported in integer `dt` device cycles like the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardwareSpec {
    /// Two-qubit XY control-field limit in GHz (paper: `0.02`).
    pub mu_max: f64,
    /// Single-qubit drive limit as a multiple of `mu_max` (paper: `5`).
    pub single_qubit_factor: f64,
    /// Device cycle length in nanoseconds (one `dt`).
    pub dt_ns: f64,
    /// Qubit relaxation time T₁ in microseconds (used by the
    /// decoherence-aware success estimate; transmon-typical default).
    pub t1_us: f64,
    /// Qubit dephasing time T₂ in microseconds.
    pub t2_us: f64,
}

impl HardwareSpec {
    /// The paper's transmon-with-XY-interaction setting.
    pub fn transmon_xy() -> Self {
        HardwareSpec {
            mu_max: 0.02,
            single_qubit_factor: 5.0,
            // Calibrated so a lone CX pulse (≈14 ns under the XY-coupler
            // limits, measured with GRAPE) lands near 110 dt, matching
            // the scale of the paper's Fig. 2.
            dt_ns: 0.125,
            t1_us: 100.0,
            t2_us: 80.0,
        }
    }

    /// The single-qubit drive limit in GHz.
    pub fn single_qubit_limit(&self) -> f64 {
        self.mu_max * self.single_qubit_factor
    }

    /// Converts nanoseconds to integer `dt` cycles (rounding up: a pulse
    /// always occupies whole device cycles).
    pub fn ns_to_dt(&self, ns: f64) -> u64 {
        (ns / self.dt_ns).ceil().max(0.0) as u64
    }

    /// Converts `dt` cycles back to nanoseconds.
    pub fn dt_to_ns(&self, dt: u64) -> f64 {
        dt as f64 * self.dt_ns
    }

    /// Maximum angular rotation rate of a single-qubit drive, rad/ns.
    pub fn single_qubit_rate(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.single_qubit_limit()
    }

    /// Maximum nonlocal-content production rate of a coupler, rad/ns.
    pub fn coupler_rate(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.mu_max
    }

    /// Survival probability of `active_qubits` idling-or-driven qubits
    /// over a schedule of `latency_ns`: `exp(-n·t·(1/T₁ + 1/T₂))`.
    ///
    /// This is the decoherence term that multiplies the control-error
    /// ESP (Eq. 2) — the paper's motivation for latency reduction made
    /// quantitative.
    pub fn survival_probability(&self, active_qubits: usize, latency_ns: f64) -> f64 {
        let rate_per_ns = 1.0 / (self.t1_us * 1000.0) + 1.0 / (self.t2_us * 1000.0);
        (-(active_qubits as f64) * latency_ns * rate_per_ns).exp()
    }
}

impl Default for HardwareSpec {
    fn default() -> Self {
        HardwareSpec::transmon_xy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let s = HardwareSpec::transmon_xy();
        assert!((s.mu_max - 0.02).abs() < 1e-15);
        assert!((s.single_qubit_limit() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn dt_conversion_roundtrips_within_one_cycle() {
        let s = HardwareSpec::transmon_xy();
        let dt = s.ns_to_dt(6.25);
        assert_eq!(dt, 50);
        assert!((s.dt_to_ns(dt) - 6.25).abs() < 1e-12);
        // rounding is upward
        assert_eq!(s.ns_to_dt(6.3), 51);
    }

    #[test]
    fn rates_scale_with_limits() {
        let s = HardwareSpec::transmon_xy();
        assert!((s.single_qubit_rate() / s.coupler_rate() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn survival_decays_with_latency_and_width() {
        let s = HardwareSpec::transmon_xy();
        assert!((s.survival_probability(0, 1e6) - 1.0).abs() < 1e-12);
        let short = s.survival_probability(5, 100.0);
        let long = s.survival_probability(5, 10_000.0);
        let wide = s.survival_probability(20, 100.0);
        assert!(short > long);
        assert!(short > wide);
        assert!(long > 0.0 && long < 1.0);
    }
}
