//! The analytic pulse-latency model and the [`PulseSource`] abstraction.
//!
//! PAQOC's search asks one question thousands of times: *"how long would
//! the optimal pulse for this gate group be?"* Answering with a real
//! GRAPE run everywhere is exactly the compilation overhead the paper
//! fights, so the workspace offers two interchangeable answers behind the
//! [`PulseSource`] trait:
//!
//! * `paqoc_grape::GrapeSource` — the real numeric optimizer;
//! * [`AnalyticModel`] (this module) — a time-optimal-control surrogate.
//!
//! The surrogate is physically grounded: a two-qubit group is collapsed
//! to one unitary whose Weyl-chamber interaction content lower-bounds the
//! evolution time under the amplitude-bounded XY coupler, and
//! single-qubit work is costed by rotation angle against the (5× faster)
//! local drives. By construction it satisfies the paper's Observation 1
//! (merging never exceeds the sum of parts) and Observation 2 (latency
//! grows with qubit count), and `fig6`/`fig2` cross-validate it against
//! real GRAPE.

use crate::hamiltonian::Device;
use paqoc_circuit::{combined_unitary, decompose, Basis, Circuit, Instruction};
use paqoc_math::{stable_jitter, weyl_coordinates, Matrix};
use std::collections::BTreeSet;

/// The outcome of generating (or predicting) a pulse for a gate group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PulseEstimate {
    /// Pulse duration in nanoseconds.
    pub latency_ns: f64,
    /// Pulse duration in whole device cycles (`dt`), as the paper reports.
    pub latency_dt: u64,
    /// Fidelity the pulse achieves against the group unitary.
    pub fidelity: f64,
    /// Synthetic compilation cost of producing this pulse (GRAPE
    /// iterations × time steps × d³, rescaled). Zero only for cache hits,
    /// which are accounted by the caller's pulse table.
    pub cost_units: f64,
}

impl PulseEstimate {
    /// `true` when every field is finite and within its physical range
    /// (latency and cost non-negative, fidelity in `[0, 1 + ε]`).
    pub fn is_well_formed(&self) -> bool {
        self.latency_ns.is_finite()
            && self.latency_ns >= 0.0
            && self.cost_units.is_finite()
            && self.cost_units >= 0.0
            && self.fidelity.is_finite()
            && (0.0..=1.0 + 1e-9).contains(&self.fidelity)
    }
}

/// Why a pulse source could not produce a usable estimate.
///
/// Convergence failures are the common case at scale — GRAPE routinely
/// fails on hard targets from a cold start — and are retriable; invalid
/// estimates (NaN/Inf/negative fields) indicate a misbehaving source and
/// are rejected at the [`PulseSource`] boundary so they can never corrupt
/// the latency estimator or the pulse table.
#[derive(Clone, Debug, PartialEq)]
pub enum PulseGenError {
    /// The optimizer could not reach the fidelity target.
    Convergence {
        /// Best fidelity reached (0 when nothing usable was produced).
        achieved: f64,
        /// The fidelity that was asked for.
        target: f64,
    },
    /// The source returned a non-finite or out-of-range estimate.
    InvalidEstimate {
        /// Which source produced the estimate.
        source: String,
        /// Human-readable description of the defect.
        detail: String,
    },
    /// The source **panicked** mid-generation and was caught by the
    /// pulse table's `catch_unwind` supervisor. Not retriable through
    /// the normal ladder: the gate-group key is quarantined so a
    /// deterministic crash cannot fire once per retry attempt.
    SourcePanic {
        /// Which source panicked.
        source: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for PulseGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PulseGenError::Convergence { achieved, target } => write!(
                f,
                "pulse optimization failed to converge: reached fidelity {achieved:.6} \
                 of target {target:.6}"
            ),
            PulseGenError::InvalidEstimate { source, detail } => {
                write!(
                    f,
                    "pulse source '{source}' returned an invalid estimate: {detail}"
                )
            }
            PulseGenError::SourcePanic { source, message } => {
                write!(f, "pulse source '{source}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for PulseGenError {}

/// Validates an estimate at the [`PulseSource`] boundary.
///
/// Rejects non-finite or negative latency/cost and non-finite fidelity
/// (recording a `source.invalid_estimates` telemetry counter — the guard
/// that keeps adversarial sources from corrupting the latency
/// estimator); clamps a fidelity marginally above 1 back into range; and
/// maps a zero-or-negative fidelity to [`PulseGenError::Convergence`],
/// the retriable signal.
pub fn validate_estimate(
    est: PulseEstimate,
    target_fidelity: f64,
    source_name: &str,
) -> Result<PulseEstimate, PulseGenError> {
    if !est.latency_ns.is_finite()
        || est.latency_ns < 0.0
        || !est.cost_units.is_finite()
        || est.cost_units < 0.0
        || !est.fidelity.is_finite()
        || est.fidelity > 1.0 + 1e-6
    {
        paqoc_telemetry::counter("source.invalid_estimates", 1);
        return Err(PulseGenError::InvalidEstimate {
            source: source_name.to_string(),
            detail: format!(
                "latency_ns={}, fidelity={}, cost_units={}",
                est.latency_ns, est.fidelity, est.cost_units
            ),
        });
    }
    if est.fidelity <= 0.0 {
        return Err(PulseGenError::Convergence {
            achieved: est.fidelity.max(0.0),
            target: target_fidelity,
        });
    }
    let mut est = est;
    est.fidelity = est.fidelity.min(1.0);
    Ok(est)
}

/// A generator of control pulses for gate groups.
///
/// Implementations must be deterministic for a fixed input so that the
/// evaluation harnesses are reproducible.
pub trait PulseSource {
    /// Generates (or predicts) the minimum-latency pulse realizing the
    /// product of `group` (earlier instructions applied first) at
    /// `target_fidelity`. `warm_start` carries the unitary distance to
    /// the closest already-generated pulse when one is available as an
    /// initial guess: optimization from a nearby guess converges in a
    /// handful of iterations (the AccQOC similarity trick the paper
    /// inherits), so cost shrinks with distance — latency does not.
    fn generate(
        &mut self,
        group: &[Instruction],
        device: &Device,
        target_fidelity: f64,
        warm_start: Option<f64>,
    ) -> PulseEstimate;

    /// Fallible pulse generation: like [`PulseSource::generate`], but
    /// surfaces failure as a typed [`PulseGenError`] instead of a
    /// sentinel estimate, and guarantees the returned estimate is
    /// well-formed (finite, in-range — see [`validate_estimate`]).
    ///
    /// The default implementation wraps [`PulseSource::generate`] and
    /// validates its output; sources with a real failure mode (the GRAPE
    /// optimizer) override it to add retry ladders before giving up.
    fn try_generate(
        &mut self,
        group: &[Instruction],
        device: &Device,
        target_fidelity: f64,
        warm_start: Option<f64>,
    ) -> Result<PulseEstimate, PulseGenError> {
        let est = self.generate(group, device, target_fidelity, warm_start);
        validate_estimate(est, target_fidelity, self.name())
    }

    /// A prior estimate of the latency of a typical `num_qubits`-qubit
    /// customized gate, used by the paper's Observation-2 shortcut when
    /// ranking merge candidates without generating pulses.
    fn typical_latency_ns(&self, num_qubits: usize, device: &Device) -> f64;

    /// Short identifier used in reports.
    fn name(&self) -> &'static str;
}

/// Time-optimal-control surrogate latency model (see module docs).
#[derive(Clone, Debug, Default)]
pub struct AnalyticModel {
    _private: (),
}

/// Fraction of serialized single-qubit work that cannot be hidden under
/// coupler activity inside a merged pulse (local drives are 5× faster
/// and almost fully overlap — the paper's Fig. 2 shows the Hadamard
/// disappearing entirely into the merged H·CX pulse).
const LOCAL_OVERLAP_RHO: f64 = 0.05;
/// Shared-qubit serialization discount for ≥3-qubit groups: GRAPE
/// realizes CX(a,b)·CX(b,c) in ≈22 ns against 25 ns of serialized
/// content (simultaneous coupler driving), giving γ ≈ 0.78.
const GAMMA3: f64 = 0.78;
/// Deterministic jitter amplitude (models GRAPE convergence noise).
const JITTER: f64 = 0.06;
/// Effective duty factor of stand-alone single-qubit pulses: smooth
/// envelopes do not sit at the amplitude bound, stretching a lone
/// rotation (calibrated so H ≈ 60 dt as in the paper's Fig. 2).
const ENVELOPE_1Q: f64 = 0.65;

impl AnalyticModel {
    /// Creates the model.
    pub fn new() -> Self {
        AnalyticModel::default()
    }

    /// Pulse ramp/calibration overhead for an `n`-qubit pulse, ns.
    /// Calibrated against the paper's Fig. 2: CX = base(2) + 12.5 ns
    /// of echo-corrected content ≈ 110 dt.
    fn base_ns(num_qubits: usize) -> f64 {
        match num_qubits {
            0 | 1 => 0.3,
            n => 1.25 * f64::powi(2.0, n as i32 - 2),
        }
    }

    /// Rotation angle of a single-qubit unitary (global-phase free).
    fn rotation_angle(u: &Matrix) -> f64 {
        let half_tr = u.trace().abs() / 2.0;
        2.0 * half_tr.min(1.0).acos()
    }

    /// Time-optimal evolution time of a two-qubit unitary under the XY
    /// coupler, ns.
    ///
    /// The XY interaction produces the canonical coordinates `c₁` and
    /// `c₂` *jointly*; asymmetric targets (like CX, which needs `c₁`
    /// alone) require echo sequences that cancel the unwanted component,
    /// doubling the effective time. The resulting estimate
    /// `t = 2·max(c₁, c₂+|c₃|)/rate` reproduces the GRAPE-measured
    /// durations of iSWAP (12.5 ns) and CX (≈14 ns) on the paper's
    /// hardware limits.
    fn content_time(u4: &Matrix, device: &Device, a: usize, b: usize) -> f64 {
        let w = weyl_coordinates(u4);
        2.0 * w.c1.max(w.c2 + w.c3.abs()) / device.coupler_rate_between(a, b)
    }

    /// A stable textual signature of a group (gate labels + relative
    /// qubit roles), feeding the deterministic jitter.
    fn signature(group: &[Instruction], qubits: &[usize]) -> String {
        let local = |q: usize| qubits.iter().position(|&p| p == q).unwrap_or(usize::MAX);
        group
            .iter()
            .map(|inst| {
                let qs: Vec<String> = inst
                    .qubits()
                    .iter()
                    .map(|&q| local(q).to_string())
                    .collect();
                format!("{}:{}", inst.label(), qs.join(","))
            })
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Core of the model: raw (jitter-free) latency in ns.
    fn raw_latency_ns(&self, group: &[Instruction], device: &Device) -> f64 {
        // Lower any >2-qubit or exotic gates so the content analysis only
        // sees one- and two-qubit basis gates.
        let lowered = lower_group(group);
        let qubits = group_qubits(&lowered);
        let n = qubits.len();
        let base = AnalyticModel::base_ns(n.max(1));

        match n {
            0 => 0.0,
            1 => {
                let u = combined_unitary(&lowered, &qubits);
                let rate1 = device.single_qubit_rate_for(qubits[0]);
                base + AnalyticModel::rotation_angle(&u) / (rate1 * ENVELOPE_1Q)
            }
            2 => {
                let u = combined_unitary(&lowered, &qubits);
                let t2 = AnalyticModel::content_time(&u, device, qubits[0], qubits[1])
                    * coupling_penalty(device, qubits[0], qubits[1]);
                let t1 = max_local_load(&lowered, &qubits, device);
                base + t2 + LOCAL_OVERLAP_RHO * t1
            }
            _ => {
                // Per-pair combined unitaries; pairs sharing a qubit
                // serialize; a γ discount models joint-synthesis savings.
                let pairs = pair_contents(&lowered, device);
                let mut floor = 0.0f64;
                let mut busy = vec![0.0f64; n];
                for (&(a, b), &t) in &pairs {
                    floor = floor.max(t);
                    let ia = qubits.iter().position(|&q| q == a).expect("member");
                    let ib = qubits.iter().position(|&q| q == b).expect("member");
                    busy[ia] += t;
                    busy[ib] += t;
                }
                for (i, &q) in qubits.iter().enumerate() {
                    busy[i] += LOCAL_OVERLAP_RHO * local_load(&lowered, q, device);
                }
                let max_busy = busy.iter().copied().fold(0.0, f64::max);
                base + (GAMMA3 * max_busy).max(floor)
            }
        }
    }
}

impl PulseSource for AnalyticModel {
    fn generate(
        &mut self,
        group: &[Instruction],
        device: &Device,
        target_fidelity: f64,
        warm_start: Option<f64>,
    ) -> PulseEstimate {
        let lowered = lower_group(group);
        let qubits = group_qubits(&lowered);
        let sig = AnalyticModel::signature(group, &qubits);
        let j = stable_jitter(sig.as_bytes());

        let raw = self.raw_latency_ns(group, device);
        let latency_ns = (raw * (1.0 + JITTER * (j - 0.5))).max(device.spec().dt_ns);
        let latency_dt = device.spec().ns_to_dt(latency_ns);

        // Binary search stops once the target is met; the margin above
        // target is small and pulse-specific.
        let err_budget = 1.0 - target_fidelity;
        let fidelity = 1.0 - err_budget * (0.55 + 0.45 * j);

        // Synthetic QOC effort: duration-search rounds × ADAM iterations
        // × time steps × d (the paper's GRAPE runs on GPUs, where the
        // dense d×d algebra is parallelized and per-iteration time grows
        // only mildly with the Hilbert dimension at d ≤ 8). A warm start
        // from a nearby pulse collapses the iteration count — the closer
        // the guess, the fewer iterations (down to a polish pass) — and
        // the duration-search rounds (the duration is already known).
        let d = 1usize << qubits.len().max(1);
        let steps = (latency_ns / device.spec().dt_ns).max(1.0);
        let (iter_scale, rounds) = match warm_start {
            None => (1.0, 6.0),
            Some(dist) => ((0.06 + 0.5 * dist).clamp(0.06, 1.0), 2.0),
        };
        let iters = 250.0 * iter_scale * (0.8 + 0.4 * j);
        let cost_units = rounds * iters * steps * d as f64 / 1.0e5;

        let est = PulseEstimate {
            latency_ns,
            latency_dt,
            fidelity,
            cost_units,
        };
        // The analytic model is this workspace's ground truth: producing
        // a NaN/negative estimate here is an internal bug, not an
        // adversarial input, so it is a debug assertion rather than a
        // recoverable error.
        debug_assert!(est.is_well_formed(), "analytic model produced {est:?}");
        est
    }

    fn typical_latency_ns(&self, num_qubits: usize, device: &Device) -> f64 {
        let spec = device.spec();
        let base = AnalyticModel::base_ns(num_qubits.max(1));
        match num_qubits {
            0 | 1 => base + std::f64::consts::FRAC_PI_2 / (spec.single_qubit_rate() * ENVELOPE_1Q),
            // A typical 2-qubit customized gate carries roughly one CX of
            // echo-corrected content: 2·(π/4)/rate, plus some dressing.
            2 => base + 1.2 * std::f64::consts::FRAC_PI_2 / spec.coupler_rate(),
            n => base + 1.2 * (n - 1) as f64 * std::f64::consts::FRAC_PI_2 / spec.coupler_rate(),
        }
    }

    fn name(&self) -> &'static str {
        "analytic"
    }
}

/// Lowers every instruction of a group to 1- and 2-qubit basis gates.
fn lower_group(group: &[Instruction]) -> Vec<Instruction> {
    let needs_lowering = group
        .iter()
        .any(|i| i.gate().num_qubits() > 2 || !Basis::Ibm.contains(i.gate()));
    if !needs_lowering {
        return group.to_vec();
    }
    let max_q = group
        .iter()
        .flat_map(|i| i.qubits().iter().copied())
        .max()
        .unwrap_or(0);
    let mut c = Circuit::new(max_q + 1);
    for inst in group {
        c.push(inst.clone());
    }
    decompose(&c, Basis::Ibm).instructions().to_vec()
}

/// Sorted unique qubits of a group.
fn group_qubits(group: &[Instruction]) -> Vec<usize> {
    let set: BTreeSet<usize> = group
        .iter()
        .flat_map(|i| i.qubits().iter().copied())
        .collect();
    set.into_iter().collect()
}

/// Serialized single-qubit rotation time on qubit `q`, ns, against
/// `q`'s own drive rate (the spec-level rate on untuned devices).
fn local_load(group: &[Instruction], q: usize, device: &Device) -> f64 {
    let rate1 = device.single_qubit_rate_for(q);
    group
        .iter()
        .filter(|i| i.gate().num_qubits() == 1 && i.qubits()[0] == q)
        .map(|i| AnalyticModel::rotation_angle(&i.unitary()) / rate1)
        .sum()
}

/// Maximum over group qubits of the serialized single-qubit load.
fn max_local_load(group: &[Instruction], qubits: &[usize], device: &Device) -> f64 {
    qubits
        .iter()
        .map(|&q| local_load(group, q, device))
        .fold(0.0, f64::max)
}

/// Penalty for driving interaction between qubits that do not share a
/// direct coupler: each extra hop roughly doubles the required time.
fn coupling_penalty(device: &Device, a: usize, b: usize) -> f64 {
    let d = device.topology().distance(a, b);
    if d == usize::MAX {
        // Disconnected: the model still answers (GRAPE could not), with a
        // strong penalty proportional to nothing better than "far".
        return 8.0;
    }
    f64::powi(2.0, d.saturating_sub(1) as i32)
}

/// Combined interaction-content time per qubit pair of a group, ns.
///
/// Two-qubit gates on the same pair only fuse when nothing else touches
/// either qubit in between (interleaved gates break commutation, so a
/// CX·T·CX sandwich must *not* collapse to the identity). Each maximal
/// uninterrupted run contributes its combined unitary's content; runs on
/// the same pair serialize.
fn pair_contents(
    group: &[Instruction],
    device: &Device,
) -> std::collections::BTreeMap<(usize, usize), f64> {
    use std::collections::BTreeMap;
    let mut totals: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut open_runs: BTreeMap<(usize, usize), Vec<Instruction>> = BTreeMap::new();

    let flush = |pair: (usize, usize),
                 run: Vec<Instruction>,
                 totals: &mut BTreeMap<(usize, usize), f64>| {
        if run.is_empty() {
            return;
        }
        let u = combined_unitary(&run, &[pair.0, pair.1]);
        let t = AnalyticModel::content_time(&u, device, pair.0, pair.1)
            * coupling_penalty(device, pair.0, pair.1);
        *totals.entry(pair).or_insert(0.0) += t;
    };

    for inst in group {
        let own_pair = if inst.gate().num_qubits() == 2 {
            let (a, b) = (inst.qubits()[0], inst.qubits()[1]);
            Some((a.min(b), a.max(b)))
        } else {
            None
        };
        // Any gate touching a qubit of an open run (other than extending
        // its own pair's run) interrupts that run.
        let interrupted: Vec<(usize, usize)> = open_runs
            .keys()
            .copied()
            .filter(|&pair| {
                Some(pair) != own_pair && inst.qubits().iter().any(|&q| q == pair.0 || q == pair.1)
            })
            .collect();
        for pair in interrupted {
            let run = open_runs.remove(&pair).expect("key just listed");
            flush(pair, run, &mut totals);
        }
        if let Some(pair) = own_pair {
            open_runs.entry(pair).or_default().push(inst.clone());
        }
    }
    for (pair, run) in open_runs {
        flush(pair, run, &mut totals);
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_circuit::GateKind;

    fn inst(gate: GateKind, qubits: &[usize]) -> Instruction {
        Instruction::new(gate, qubits.to_vec(), vec![])
    }

    fn gen(group: &[Instruction]) -> PulseEstimate {
        let dev = Device::grid5x5();
        AnalyticModel::new().generate(group, &dev, 0.999, None)
    }

    #[test]
    fn cx_latency_is_on_the_paper_scale() {
        let e = gen(&[inst(GateKind::Cx, &[0, 1])]);
        // Content π/4 at 2π·0.02 GHz ≈ 6.25 ns ≈ 100 dt (+ base).
        assert!(e.latency_dt > 80 && e.latency_dt < 180, "{e:?}");
    }

    #[test]
    fn single_qubit_gates_are_faster_than_cx() {
        // T is a π/4 rotation: far below the coupler-limited CX time.
        let t = gen(&[inst(GateKind::T, &[0])]);
        let h = gen(&[inst(GateKind::H, &[0])]); // π rotation
        let cx = gen(&[inst(GateKind::Cx, &[0, 1])]);
        assert!(t.latency_ns < cx.latency_ns / 2.0, "{t:?} vs {cx:?}");
        assert!(h.latency_ns < cx.latency_ns, "{h:?} vs {cx:?}");
        assert!(t.latency_ns < h.latency_ns);
    }

    #[test]
    fn observation1_merged_is_subadditive() {
        // H then CX merged vs generated separately (the paper's Fig. 2).
        let h = inst(GateKind::H, &[0]);
        let cx = inst(GateKind::Cx, &[0, 1]);
        let merged = gen(&[h.clone(), cx.clone()]);
        let separate = gen(&[h]).latency_ns + gen(&[cx]).latency_ns;
        assert!(
            merged.latency_ns < separate,
            "merged {} vs separate {}",
            merged.latency_ns,
            separate
        );
    }

    #[test]
    fn observation2_latency_grows_with_qubit_count() {
        let one = gen(&[inst(GateKind::X, &[0])]);
        let two = gen(&[inst(GateKind::Cx, &[0, 1])]);
        let three = gen(&[inst(GateKind::Cx, &[0, 1]), inst(GateKind::Cx, &[1, 2])]);
        assert!(one.latency_ns < two.latency_ns);
        assert!(two.latency_ns < three.latency_ns);
    }

    #[test]
    fn inverse_pair_collapses_to_base_cost() {
        // CX·CX = I: the merged pulse has no interaction content at all.
        let cx = inst(GateKind::Cx, &[0, 1]);
        let merged = gen(&[cx.clone(), cx.clone()]);
        let single = gen(&[cx]);
        assert!(
            merged.latency_ns < single.latency_ns / 2.0,
            "{merged:?} vs {single:?}"
        );
    }

    #[test]
    fn swap_sequence_matches_swap_content() {
        // Three alternating CX = SWAP: content 3π/4, bigger than one CX.
        let seq = [
            inst(GateKind::Cx, &[0, 1]),
            inst(GateKind::Cx, &[1, 0]),
            inst(GateKind::Cx, &[0, 1]),
        ];
        let merged = gen(&seq);
        let single = gen(&[inst(GateKind::Cx, &[0, 1])]);
        let separate: f64 = seq
            .iter()
            .map(|i| gen(std::slice::from_ref(i)).latency_ns)
            .sum();
        assert!(merged.latency_ns > single.latency_ns);
        assert!(merged.latency_ns < separate);
    }

    #[test]
    fn uncoupled_pair_pays_a_penalty() {
        // Qubits 0 and 2 on the grid are two hops apart.
        let adjacent = gen(&[inst(GateKind::Cx, &[0, 1])]);
        let distant = gen(&[inst(GateKind::Cx, &[0, 2])]);
        assert!(distant.latency_ns > 1.5 * adjacent.latency_ns);
    }

    #[test]
    fn estimates_are_deterministic() {
        let g = [inst(GateKind::H, &[3]), inst(GateKind::Cx, &[3, 4])];
        assert_eq!(gen(&g), gen(&g));
    }

    #[test]
    fn warm_start_reduces_cost_not_latency() {
        let dev = Device::grid5x5();
        let mut m = AnalyticModel::new();
        let g = [inst(GateKind::Cx, &[0, 1])];
        let cold = m.generate(&g, &dev, 0.999, None);
        let warm = m.generate(&g, &dev, 0.999, Some(0.05));
        assert!(warm.cost_units < cold.cost_units / 2.0);
        assert_eq!(warm.latency_dt, cold.latency_dt);
    }

    #[test]
    fn fidelity_meets_target() {
        let e = gen(&[inst(GateKind::Cx, &[0, 1])]);
        assert!(e.fidelity >= 0.999, "{e:?}");
        assert!(e.fidelity < 1.0);
    }

    #[test]
    fn typical_latencies_are_ordered() {
        let dev = Device::grid5x5();
        let m = AnalyticModel::new();
        let t1 = m.typical_latency_ns(1, &dev);
        let t2 = m.typical_latency_ns(2, &dev);
        let t3 = m.typical_latency_ns(3, &dev);
        assert!(t1 < t2 && t2 < t3);
    }

    #[test]
    fn toffoli_group_is_lowered_automatically() {
        // A raw CCX instruction is internally decomposed for costing.
        let e = gen(&[inst(GateKind::Ccx, &[0, 1, 2])]);
        // More than one CX worth of content plus the 3-qubit base cost.
        let cx = gen(&[inst(GateKind::Cx, &[0, 1])]);
        assert!(e.latency_ns > cx.latency_ns, "{e:?} vs {cx:?}");
    }
}
