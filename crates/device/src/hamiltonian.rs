//! Control-Hamiltonian construction for gate groups.
//!
//! The paper's Eq. (1): `H(t) = H₀ + Σ_k α_k(t)·H_k`. For the transmon
//! XY platform in the rotating frame the drift vanishes and the control
//! set is `{σx/2, σy/2}` per qubit plus `(σx⊗σx + σy⊗σy)/2` per coupler,
//! with the paper's amplitude limits. GRAPE optimizes the `α_k(t)`.

use crate::fingerprint::encode_namespaced;
use crate::spec::HardwareSpec;
use crate::topology::Topology;
use crate::tuning::{BackendTag, DeviceTuning};
use paqoc_math::{Matrix, C64};

/// One controllable term `α(t)·H` of the device Hamiltonian.
#[derive(Clone, Debug)]
pub struct ControlChannel {
    /// Human-readable channel name, e.g. `"x[0]"` or `"xy[0,2]"`.
    pub name: String,
    /// The Hermitian generator (dimensionless; the physical Hamiltonian
    /// is `2π·α(GHz)·operator` with time in ns).
    pub operator: Matrix,
    /// Amplitude bound `|α| ≤ max_amp` in GHz.
    pub max_amp: f64,
}

/// The drift plus control channels for a (sub)system of qubits.
#[derive(Clone, Debug)]
pub struct ControlSet {
    /// Number of qubits in the subsystem.
    pub num_qubits: usize,
    /// Drift Hamiltonian `H₀` (zero in the rotating frame).
    pub drift: Matrix,
    /// The control channels.
    pub channels: Vec<ControlChannel>,
}

impl ControlSet {
    /// Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        1 << self.num_qubits
    }
}

fn pauli_x() -> Matrix {
    Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
}

fn pauli_y() -> Matrix {
    Matrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]])
}

/// Embeds a single-qubit operator at position `q` of `n` qubits
/// (qubit 0 = least significant bit).
fn embed1(op: &Matrix, q: usize, n: usize) -> Matrix {
    let mut m = Matrix::identity(1);
    // Build I ⊗ … ⊗ op ⊗ … ⊗ I with the most significant qubit first.
    for k in (0..n).rev() {
        let factor = if k == q {
            op.clone()
        } else {
            Matrix::identity(2)
        };
        m = m.kron(&factor);
    }
    m
}

/// Builds the transmon-XY control set for `num_qubits` local qubits with
/// the given internal coupling `edges` (local indices).
///
/// # Panics
///
/// Panics if an edge endpoint is out of range.
pub fn transmon_xy_controls(
    num_qubits: usize,
    edges: &[(usize, usize)],
    spec: &HardwareSpec,
) -> ControlSet {
    let dim = 1 << num_qubits;
    let x = pauli_x();
    let y = pauli_y();
    let mut channels = Vec::new();
    for q in 0..num_qubits {
        channels.push(ControlChannel {
            name: format!("x[{q}]"),
            operator: embed1(&x, q, num_qubits).scaled(C64::real(0.5)),
            max_amp: spec.single_qubit_limit(),
        });
        channels.push(ControlChannel {
            name: format!("y[{q}]"),
            operator: embed1(&y, q, num_qubits).scaled(C64::real(0.5)),
            max_amp: spec.single_qubit_limit(),
        });
    }
    for &(a, b) in edges {
        assert!(
            a < num_qubits && b < num_qubits,
            "edge ({a},{b}) out of range"
        );
        let xx = embed1(&x, a, num_qubits).matmul(&embed1(&x, b, num_qubits));
        let yy = embed1(&y, a, num_qubits).matmul(&embed1(&y, b, num_qubits));
        channels.push(ControlChannel {
            name: format!("xy[{a},{b}]"),
            operator: (&xx + &yy).scaled(C64::real(0.5)),
            max_amp: spec.mu_max,
        });
    }
    ControlSet {
        num_qubits,
        drift: Matrix::zeros(dim, dim),
        channels,
    }
}

/// A simulated quantum device: coupling topology plus control limits.
///
/// # Examples
///
/// ```
/// use paqoc_device::Device;
/// let dev = Device::grid5x5();
/// assert_eq!(dev.topology().num_qubits(), 25);
/// let controls = dev.controls_for(&[0, 1]);
/// // 2 qubits × (x, y) + 1 coupler = 5 channels
/// assert_eq!(controls.channels.len(), 5);
/// ```
#[derive(Clone, Debug)]
pub struct Device {
    topology: Topology,
    spec: HardwareSpec,
    /// Cached [`Device::fingerprint`], computed once at construction:
    /// the pulse table asks for it on every hot-path key build, and
    /// re-hashing the full edge list there is measurable.
    fingerprint: u64,
    /// Per-qubit / per-coupler calibration overlay. `None` means every
    /// per-site query answers the spec-level value exactly (the legacy
    /// bit-identical path).
    tuning: Option<DeviceTuning>,
    /// Identity of the backend that built this device; `None` for
    /// devices built directly from topology + spec (the paper grid).
    tag: Option<BackendTag>,
}

fn compute_fingerprint(topology: &Topology, spec: &HardwareSpec) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(topology.num_qubits() as u64).to_le_bytes());
    for &(a, b) in topology.edges() {
        eat(&(a as u64).to_le_bytes());
        eat(&(b as u64).to_le_bytes());
    }
    for field in [
        spec.mu_max,
        spec.single_qubit_factor,
        spec.dt_ns,
        spec.t1_us,
        spec.t2_us,
    ] {
        eat(&field.to_bits().to_le_bytes());
    }
    h
}

impl Device {
    /// Creates a device from a topology and hardware spec.
    pub fn new(topology: Topology, spec: HardwareSpec) -> Self {
        let fingerprint = compute_fingerprint(&topology, &spec);
        Device {
            topology,
            spec,
            fingerprint,
            tuning: None,
            tag: None,
        }
    }

    /// Creates a calibrated device owned by a named backend.
    ///
    /// The fingerprint becomes backend-namespaced (see
    /// [`crate::fingerprint`]): the namespace id and the snapshot's
    /// 16-bit digest are packed into the top bits, and the payload folds
    /// the topology + spec + calibration hash. Any drifted calibration
    /// field rotates the fingerprint — and with it every composite
    /// cache/store key — so stale pulses are never served.
    pub fn with_tuning(
        topology: Topology,
        spec: HardwareSpec,
        tuning: DeviceTuning,
        backend_name: &str,
        ns_id: u8,
    ) -> Self {
        let base = compute_fingerprint(&topology, &spec);
        // Fold the calibration into the device hash so two snapshots
        // with equal cal_id digests still differ in the payload bits.
        let device_hash = base ^ tuning.content_hash().rotate_left(17);
        let cal_id = tuning.cal_id();
        let fingerprint = encode_namespaced(ns_id, cal_id, device_hash);
        Device {
            topology,
            spec,
            fingerprint,
            tuning: Some(tuning),
            tag: Some(BackendTag {
                name: backend_name.to_string(),
                ns_id,
                cal_id,
            }),
        }
    }

    /// The paper's evaluation platform: 5×5 grid, transmon-XY limits.
    pub fn grid5x5() -> Self {
        Device::new(Topology::grid(5, 5), HardwareSpec::transmon_xy())
    }

    /// A small line device, convenient for tests and examples.
    pub fn line(n: usize) -> Self {
        Device::new(Topology::line(n), HardwareSpec::transmon_xy())
    }

    /// The coupling topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The control-field limits.
    pub fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    /// A stable 64-bit fingerprint of everything that determines pulse
    /// shapes on this device: the coupling topology and every
    /// [`HardwareSpec`] field (by exact f64 bit pattern).
    ///
    /// Two devices with equal fingerprints produce identical pulses for
    /// identical gate groups, so the fingerprint is the cache-safety key
    /// for both the in-process pulse table and the persistent pulse
    /// store: a store written under a different fingerprint must be
    /// rejected, not reused. FNV-1a is used because the workspace is
    /// dependency-free and the input is tiny and attacker-free.
    ///
    /// Computed once at construction and served from a field, so
    /// per-lookup cache-key builds pay a load, not an edge-list hash.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The calibration overlay, when this device carries one.
    pub fn tuning(&self) -> Option<&DeviceTuning> {
        self.tuning.as_ref()
    }

    /// The backend identity tag, when this device was built by a
    /// registered backend.
    pub fn tag(&self) -> Option<&BackendTag> {
        self.tag.as_ref()
    }

    /// Name of the backend that owns this device. Untagged devices —
    /// [`Device::new`], [`Device::grid5x5`], [`Device::line`] — answer
    /// `"transmon-grid"`, the paper's platform.
    pub fn backend_name(&self) -> &str {
        match &self.tag {
            Some(tag) => &tag.name,
            None => "transmon-grid",
        }
    }

    /// Single-qubit drive limit of qubit `q`, GHz. Equals
    /// `spec().single_qubit_limit()` exactly on untuned devices.
    pub fn single_qubit_limit_for(&self, q: usize) -> f64 {
        match &self.tuning {
            None => self.spec.single_qubit_limit(),
            Some(t) => self.spec.single_qubit_limit() * t.qubit(q).drive_scale,
        }
    }

    /// Coupler amplitude limit between `a` and `b`, GHz. Equals
    /// `spec().mu_max` exactly on untuned devices.
    pub fn coupler_limit(&self, a: usize, b: usize) -> f64 {
        match &self.tuning {
            None => self.spec.mu_max,
            Some(t) => self.spec.mu_max * t.coupler(a, b),
        }
    }

    /// Maximum angular rotation rate of qubit `q`'s drive, rad/ns.
    /// Delegates to `spec().single_qubit_rate()` on untuned devices so
    /// the legacy arithmetic is reproduced bit-for-bit.
    pub fn single_qubit_rate_for(&self, q: usize) -> f64 {
        match &self.tuning {
            None => self.spec.single_qubit_rate(),
            Some(_) => 2.0 * std::f64::consts::PI * self.single_qubit_limit_for(q),
        }
    }

    /// Maximum nonlocal-content rate of the coupler between `a` and
    /// `b`, rad/ns. Delegates to `spec().coupler_rate()` on untuned
    /// devices so the legacy arithmetic is reproduced bit-for-bit.
    pub fn coupler_rate_between(&self, a: usize, b: usize) -> f64 {
        match &self.tuning {
            None => self.spec.coupler_rate(),
            Some(_) => 2.0 * std::f64::consts::PI * self.coupler_limit(a, b),
        }
    }

    /// Builds the control set for a group of *physical* qubits, relabeled
    /// to local indices `0..k` in the order given. Couplers are included
    /// for every topology edge internal to the group. On a calibrated
    /// device each channel's `max_amp` carries its qubit's / coupler's
    /// own limit; untuned devices take the legacy path untouched.
    pub fn controls_for(&self, qubits: &[usize]) -> ControlSet {
        let local = |q: usize| qubits.iter().position(|&p| p == q).expect("internal");
        let physical_edges = self.topology.induced_edges(qubits);
        let edges: Vec<(usize, usize)> = physical_edges
            .iter()
            .map(|&(a, b)| (local(a), local(b)))
            .collect();
        let mut set = transmon_xy_controls(qubits.len(), &edges, &self.spec);
        if self.tuning.is_some() {
            // Per-site limits: x[i]/y[i] channels appear in qubit order
            // (two per qubit), then one xy channel per induced edge.
            let mut it = set.channels.iter_mut();
            for &q in qubits {
                for _ in 0..2 {
                    if let Some(ch) = it.next() {
                        ch.max_amp = self.single_qubit_limit_for(q);
                    }
                }
            }
            for (ch, &(a, b)) in it.zip(physical_edges.iter()) {
                ch.max_amp = self.coupler_limit(a, b);
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_are_hermitian_with_paper_limits() {
        let spec = HardwareSpec::transmon_xy();
        let set = transmon_xy_controls(2, &[(0, 1)], &spec);
        assert_eq!(set.channels.len(), 5);
        for ch in &set.channels {
            assert!(ch.operator.is_hermitian(1e-12), "{}", ch.name);
        }
        assert!((set.channels[0].max_amp - 0.1).abs() < 1e-12);
        assert!((set.channels[4].max_amp - 0.02).abs() < 1e-12);
        assert_eq!(set.channels[4].name, "xy[0,1]");
    }

    #[test]
    fn drift_is_zero_in_rotating_frame() {
        let set = transmon_xy_controls(1, &[], &HardwareSpec::transmon_xy());
        assert!(set.drift.max_abs() < 1e-15);
        assert_eq!(set.dim(), 2);
    }

    #[test]
    fn xy_coupler_swaps_single_excitations() {
        // (XX+YY)/2 maps |01⟩ ↔ |10⟩ and annihilates |00⟩, |11⟩.
        let set = transmon_xy_controls(2, &[(0, 1)], &HardwareSpec::transmon_xy());
        let xy = &set.channels[4].operator;
        assert!((xy[(1, 2)].re - 1.0).abs() < 1e-12);
        assert!((xy[(2, 1)].re - 1.0).abs() < 1e-12);
        assert!(xy[(0, 0)].abs() < 1e-12);
        assert!(xy[(3, 3)].abs() < 1e-12);
    }

    #[test]
    fn controls_for_uses_induced_coupling() {
        let dev = Device::grid5x5();
        // Qubits 0,1,2 are a connected row: two couplers.
        let row = dev.controls_for(&[0, 1, 2]);
        assert_eq!(
            row.channels
                .iter()
                .filter(|c| c.name.starts_with("xy"))
                .count(),
            2
        );
        // Qubits 0 and 2 are not adjacent: no coupler.
        let gap = dev.controls_for(&[0, 2]);
        assert_eq!(
            gap.channels
                .iter()
                .filter(|c| c.name.starts_with("xy"))
                .count(),
            0
        );
    }

    #[test]
    fn fingerprint_separates_topology_and_spec_changes() {
        let base = Device::grid5x5();
        assert_eq!(base.fingerprint(), Device::grid5x5().fingerprint());
        assert_ne!(base.fingerprint(), Device::line(25).fingerprint());
        let mut spec = HardwareSpec::transmon_xy();
        spec.mu_max = 0.021;
        let tweaked = Device::new(Topology::grid(5, 5), spec);
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn tuned_device_namespaces_fingerprint_and_patches_limits() {
        use crate::fingerprint::{decode_fingerprint, FingerprintKind};
        use crate::tuning::DeviceTuning;
        let mut tuning = DeviceTuning::identity(25);
        tuning.qubits[1].drive_scale = 0.5;
        tuning.coupler_scale.insert((0, 1), 0.75);
        let dev = Device::with_tuning(
            Topology::grid(5, 5),
            HardwareSpec::transmon_xy(),
            tuning,
            "heavy-hex",
            crate::fingerprint::NS_HEAVY_HEX,
        );
        assert_eq!(dev.backend_name(), "heavy-hex");
        match decode_fingerprint(dev.fingerprint()) {
            FingerprintKind::Namespaced { ns_id, cal_id } => {
                assert_eq!(ns_id, crate::fingerprint::NS_HEAVY_HEX);
                assert_eq!(cal_id, dev.tag().expect("tag").cal_id);
            }
            FingerprintKind::Legacy => panic!("tuned device must namespace its fingerprint"),
        }
        // Per-site limits flow into the control channels.
        let set = dev.controls_for(&[0, 1]);
        let amp = |name: &str| {
            set.channels
                .iter()
                .find(|c| c.name == name)
                .expect(name)
                .max_amp
        };
        assert!((amp("x[0]") - 0.1).abs() < 1e-12);
        assert!((amp("x[1]") - 0.05).abs() < 1e-12, "drive_scale 0.5");
        assert!((amp("xy[0,1]") - 0.015).abs() < 1e-12, "coupler_scale 0.75");
        // And into the analytic rates.
        assert!(dev.single_qubit_rate_for(1) < dev.single_qubit_rate_for(0));
        assert!(dev.coupler_rate_between(0, 1) < dev.spec().coupler_rate());
    }

    #[test]
    fn untuned_device_keeps_legacy_fingerprint_and_rates() {
        let dev = Device::grid5x5();
        assert!(dev.tuning().is_none() && dev.tag().is_none());
        assert_eq!(dev.backend_name(), "transmon-grid");
        assert!(!crate::fingerprint::is_namespaced(dev.fingerprint()));
        // Per-site queries must be the spec values bit-for-bit.
        assert_eq!(
            dev.single_qubit_rate_for(7).to_bits(),
            dev.spec().single_qubit_rate().to_bits()
        );
        assert_eq!(
            dev.coupler_rate_between(0, 1).to_bits(),
            dev.spec().coupler_rate().to_bits()
        );
        assert_eq!(
            dev.coupler_limit(3, 4).to_bits(),
            dev.spec().mu_max.to_bits()
        );
    }

    #[test]
    fn calibration_drift_rotates_the_fingerprint() {
        use crate::tuning::DeviceTuning;
        let make = |t1: f64| {
            let mut tuning = DeviceTuning::identity(25);
            tuning.qubits[0].t1_us = t1;
            Device::with_tuning(
                Topology::grid(5, 5),
                HardwareSpec::transmon_xy(),
                tuning,
                "heavy-hex",
                crate::fingerprint::NS_HEAVY_HEX,
            )
        };
        let (a, b) = (make(100.0), make(93.0));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), make(100.0).fingerprint(), "deterministic");
    }

    #[test]
    fn local_relabeling_follows_group_order() {
        let dev = Device::grid5x5();
        // Group [5, 0]: physical edge (0,5) becomes local (1,0) → "xy[1,0]"
        // normalized in construction order.
        let set = dev.controls_for(&[5, 0]);
        let names: Vec<&str> = set.channels.iter().map(|c| c.name.as_str()).collect();
        assert!(
            names.contains(&"xy[1,0]") || names.contains(&"xy[0,1]"),
            "{names:?}"
        );
    }
}
