//! Backend-namespaced device fingerprints.
//!
//! The original fingerprint (PR 4) was a raw FNV-1a hash of topology +
//! [`crate::HardwareSpec`]: perfect for cache safety, opaque for
//! operations. A multi-backend store needs more: `paqoc-store inspect`
//! should say *which backend* and *which calibration snapshot* a file
//! belongs to, and a calibration drift should rotate the namespace so
//! stale pulses are invalidated instead of served.
//!
//! Calibrated backends therefore pack structure into the 64 bits:
//!
//! ```text
//! 63      56 55  52 51            36 35                      0
//! +--------+------+----------------+-------------------------+
//! | 0xB5   | ns   | cal_id (16 b)  | folded device hash (36b) |
//! +--------+------+----------------+-------------------------+
//! ```
//!
//! * Bits 63..56 — the [`NAMESPACE_MAGIC`] tag. Legacy fingerprints are
//!   raw hashes; the paper-grid device hashes to `0x91…`, so the tag
//!   byte cleanly separates the two populations in practice. (A legacy
//!   hash *could* collide with the tag — the composite cache keys stay
//!   fingerprint-prefixed, so a collision can relax store-file
//!   cohabitation but can never cross-serve a pulse.)
//! * Bits 55..52 — the backend namespace id (see [`namespace_name`]).
//! * Bits 51..36 — a 16-bit digest of the calibration snapshot. A
//!   drifted snapshot changes `cal_id`, which changes the fingerprint,
//!   which rotates every composite cache key: old entries become
//!   unreachable and age out by LFU instead of being served.
//! * Bits 35..0 — the full device hash (topology + spec + calibration)
//!   folded to 36 bits, preserving cache-safety entropy.
//!
//! Untagged devices ([`crate::Device::new`] and friends) keep the raw
//! 64-bit hash bit-for-bit — the paper grid's stores, benches and dumps
//! are unchanged by this scheme existing.

/// Tag byte (bits 63..56) marking a backend-namespaced fingerprint.
pub const NAMESPACE_MAGIC: u8 = 0xB5;

/// Namespace id of the IBM-style heavy-hex backend.
pub const NS_HEAVY_HEX: u8 = 1;
/// Namespace id of the tunable-coupler backend.
pub const NS_TUNABLE_COUPLER: u8 = 2;

/// What a 64-bit device fingerprint decodes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FingerprintKind {
    /// A raw FNV-1a hash (the paper grid and every untagged device).
    Legacy,
    /// A backend-namespaced fingerprint.
    Namespaced {
        /// Backend namespace id (bits 55..52).
        ns_id: u8,
        /// Calibration-snapshot digest (bits 51..36).
        cal_id: u16,
    },
}

/// Folds a 64-bit hash into the 36-bit payload field.
fn fold36(h: u64) -> u64 {
    (h ^ (h >> 36)) & 0xF_FFFF_FFFF
}

/// Packs a namespaced fingerprint. `ns_id` must fit in 4 bits.
///
/// # Panics
///
/// Panics if `ns_id >= 16`.
pub fn encode_namespaced(ns_id: u8, cal_id: u16, device_hash: u64) -> u64 {
    assert!(ns_id < 16, "namespace id {ns_id} does not fit in 4 bits");
    ((NAMESPACE_MAGIC as u64) << 56)
        | (((ns_id & 0xF) as u64) << 52)
        | ((cal_id as u64) << 36)
        | fold36(device_hash)
}

/// Decodes a fingerprint into its kind.
pub fn decode_fingerprint(fp: u64) -> FingerprintKind {
    if (fp >> 56) as u8 == NAMESPACE_MAGIC {
        FingerprintKind::Namespaced {
            ns_id: ((fp >> 52) & 0xF) as u8,
            cal_id: ((fp >> 36) & 0xFFFF) as u16,
        }
    } else {
        FingerprintKind::Legacy
    }
}

/// `true` when the fingerprint carries the namespace tag.
pub fn is_namespaced(fp: u64) -> bool {
    matches!(decode_fingerprint(fp), FingerprintKind::Namespaced { .. })
}

/// Human name of a backend namespace id, for CLI/inspect output.
pub fn namespace_name(ns_id: u8) -> Option<&'static str> {
    match ns_id {
        NS_HEAVY_HEX => Some("heavy-hex"),
        NS_TUNABLE_COUPLER => Some("tunable-coupler"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_namespace_and_cal_id() {
        let fp = encode_namespaced(NS_HEAVY_HEX, 0xBEEF, 0x0123_4567_89AB_CDEF);
        assert_eq!(
            decode_fingerprint(fp),
            FingerprintKind::Namespaced {
                ns_id: NS_HEAVY_HEX,
                cal_id: 0xBEEF
            }
        );
        assert!(is_namespaced(fp));
    }

    #[test]
    fn legacy_fingerprints_decode_as_legacy() {
        // The paper grid hashes to 0x91… — not the namespace tag.
        for fp in [0u64, 0x9182_8249_684c_0a3e, u64::MAX >> 8] {
            assert_eq!(decode_fingerprint(fp), FingerprintKind::Legacy, "{fp:#x}");
            assert!(!is_namespaced(fp));
        }
    }

    #[test]
    fn cal_id_change_rotates_the_fingerprint() {
        let a = encode_namespaced(NS_HEAVY_HEX, 1, 0xABCD);
        let b = encode_namespaced(NS_HEAVY_HEX, 2, 0xABCD);
        assert_ne!(a, b);
        // Namespace and payload survive either way.
        assert!(is_namespaced(a) && is_namespaced(b));
    }

    #[test]
    fn namespace_registry_names_the_known_backends() {
        assert_eq!(namespace_name(NS_HEAVY_HEX), Some("heavy-hex"));
        assert_eq!(namespace_name(NS_TUNABLE_COUPLER), Some("tunable-coupler"));
        assert_eq!(namespace_name(0), None);
        assert_eq!(namespace_name(9), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_namespace_id_panics() {
        encode_namespaced(16, 0, 0);
    }
}
