//! The gate vocabulary: every named operation a circuit may contain.
//!
//! Gates are *descriptions*; their numeric semantics live in
//! [`GateKind::unitary`]. Rotation angles carry an optional symbolic tag
//! ([`Angle`]) so that parameterized circuits keep structural identity for
//! the frequent-subcircuit miner ("rz(a)" matches "rz(a)" but not
//! "rz(b)"), exactly as the paper's node-labeling scheme requires.

use paqoc_math::{Matrix, C64};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};
use std::fmt;

/// A rotation angle: a concrete value plus an optional symbolic label.
///
/// The numeric `value` drives pulse generation; the `symbol`, when
/// present, drives structural labels so parameterized circuits mine
/// correctly.
///
/// # Examples
///
/// ```
/// use paqoc_circuit::Angle;
/// let a = Angle::sym("gamma", 0.7);
/// assert_eq!(a.label(), "gamma");
/// assert_eq!(Angle::new(0.5).label(), "0.5000");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Angle {
    /// Concrete numeric value in radians.
    pub value: f64,
    /// Optional symbolic name (e.g. `"gamma"` for a variational parameter).
    pub symbol: Option<String>,
}

impl Angle {
    /// A concrete, unnamed angle.
    pub fn new(value: f64) -> Self {
        Angle {
            value,
            symbol: None,
        }
    }

    /// A symbolic angle with a concrete fallback value.
    pub fn sym(symbol: impl Into<String>, value: f64) -> Self {
        Angle {
            value,
            symbol: Some(symbol.into()),
        }
    }

    /// The mining label: the symbol when present, else the value to 4
    /// decimal places (enough to separate distinct constants, coarse
    /// enough to identify recurring ones across float noise).
    pub fn label(&self) -> String {
        match &self.symbol {
            Some(s) => s.clone(),
            None => format!("{:.4}", self.value),
        }
    }

    /// Derives a scaled angle, preserving symbolic identity
    /// (`gamma → gamma*0.5`). Used by decomposition passes.
    pub fn scaled(&self, factor: f64) -> Angle {
        Angle {
            value: self.value * factor,
            symbol: self.symbol.as_ref().map(|s| format!("{s}*{factor}")),
        }
    }
}

impl From<f64> for Angle {
    fn from(value: f64) -> Self {
        Angle::new(value)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The named gate set supported by the IR.
///
/// One-, two- and three-qubit gates; parameterized kinds state how many
/// [`Angle`] parameters they take via [`GateKind::num_params`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the documentation (standard gate names)
pub enum GateKind {
    Id,
    X,
    Y,
    Z,
    H,
    S,
    Sdg,
    T,
    Tdg,
    Sx,
    Sxdg,
    Rx,
    Ry,
    Rz,
    /// Phase gate `P(θ) = diag(1, e^{iθ})` (a.k.a. U1).
    Phase,
    U2,
    U3,
    Cx,
    Cy,
    Cz,
    Ch,
    /// Controlled-phase gate (a.k.a. CU1 / CPHASE).
    CPhase,
    Crz,
    Rxx,
    Ryy,
    Rzz,
    Swap,
    ISwap,
    /// Toffoli.
    Ccx,
    Ccz,
    /// Fredkin.
    Cswap,
}

impl GateKind {
    /// Lower-case QASM-style mnemonic.
    pub fn name(self) -> &'static str {
        use GateKind::*;
        match self {
            Id => "id",
            X => "x",
            Y => "y",
            Z => "z",
            H => "h",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            Sx => "sx",
            Sxdg => "sxdg",
            Rx => "rx",
            Ry => "ry",
            Rz => "rz",
            Phase => "p",
            U2 => "u2",
            U3 => "u3",
            Cx => "cx",
            Cy => "cy",
            Cz => "cz",
            Ch => "ch",
            CPhase => "cp",
            Crz => "crz",
            Rxx => "rxx",
            Ryy => "ryy",
            Rzz => "rzz",
            Swap => "swap",
            ISwap => "iswap",
            Ccx => "ccx",
            Ccz => "ccz",
            Cswap => "cswap",
        }
    }

    /// Parses a QASM-style mnemonic.
    pub fn from_name(name: &str) -> Option<GateKind> {
        use GateKind::*;
        Some(match name {
            "id" => Id,
            "x" => X,
            "y" => Y,
            "z" => Z,
            "h" => H,
            "s" => S,
            "sdg" => Sdg,
            "t" => T,
            "tdg" => Tdg,
            "sx" => Sx,
            "sxdg" => Sxdg,
            "rx" => Rx,
            "ry" => Ry,
            "rz" => Rz,
            "p" | "u1" => Phase,
            "u2" => U2,
            "u3" | "u" => U3,
            "cx" | "cnot" => Cx,
            "cy" => Cy,
            "cz" => Cz,
            "ch" => Ch,
            "cp" | "cu1" => CPhase,
            "crz" => Crz,
            "rxx" => Rxx,
            "ryy" => Ryy,
            "rzz" => Rzz,
            "swap" => Swap,
            "iswap" => ISwap,
            "ccx" | "toffoli" => Ccx,
            "ccz" => Ccz,
            "cswap" | "fredkin" => Cswap,
            _ => return None,
        })
    }

    /// Number of qubits the gate acts on.
    pub fn num_qubits(self) -> usize {
        use GateKind::*;
        match self {
            Id | X | Y | Z | H | S | Sdg | T | Tdg | Sx | Sxdg | Rx | Ry | Rz | Phase | U2 | U3 => {
                1
            }
            Cx | Cy | Cz | Ch | CPhase | Crz | Rxx | Ryy | Rzz | Swap | ISwap => 2,
            Ccx | Ccz | Cswap => 3,
        }
    }

    /// Number of angle parameters the gate takes.
    pub fn num_params(self) -> usize {
        use GateKind::*;
        match self {
            Rx | Ry | Rz | Phase | CPhase | Crz | Rxx | Ryy | Rzz => 1,
            U2 => 2,
            U3 => 3,
            _ => 0,
        }
    }

    /// `true` when the gate has an asymmetric control/target role (so the
    /// miner must label shared-qubit edges with the role indices).
    pub fn has_control_roles(self) -> bool {
        use GateKind::*;
        matches!(self, Cx | Cy | Cz | Ch | CPhase | Crz | Ccx | Ccz | Cswap)
    }

    /// `true` when the gate is symmetric under exchange of its qubits
    /// (its unitary is invariant under the qubit swap permutation).
    pub fn is_symmetric(self) -> bool {
        use GateKind::*;
        matches!(self, Cz | CPhase | Rxx | Ryy | Rzz | Swap | ISwap | Ccz)
    }

    /// The gate's unitary for the given parameters.
    ///
    /// Convention: the first listed qubit is the most-significant bit of
    /// the matrix index, so `Cx` is the textbook
    /// `|0⟩⟨0|⊗I + |1⟩⟨1|⊗X` block matrix.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_params()`.
    pub fn unitary(self, params: &[Angle]) -> Matrix {
        use GateKind::*;
        assert_eq!(
            params.len(),
            self.num_params(),
            "{} takes {} parameter(s)",
            self.name(),
            self.num_params()
        );
        let p = |i: usize| params[i].value;
        match self {
            Id => Matrix::identity(2),
            X => m2(&[0.0, 1.0, 1.0, 0.0]),
            Y => Matrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]]),
            Z => Matrix::diag(&[C64::ONE, C64::real(-1.0)]),
            H => {
                let s = std::f64::consts::FRAC_1_SQRT_2;
                m2(&[s, s, s, -s])
            }
            S => Matrix::diag(&[C64::ONE, C64::I]),
            Sdg => Matrix::diag(&[C64::ONE, -C64::I]),
            T => Matrix::diag(&[C64::ONE, C64::cis(FRAC_PI_4)]),
            Tdg => Matrix::diag(&[C64::ONE, C64::cis(-FRAC_PI_4)]),
            Sx => {
                let a = C64::new(0.5, 0.5);
                let b = C64::new(0.5, -0.5);
                Matrix::from_rows(&[&[a, b], &[b, a]])
            }
            Sxdg => {
                let a = C64::new(0.5, -0.5);
                let b = C64::new(0.5, 0.5);
                Matrix::from_rows(&[&[a, b], &[b, a]])
            }
            Rx => rot(p(0), Axis::X),
            Ry => rot(p(0), Axis::Y),
            Rz => rot(p(0), Axis::Z),
            Phase => Matrix::diag(&[C64::ONE, C64::cis(p(0))]),
            U2 => u3_matrix(FRAC_PI_2, p(0), p(1)),
            U3 => u3_matrix(p(0), p(1), p(2)),
            Cx => controlled(&X.unitary(&[])),
            Cy => controlled(&Y.unitary(&[])),
            Cz => controlled(&Z.unitary(&[])),
            Ch => controlled(&H.unitary(&[])),
            CPhase => Matrix::diag(&[C64::ONE, C64::ONE, C64::ONE, C64::cis(p(0))]),
            Crz => controlled(&rot(p(0), Axis::Z)),
            Rxx => two_axis_rotation(p(0), Axis::X),
            Ryy => two_axis_rotation(p(0), Axis::Y),
            Rzz => Matrix::diag(&[
                C64::cis(-p(0) / 2.0),
                C64::cis(p(0) / 2.0),
                C64::cis(p(0) / 2.0),
                C64::cis(-p(0) / 2.0),
            ]),
            Swap => {
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = C64::ONE;
                m[(1, 2)] = C64::ONE;
                m[(2, 1)] = C64::ONE;
                m[(3, 3)] = C64::ONE;
                m
            }
            ISwap => {
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = C64::ONE;
                m[(1, 2)] = C64::I;
                m[(2, 1)] = C64::I;
                m[(3, 3)] = C64::ONE;
                m
            }
            Ccx => controlled_n(&X.unitary(&[]), 2),
            Ccz => controlled_n(&Z.unitary(&[]), 2),
            Cswap => controlled(&Swap.unitary(&[])),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

enum Axis {
    X,
    Y,
    Z,
}

/// Builds a real 2×2 matrix from row-major entries.
fn m2(v: &[f64; 4]) -> Matrix {
    Matrix::from_rows(&[
        &[C64::real(v[0]), C64::real(v[1])],
        &[C64::real(v[2]), C64::real(v[3])],
    ])
}

/// Single-qubit rotation `exp(-iθσ/2)` around the given axis.
fn rot(theta: f64, axis: Axis) -> Matrix {
    let c = C64::real((theta / 2.0).cos());
    let s = (theta / 2.0).sin();
    match axis {
        Axis::X => Matrix::from_rows(&[&[c, C64::new(0.0, -s)], &[C64::new(0.0, -s), c]]),
        Axis::Y => Matrix::from_rows(&[&[c, C64::real(-s)], &[C64::real(s), c]]),
        Axis::Z => Matrix::diag(&[C64::cis(-theta / 2.0), C64::cis(theta / 2.0)]),
    }
}

/// `U3(θ, φ, λ)` in the OpenQASM convention.
fn u3_matrix(theta: f64, phi: f64, lambda: f64) -> Matrix {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Matrix::from_rows(&[
        &[C64::real(c), -C64::cis(lambda) * s],
        &[C64::cis(phi) * s, C64::cis(phi + lambda) * c],
    ])
}

/// Promotes a `d×d` unitary to its singly-controlled `2d×2d` version,
/// control as the most-significant bit.
fn controlled(u: &Matrix) -> Matrix {
    let d = u.rows();
    let mut m = Matrix::identity(2 * d);
    for i in 0..d {
        for j in 0..d {
            m[(d + i, d + j)] = u[(i, j)];
        }
    }
    m
}

/// `n`-controlled version of a unitary (controls as most-significant bits).
fn controlled_n(u: &Matrix, n_controls: usize) -> Matrix {
    let mut m = u.clone();
    for _ in 0..n_controls {
        m = controlled(&m);
    }
    m
}

/// Two-qubit rotation `exp(-iθ σ⊗σ / 2)` for X or Y axes.
fn two_axis_rotation(theta: f64, axis: Axis) -> Matrix {
    let sigma = match axis {
        Axis::X => GateKind::X.unitary(&[]),
        Axis::Y => GateKind::Y.unitary(&[]),
        Axis::Z => GateKind::Z.unitary(&[]),
    };
    let gen = sigma.kron(&sigma).scaled(C64::new(0.0, -theta / 2.0));
    paqoc_math::expm(&gen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_math::trace_fidelity;

    #[test]
    fn every_kind_roundtrips_through_name() {
        use GateKind::*;
        for k in [
            Id, X, Y, Z, H, S, Sdg, T, Tdg, Sx, Sxdg, Rx, Ry, Rz, Phase, U2, U3, Cx, Cy, Cz, Ch,
            CPhase, Crz, Rxx, Ryy, Rzz, Swap, ISwap, Ccx, Ccz, Cswap,
        ] {
            assert_eq!(GateKind::from_name(k.name()), Some(k), "{k:?}");
        }
        assert_eq!(GateKind::from_name("nope"), None);
    }

    #[test]
    fn all_unitaries_are_unitary() {
        use GateKind::*;
        let th = [Angle::new(0.713)];
        let th2 = [Angle::new(0.713), Angle::new(1.2)];
        let th3 = [Angle::new(0.713), Angle::new(1.2), Angle::new(-0.4)];
        let cases: Vec<(GateKind, &[Angle])> = vec![
            (Id, &[]),
            (X, &[]),
            (Y, &[]),
            (Z, &[]),
            (H, &[]),
            (S, &[]),
            (Sdg, &[]),
            (T, &[]),
            (Tdg, &[]),
            (Sx, &[]),
            (Sxdg, &[]),
            (Rx, &th),
            (Ry, &th),
            (Rz, &th),
            (Phase, &th),
            (U2, &th2),
            (U3, &th3),
            (Cx, &[]),
            (Cy, &[]),
            (Cz, &[]),
            (Ch, &[]),
            (CPhase, &th),
            (Crz, &th),
            (Rxx, &th),
            (Ryy, &th),
            (Rzz, &th),
            (Swap, &[]),
            (ISwap, &[]),
            (Ccx, &[]),
            (Ccz, &[]),
            (Cswap, &[]),
        ];
        for (k, p) in cases {
            let u = k.unitary(p);
            assert_eq!(u.rows(), 1 << k.num_qubits(), "{k:?} dimension");
            assert!(u.is_unitary(1e-10), "{k:?} must be unitary");
        }
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = GateKind::Sx.unitary(&[]);
        let x = GateKind::X.unitary(&[]);
        assert!(sx.matmul(&sx).max_diff(&x) < 1e-12);
    }

    #[test]
    fn s_is_t_squared() {
        let t = GateKind::T.unitary(&[]);
        let s = GateKind::S.unitary(&[]);
        assert!(t.matmul(&t).max_diff(&s) < 1e-12);
    }

    #[test]
    fn daggers_cancel() {
        let s = GateKind::S.unitary(&[]);
        let sdg = GateKind::Sdg.unitary(&[]);
        assert!(s.matmul(&sdg).max_diff(&Matrix::identity(2)) < 1e-12);
        let sx = GateKind::Sx.unitary(&[]);
        let sxdg = GateKind::Sxdg.unitary(&[]);
        assert!(sx.matmul(&sxdg).max_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn rz_matches_phase_up_to_global_phase() {
        let theta = 1.234;
        let rz = GateKind::Rz.unitary(&[Angle::new(theta)]);
        let p = GateKind::Phase.unitary(&[Angle::new(theta)]);
        assert!(trace_fidelity(&rz, &p) > 1.0 - 1e-12);
    }

    #[test]
    fn cx_matrix_is_textbook() {
        let cx = GateKind::Cx.unitary(&[]);
        assert_eq!(cx[(0, 0)], C64::ONE);
        assert_eq!(cx[(1, 1)], C64::ONE);
        assert_eq!(cx[(2, 3)], C64::ONE);
        assert_eq!(cx[(3, 2)], C64::ONE);
        assert_eq!(cx[(2, 2)], C64::ZERO);
    }

    #[test]
    fn cphase_is_symmetric_in_qubits() {
        // diag gate: swapping qubits leaves it unchanged.
        let cp = GateKind::CPhase.unitary(&[Angle::new(0.9)]);
        let swap = GateKind::Swap.unitary(&[]);
        let swapped = swap.matmul(&cp).matmul(&swap);
        assert!(swapped.max_diff(&cp) < 1e-12);
        assert!(GateKind::CPhase.is_symmetric());
        assert!(!GateKind::Cx.is_symmetric());
    }

    #[test]
    fn ccx_flips_target_only_when_both_controls_set() {
        let ccx = GateKind::Ccx.unitary(&[]);
        // |110⟩ (index 6) ↔ |111⟩ (index 7)
        assert_eq!(ccx[(7, 6)], C64::ONE);
        assert_eq!(ccx[(6, 7)], C64::ONE);
        // |100⟩ stays
        assert_eq!(ccx[(4, 4)], C64::ONE);
    }

    #[test]
    fn u3_special_cases() {
        // U3(π/2, 0, π) = H up to global phase.
        let u = GateKind::U3.unitary(&[
            Angle::new(FRAC_PI_2),
            Angle::new(0.0),
            Angle::new(std::f64::consts::PI),
        ]);
        let h = GateKind::H.unitary(&[]);
        assert!(trace_fidelity(&u, &h) > 1.0 - 1e-12);
    }

    #[test]
    fn rzz_equals_cx_rz_cx() {
        // RZZ(θ) = CX·(I⊗RZ(θ))·CX up to global phase.
        let theta = 0.77;
        let cx = GateKind::Cx.unitary(&[]);
        let rz = Matrix::identity(2).kron(&GateKind::Rz.unitary(&[Angle::new(theta)]));
        let composed = cx.matmul(&rz).matmul(&cx);
        let rzz = GateKind::Rzz.unitary(&[Angle::new(theta)]);
        assert!(trace_fidelity(&composed, &rzz) > 1.0 - 1e-10);
    }

    #[test]
    fn angle_labels() {
        assert_eq!(Angle::new(FRAC_PI_2).label(), "1.5708");
        assert_eq!(Angle::sym("g", 1.0).label(), "g");
        assert_eq!(Angle::sym("g", 1.0).scaled(0.5).label(), "g*0.5");
        assert!((Angle::sym("g", 1.0).scaled(0.5).value - 0.5).abs() < 1e-15);
    }
}
