//! The circuit container: an ordered list of gate applications.

use crate::gate::{Angle, GateKind};
use paqoc_math::{Matrix, C64};
use std::fmt;

/// One gate applied to specific qubits.
///
/// # Examples
///
/// ```
/// use paqoc_circuit::{GateKind, Instruction};
/// let inst = Instruction::new(GateKind::Cx, vec![0, 1], vec![]);
/// assert_eq!(inst.label(), "cx");
/// assert_eq!(inst.qubits(), &[0, 1]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Instruction {
    gate: GateKind,
    qubits: Vec<usize>,
    params: Vec<Angle>,
}

impl Instruction {
    /// Creates an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the qubit or parameter count does not match the gate
    /// kind, or if a qubit repeats.
    pub fn new(gate: GateKind, qubits: Vec<usize>, params: Vec<Angle>) -> Self {
        assert_eq!(
            qubits.len(),
            gate.num_qubits(),
            "{} acts on {} qubit(s)",
            gate.name(),
            gate.num_qubits()
        );
        assert_eq!(
            params.len(),
            gate.num_params(),
            "{} takes {} parameter(s)",
            gate.name(),
            gate.num_params()
        );
        for (i, q) in qubits.iter().enumerate() {
            assert!(
                !qubits[..i].contains(q),
                "duplicate qubit {q} in {}",
                gate.name()
            );
        }
        Instruction {
            gate,
            qubits,
            params,
        }
    }

    /// The gate kind.
    pub fn gate(&self) -> GateKind {
        self.gate
    }

    /// The qubits the gate acts on, in gate order (first = most
    /// significant bit of the gate unitary; controls come first for
    /// controlled kinds).
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// The angle parameters.
    pub fn params(&self) -> &[Angle] {
        &self.params
    }

    /// The structural label used by the miner: gate name plus symbolic
    /// parameter labels, e.g. `"rz(gamma)"` or `"cx"`.
    pub fn label(&self) -> String {
        if self.params.is_empty() {
            self.gate.name().to_string()
        } else {
            let ps: Vec<String> = self.params.iter().map(Angle::label).collect();
            format!("{}({})", self.gate.name(), ps.join(","))
        }
    }

    /// The gate's unitary on its own qubits (dimension `2^k`).
    pub fn unitary(&self) -> Matrix {
        self.gate.unitary(&self.params)
    }

    /// Rewrites qubit indices through a mapping (e.g. logical→physical).
    ///
    /// # Panics
    ///
    /// Panics if a qubit is missing from the mapping domain.
    pub fn remapped(&self, map: impl Fn(usize) -> usize) -> Instruction {
        Instruction {
            gate: self.gate,
            qubits: self.qubits.iter().map(|&q| map(q)).collect(),
            params: self.params.clone(),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qs: Vec<String> = self.qubits.iter().map(|q| format!("q[{q}]")).collect();
        write!(f, "{} {}", self.label(), qs.join(","))
    }
}

/// An ordered quantum circuit over `num_qubits` qubits.
///
/// # Examples
///
/// ```
/// use paqoc_circuit::Circuit;
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.two_qubit_gate_count(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            instructions: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` when the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Appends an instruction.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of range.
    pub fn push(&mut self, inst: Instruction) -> &mut Self {
        for &q in inst.qubits() {
            assert!(
                q < self.num_qubits,
                "qubit {q} out of range for {}-qubit circuit",
                self.num_qubits
            );
        }
        self.instructions.push(inst);
        self
    }

    /// Appends a gate by kind.
    ///
    /// # Panics
    ///
    /// Panics on qubit/parameter arity mismatch or out-of-range qubits.
    pub fn apply(
        &mut self,
        gate: GateKind,
        qubits: impl Into<Vec<usize>>,
        params: impl Into<Vec<Angle>>,
    ) -> &mut Self {
        self.push(Instruction::new(gate, qubits.into(), params.into()))
    }

    /// Appends every instruction of `other` (qubit counts must agree).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than `self`.
    pub fn extend_from(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot extend a {}-qubit circuit from a {}-qubit one",
            self.num_qubits,
            other.num_qubits
        );
        for inst in other.iter() {
            self.push(inst.clone());
        }
        self
    }

    /// Counts gates acting on exactly `k` qubits.
    pub fn gate_count_by_arity(&self, k: usize) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate().num_qubits() == k)
            .count()
    }

    /// Number of single-qubit gates.
    pub fn one_qubit_gate_count(&self) -> usize {
        self.gate_count_by_arity(1)
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gate_count_by_arity(2)
    }

    /// Circuit depth (longest chain of qubit-sharing instructions).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut max = 0;
        for inst in &self.instructions {
            let l = inst.qubits().iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in inst.qubits() {
                level[q] = l;
            }
            max = max.max(l);
        }
        max
    }

    /// Builds the circuit's full `2^n × 2^n` unitary.
    ///
    /// Intended for small `n` (tests, pulse targets, pulse simulation);
    /// memory is `O(4^n)`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 12` (guardrail against accidental blowup).
    pub fn unitary(&self) -> Matrix {
        assert!(
            self.num_qubits <= 12,
            "full unitary limited to 12 qubits ({} requested)",
            self.num_qubits
        );
        let mut u = Matrix::identity(1 << self.num_qubits);
        for inst in &self.instructions {
            let g = embed_unitary(&inst.unitary(), inst.qubits(), self.num_qubits);
            u = g.matmul(&u);
        }
        u
    }

    /// Builds only the instructions in `indices` (in the given order) as a
    /// circuit over the same qubit register.
    pub fn subcircuit(&self, indices: &[usize]) -> Circuit {
        let mut c = Circuit::new(self.num_qubits);
        for &i in indices {
            c.push(self.instructions[i].clone());
        }
        c
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} gates):",
            self.num_qubits,
            self.len()
        )?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

/// Convenience gate-application methods mirroring the QASM mnemonics.
macro_rules! gate_methods {
    ($( $(#[$doc:meta])* $fn_name:ident => $kind:ident ( $($q:ident),+ $(; $($a:ident),+)? ) ),+ $(,)?) => {
        impl Circuit {
            $(
                $(#[$doc])*
                pub fn $fn_name(&mut self $(, $q: usize)+ $($(, $a: impl Into<Angle>)+)?) -> &mut Self {
                    self.apply(
                        GateKind::$kind,
                        vec![$($q),+],
                        vec![$($($a.into()),+)?],
                    )
                }
            )+
        }
    };
}

gate_methods! {
    /// Applies an X (NOT) gate.
    x => X(q),
    /// Applies a Y gate.
    y => Y(q),
    /// Applies a Z gate.
    z => Z(q),
    /// Applies a Hadamard gate.
    h => H(q),
    /// Applies an S gate.
    s => S(q),
    /// Applies an S† gate.
    sdg => Sdg(q),
    /// Applies a T gate.
    t => T(q),
    /// Applies a T† gate.
    tdg => Tdg(q),
    /// Applies a √X gate.
    sx => Sx(q),
    /// Applies an X rotation.
    rx => Rx(q; theta),
    /// Applies a Y rotation.
    ry => Ry(q; theta),
    /// Applies a Z rotation.
    rz => Rz(q; theta),
    /// Applies a phase gate `P(θ)`.
    p => Phase(q; theta),
    /// Applies a CNOT with `c` as control and `t` as target.
    cx => Cx(c, t),
    /// Applies a controlled-Y.
    cy => Cy(c, t),
    /// Applies a controlled-Z.
    cz => Cz(c, t),
    /// Applies a controlled-H.
    ch => Ch(c, t),
    /// Applies a controlled-phase gate.
    cp => CPhase(c, t; theta),
    /// Applies a controlled-RZ.
    crz => Crz(c, t; theta),
    /// Applies an XX rotation.
    rxx => Rxx(a, b; theta),
    /// Applies a ZZ rotation.
    rzz => Rzz(a, b; theta),
    /// Applies a SWAP.
    swap => Swap(a, b),
    /// Applies an iSWAP.
    iswap => ISwap(a, b),
    /// Applies a Toffoli with controls `c1`, `c2` and target `t`.
    ccx => Ccx(c1, c2, t),
    /// Applies a doubly-controlled Z.
    ccz => Ccz(c1, c2, t),
    /// Applies a Fredkin (controlled-SWAP).
    cswap => Cswap(c, a, b),
}

/// The product unitary of a gate sequence, expressed on the local qubit
/// frame `qubits` (first element = least significant bit... more
/// precisely, local index = position in `qubits`, and local index 0 is
/// bit 0 of the matrix index).
///
/// Earlier instructions are applied first. Every instruction qubit must
/// appear in `qubits`.
///
/// # Panics
///
/// Panics if an instruction touches a qubit outside `qubits`.
///
/// # Examples
///
/// ```
/// use paqoc_circuit::{combined_unitary, GateKind, Instruction};
/// let cx = Instruction::new(GateKind::Cx, vec![4, 7], vec![]);
/// let u = combined_unitary(&[cx], &[4, 7]);
/// assert_eq!(u.rows(), 4);
/// ```
pub fn combined_unitary(group: &[Instruction], qubits: &[usize]) -> Matrix {
    let n = qubits.len();
    let local = |q: usize| {
        qubits
            .iter()
            .position(|&p| p == q)
            .unwrap_or_else(|| panic!("qubit {q} not in group frame {qubits:?}"))
    };
    let mut u = Matrix::identity(1 << n);
    for inst in group {
        let locals: Vec<usize> = inst.qubits().iter().map(|&q| local(q)).collect();
        let g = embed_unitary(&inst.unitary(), &locals, n);
        u = g.matmul(&u);
    }
    u
}

/// Embeds a `2^k`-dimensional gate unitary acting on `qubits` into the
/// full `2^n`-dimensional register space.
///
/// Convention: register qubit `q` is bit `q` of the basis-state index
/// (qubit 0 = least significant); within the gate, the *first listed*
/// qubit is the most significant bit of the gate-matrix index.
///
/// # Panics
///
/// Panics if a qubit index repeats or exceeds `n`.
pub fn embed_unitary(gate: &Matrix, qubits: &[usize], n: usize) -> Matrix {
    let k = qubits.len();
    assert_eq!(gate.rows(), 1 << k, "gate dimension must be 2^(#qubits)");
    for (i, &q) in qubits.iter().enumerate() {
        assert!(q < n, "qubit {q} out of range");
        assert!(!qubits[..i].contains(&q), "duplicate qubit {q}");
    }
    let dim = 1usize << n;
    let mut out = Matrix::zeros(dim, dim);
    // For each full-space column c: decompose into (gate sub-index, rest),
    // then distribute gate column entries into rows r that share `rest`.
    for c in 0..dim {
        let mut gc = 0usize;
        for (pos, &q) in qubits.iter().enumerate() {
            let bit = (c >> q) & 1;
            // first listed qubit = most significant gate bit
            gc |= bit << (k - 1 - pos);
        }
        let rest = {
            let mut r = c;
            for &q in qubits {
                r &= !(1usize << q);
            }
            r
        };
        for gr in 0..(1 << k) {
            let amp = gate[(gr, gc)];
            if amp.re == 0.0 && amp.im == 0.0 {
                continue;
            }
            let mut r = rest;
            for (pos, &q) in qubits.iter().enumerate() {
                let bit = (gr >> (k - 1 - pos)) & 1;
                r |= bit << q;
            }
            out[(r, c)] = amp;
        }
    }
    out
}

/// Applies a gate unitary directly to a full-register state vector,
/// without materializing the embedded matrix. Used by the pulse
/// simulator for circuits too large for `Circuit::unitary`.
///
/// # Panics
///
/// Panics if `state.len() != 2^n` for some `n ≥ max(qubits)+1`, if the
/// gate dimension disagrees with `qubits.len()`, or on duplicate qubits.
pub fn apply_gate_to_state(gate: &Matrix, qubits: &[usize], state: &mut [C64]) {
    let k = qubits.len();
    assert_eq!(gate.rows(), 1 << k, "gate dimension must be 2^(#qubits)");
    assert!(state.len().is_power_of_two(), "state must have 2^n entries");
    let dim = state.len();
    for (i, &q) in qubits.iter().enumerate() {
        assert!((1usize << q) < dim, "qubit {q} out of range for state");
        assert!(!qubits[..i].contains(&q), "duplicate qubit {q}");
    }
    let sub = 1usize << k;
    let mask: usize = qubits.iter().map(|&q| 1usize << q).sum();
    let mut scratch = vec![C64::ZERO; sub];
    // Enumerate every assignment of the non-gate qubits.
    let mut rest = 0usize;
    loop {
        // Gather amplitudes of the gate subspace at this `rest`.
        for (gi, s) in scratch.iter_mut().enumerate() {
            let mut idx = rest;
            for (pos, &q) in qubits.iter().enumerate() {
                let bit = (gi >> (k - 1 - pos)) & 1;
                idx |= bit << q;
            }
            *s = state[idx];
        }
        let transformed = gate.apply(&scratch);
        for (gi, t) in transformed.iter().enumerate() {
            let mut idx = rest;
            for (pos, &q) in qubits.iter().enumerate() {
                let bit = (gi >> (k - 1 - pos)) & 1;
                idx |= bit << q;
            }
            state[idx] = *t;
        }
        // Next `rest`: increment skipping the masked bits, wrapping at dim.
        rest = (rest | mask).wrapping_add(1) & (dim - 1) & !mask;
        if rest == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_math::trace_fidelity;

    #[test]
    fn builder_methods_chain() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(2, 0.5).ccx(0, 1, 2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.one_qubit_gate_count(), 2);
        assert_eq!(c.two_qubit_gate_count(), 1);
        assert_eq!(c.gate_count_by_arity(3), 1);
    }

    #[test]
    fn depth_tracks_qubit_sharing() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // parallel layer
        assert_eq!(c.depth(), 1);
        c.cx(0, 1); // second layer
        c.cx(1, 2); // third layer
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn bell_circuit_unitary() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let u = c.unitary();
        // |00> -> (|00> + |11>)/√2
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((u[(0, 0)].re - s).abs() < 1e-12);
        assert!((u[(3, 0)].re - s).abs() < 1e-12);
        assert!(u[(1, 0)].abs() < 1e-12);
        assert!(u[(2, 0)].abs() < 1e-12);
    }

    #[test]
    fn embed_respects_qubit_order() {
        // CX with control 1 and target 0 on a 2-qubit register:
        // flips bit 0 when bit 1 is set: |10>(2) -> |11>(3).
        let cx = GateKind::Cx.unitary(&[]);
        let e = embed_unitary(&cx, &[1, 0], 2);
        assert_eq!(e[(3, 2)], C64::ONE);
        assert_eq!(e[(2, 3)], C64::ONE);
        assert_eq!(e[(0, 0)], C64::ONE);
        assert_eq!(e[(1, 1)], C64::ONE);
    }

    #[test]
    fn embed_matches_kron_for_adjacent_gate() {
        // Gate on qubit 1 of 2 total: embed = U ⊗ I (qubit 1 is the high bit).
        let h = GateKind::H.unitary(&[]);
        let e = embed_unitary(&h, &[1], 2);
        let k = h.kron(&Matrix::identity(2));
        assert!(e.max_diff(&k) < 1e-14);
    }

    #[test]
    fn swap_embedding_is_permutation() {
        let sw = GateKind::Swap.unitary(&[]);
        let e = embed_unitary(&sw, &[0, 2], 3);
        // |001>(1) <-> |100>(4)
        assert_eq!(e[(4, 1)], C64::ONE);
        assert_eq!(e[(1, 4)], C64::ONE);
        // |010>(2) fixed
        assert_eq!(e[(2, 2)], C64::ONE);
    }

    #[test]
    fn apply_gate_to_state_matches_embedding() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 2).rz(1, 0.3).ccx(2, 1, 0);
        let u = c.unitary();
        // Column 5 of U = action on basis state |101>.
        let mut state = vec![C64::ZERO; 8];
        state[5] = C64::ONE;
        for inst in c.iter() {
            apply_gate_to_state(&inst.unitary(), inst.qubits(), &mut state);
        }
        for r in 0..8 {
            assert!((state[r] - u[(r, 5)]).abs() < 1e-12, "row {r}");
        }
    }

    #[test]
    fn unitary_of_composed_circuits_multiplies() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.rz(1, 0.9).cx(1, 0);
        let mut ab = a.clone();
        ab.extend_from(&b);
        let expected = b.unitary().matmul(&a.unitary());
        assert!(trace_fidelity(&ab.unitary(), &expected) > 1.0 - 1e-12);
    }

    #[test]
    fn subcircuit_picks_indices() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).x(1);
        let sub = c.subcircuit(&[0, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.instructions()[0].gate(), GateKind::H);
        assert_eq!(sub.instructions()[1].gate(), GateKind::X);
    }

    #[test]
    fn remapped_instruction_moves_qubits() {
        let inst = Instruction::new(GateKind::Cx, vec![0, 1], vec![]);
        let moved = inst.remapped(|q| q + 3);
        assert_eq!(moved.qubits(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_qubits_rejected() {
        Instruction::new(GateKind::Cx, vec![1, 1], vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubits_rejected() {
        let mut c = Circuit::new(2);
        c.h(5);
    }

    #[test]
    fn labels_include_symbolic_params() {
        let mut c = Circuit::new(1);
        c.apply(GateKind::Rz, vec![0], vec![Angle::sym("gamma", 0.5)]);
        assert_eq!(c.instructions()[0].label(), "rz(gamma)");
    }
}
