//! The gate-dependence DAG and criticality analysis primitives.
//!
//! Nodes are instruction indices of a [`Circuit`]; there is an edge
//! `a → b` when `b` is the next instruction using one of `a`'s qubits.
//! All of PAQOC's criticality machinery (critical path, `CP(X)`,
//! slack) is defined over this graph with externally supplied node
//! weights (gate latencies).

use crate::circuit::{combined_unitary, Circuit, Instruction};
use std::collections::VecDeque;

/// `true` when two instructions commute (their order is irrelevant).
///
/// Disjoint-qubit gates always commute; gates sharing qubits are tested
/// numerically on their joint support (`‖AB − BA‖ ≤ 10⁻⁹`), which covers
/// every special case (diagonal gates, shared controls, …) uniformly.
/// Pairs spanning more than three qubits conservatively report `false`.
///
/// # Examples
///
/// ```
/// use paqoc_circuit::{instructions_commute, GateKind, Instruction};
/// let cz1 = Instruction::new(GateKind::Cz, vec![0, 1], vec![]);
/// let cz2 = Instruction::new(GateKind::Cz, vec![1, 2], vec![]);
/// assert!(instructions_commute(&cz1, &cz2)); // diagonal gates commute
/// let cx = Instruction::new(GateKind::Cx, vec![0, 1], vec![]);
/// let h = Instruction::new(GateKind::H, vec![1], vec![]);
/// assert!(!instructions_commute(&cx, &h)); // H on the target does not
/// ```
pub fn instructions_commute(a: &Instruction, b: &Instruction) -> bool {
    let shared = a.qubits().iter().any(|q| b.qubits().contains(q));
    if !shared {
        return true;
    }
    let mut qubits: Vec<usize> = a.qubits().to_vec();
    for &q in b.qubits() {
        if !qubits.contains(&q) {
            qubits.push(q);
        }
    }
    if qubits.len() > 3 {
        return false; // conservative: never claim commutation blindly
    }
    qubits.sort_unstable();
    let ua = combined_unitary(std::slice::from_ref(a), &qubits);
    let ub = combined_unitary(std::slice::from_ref(b), &qubits);
    ua.matmul(&ub).max_diff(&ub.matmul(&ua)) < 1e-9
}

/// The dependence DAG of a circuit.
///
/// # Examples
///
/// ```
/// use paqoc_circuit::{Circuit, DependencyDag};
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(1, 2);
/// let dag = DependencyDag::from_circuit(&c);
/// assert_eq!(dag.succs(0), &[1]);
/// assert_eq!(dag.succs(1), &[2]);
/// let span = dag.makespan(&[1.0, 2.0, 2.0]);
/// assert!((span - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct DependencyDag {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

impl DependencyDag {
    /// Builds the dependence DAG of a circuit from per-qubit last-use
    /// chains (duplicate edges collapsed).
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        let mut last_use: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (i, inst) in circuit.iter().enumerate() {
            for &q in inst.qubits() {
                if let Some(p) = last_use[q] {
                    if !succs[p].contains(&i) {
                        succs[p].push(i);
                        preds[i].push(p);
                    }
                }
                last_use[q] = Some(i);
            }
        }
        DependencyDag { preds, succs }
    }

    /// Builds the *commutation-aware* dependence DAG (the CLS-style
    /// relaxation the paper lists as future work): a gate only depends
    /// on the prior gates it does **not** commute with, so e.g. a chain
    /// of CZ/RZ gates sharing one qubit becomes an antichain the
    /// scheduler may reorder or parallelize freely.
    ///
    /// Per shared qubit, the full history is scanned (bounded by
    /// `scan_cap` = 32 for O(n) behaviour on pathological chains; a
    /// truncated scan adds a barrier edge to stay conservative).
    pub fn from_circuit_commutation_aware(circuit: &Circuit) -> Self {
        const SCAN_CAP: usize = 32;
        let n = circuit.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        let mut history: Vec<Vec<usize>> = vec![Vec::new(); circuit.num_qubits()];
        let insts = circuit.instructions();
        for (i, inst) in insts.iter().enumerate() {
            let add_edge = |p: usize, preds: &mut Vec<Vec<usize>>, succs: &mut Vec<Vec<usize>>| {
                if !succs[p].contains(&i) {
                    succs[p].push(i);
                    preds[i].push(p);
                }
            };
            for &q in inst.qubits() {
                for (scanned, &p) in history[q].iter().rev().enumerate() {
                    if scanned >= SCAN_CAP {
                        // Conservative barrier on truncation.
                        add_edge(p, &mut preds, &mut succs);
                        break;
                    }
                    if !instructions_commute(&insts[p], inst) {
                        add_edge(p, &mut preds, &mut succs);
                    }
                }
                history[q].push(i);
            }
        }
        DependencyDag { preds, succs }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// `true` when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Predecessors of node `i`.
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Successors of node `i`.
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// A topological order (Kahn's algorithm).
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle (impossible for graphs built
    /// by [`DependencyDag::from_circuit`]).
    pub fn topological_order(&self) -> Vec<usize> {
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &s in &self.succs[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        assert_eq!(order.len(), n, "dependence graph must be acyclic");
        order
    }

    /// `CP(X)` of the paper: the longest weighted path *after* node `x`
    /// finishes, excluding `x`'s own weight. Returned for every node.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.len()`.
    pub fn cp_after(&self, weights: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.len(), "one weight per node");
        let order = self.topological_order();
        let mut cp = vec![0.0f64; self.len()];
        for &i in order.iter().rev() {
            let mut best = 0.0f64;
            for &s in &self.succs[i] {
                best = best.max(weights[s] + cp[s]);
            }
            cp[i] = best;
        }
        cp
    }

    /// Longest weighted path *before* node `x` starts (its earliest start
    /// time under list scheduling with unlimited parallelism).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.len()`.
    pub fn cp_before(&self, weights: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.len(), "one weight per node");
        let order = self.topological_order();
        let mut cp = vec![0.0f64; self.len()];
        for &i in &order {
            let mut best = 0.0f64;
            for &p in &self.preds[i] {
                best = best.max(weights[p] + cp[p]);
            }
            cp[i] = best;
        }
        cp
    }

    /// Total circuit latency: the weight of the heaviest path.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.len()`.
    pub fn makespan(&self, weights: &[f64]) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let cp_after = self.cp_after(weights);
        (0..self.len())
            .map(|i| weights[i] + cp_after[i])
            .filter(|&v| {
                // only source-level paths matter, but max over all nodes
                // equals max over sources since cp grows along edges
                v.is_finite()
            })
            .fold(0.0, f64::max)
    }

    /// Marks the nodes lying on at least one critical (maximum-weight)
    /// path, within tolerance `tol` of the makespan.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.len()`.
    pub fn critical_nodes(&self, weights: &[f64], tol: f64) -> Vec<bool> {
        let before = self.cp_before(weights);
        let after = self.cp_after(weights);
        let span = self.makespan(weights);
        (0..self.len())
            .map(|i| before[i] + weights[i] + after[i] >= span - tol)
            .collect()
    }

    /// `true` when a directed path `from ⇝ to` exists (including the
    /// trivial `from == to`).
    pub fn has_path(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(i) = stack.pop() {
            for &s in &self.succs[i] {
                if s == to {
                    return true;
                }
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// `true` when nodes `a` and `b` can be contracted into one node
    /// without creating a cycle: every directed path between them must be
    /// the direct edge. Used to validate merge candidates.
    pub fn contractible(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        // A path of length ≥ 2 in either direction makes contraction cyclic.
        !self.has_intermediate_path(a, b) && !self.has_intermediate_path(b, a)
    }

    /// `true` when a path `from ⇝ to` exists that passes through at least
    /// one intermediate node.
    fn has_intermediate_path(&self, from: usize, to: usize) -> bool {
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<usize> = self.succs[from]
            .iter()
            .copied()
            .filter(|&s| s != to)
            .collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(i) = stack.pop() {
            for &s in &self.succs[i] {
                if s == to {
                    return true;
                }
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    /// h(0); cx(0,1); x(2); cx(1,2)
    fn sample() -> (Circuit, DependencyDag) {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).x(2).cx(1, 2);
        let dag = DependencyDag::from_circuit(&c);
        (c, dag)
    }

    #[test]
    fn edges_follow_qubit_chains() {
        let (_, dag) = sample();
        assert_eq!(dag.succs(0), &[1]); // h(0) -> cx(0,1)
        assert_eq!(dag.succs(1), &[3]); // cx(0,1) -> cx(1,2)
        assert_eq!(dag.succs(2), &[3]); // x(2) -> cx(1,2)
        assert_eq!(dag.preds(3), &[1, 2]);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        // Two consecutive CX on the same pair share both qubits: one edge.
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        let dag = DependencyDag::from_circuit(&c);
        assert_eq!(dag.succs(0), &[1]);
        assert_eq!(dag.preds(1), &[0]);
    }

    #[test]
    fn topological_order_is_valid() {
        let (_, dag) = sample();
        let order = dag.topological_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (rank, &i) in order.iter().enumerate() {
                p[i] = rank;
            }
            p
        };
        for i in 0..dag.len() {
            for &s in dag.succs(i) {
                assert!(pos[i] < pos[s]);
            }
        }
    }

    #[test]
    fn cp_after_excludes_own_weight() {
        let (_, dag) = sample();
        let w = [1.0, 2.0, 3.0, 4.0];
        let cp = dag.cp_after(&w);
        assert!((cp[3] - 0.0).abs() < 1e-12);
        assert!((cp[1] - 4.0).abs() < 1e-12); // cx(0,1) -> cx(1,2)
        assert!((cp[0] - 6.0).abs() < 1e-12); // h -> cx -> cx
        assert!((cp[2] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_is_heaviest_path() {
        let (_, dag) = sample();
        let w = [1.0, 2.0, 3.0, 4.0];
        // paths: h->cx01->cx12 = 7; x2->cx12 = 7 → 7
        assert!((dag.makespan(&w) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn critical_nodes_cover_the_heaviest_path() {
        let (_, dag) = sample();
        let w = [1.0, 2.0, 3.0, 4.0];
        let crit = dag.critical_nodes(&w, 1e-9);
        // Both 7-weight paths are critical: all nodes.
        assert_eq!(crit, vec![true, true, true, true]);
        // Shrink x(2): only the h-chain stays critical.
        let w2 = [1.0, 2.0, 0.5, 4.0];
        let crit2 = dag.critical_nodes(&w2, 1e-9);
        assert_eq!(crit2, vec![true, true, false, true]);
    }

    #[test]
    fn has_path_and_contractibility() {
        let (_, dag) = sample();
        assert!(dag.has_path(0, 3));
        assert!(!dag.has_path(3, 0));
        assert!(!dag.has_path(0, 2));
        // 0 -> 1 is a direct edge with no detour: contractible.
        assert!(dag.contractible(0, 1));
        // 0 and 3: path 0->1->3 has an intermediate node: not contractible.
        assert!(!dag.contractible(0, 3));
        // 2 and 3 direct edge: contractible.
        assert!(dag.contractible(2, 3));
        // independent nodes 0 and 2: contractible (no path at all).
        assert!(dag.contractible(0, 2));
        // a node is never contractible with itself.
        assert!(!dag.contractible(1, 1));
    }

    #[test]
    fn diamond_is_not_contractible_at_its_tips() {
        // a(0)->b(0,1), a->c(0,2)? build: h(0); cx(0,1); cx(0,2); ccx(0,1,2)
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(0, 2).ccx(0, 1, 2);
        let dag = DependencyDag::from_circuit(&c);
        // h -> cx01 -> cx02 (via qubit 0) -> ccx; h and ccx have paths
        // with intermediates.
        assert!(!dag.contractible(0, 3));
    }

    #[test]
    fn commutation_detection_matches_algebra() {
        use crate::circuit::Instruction;
        use crate::gate::GateKind;
        let rz = |q: usize| Instruction::new(GateKind::Rz, vec![q], vec![0.7.into()]);
        let cz = |a: usize, b: usize| Instruction::new(GateKind::Cz, vec![a, b], vec![]);
        let cx = |a: usize, b: usize| Instruction::new(GateKind::Cx, vec![a, b], vec![]);
        let h = |q: usize| Instruction::new(GateKind::H, vec![q], vec![]);
        // Diagonal gates commute with each other.
        assert!(crate::dag::instructions_commute(&rz(0), &cz(0, 1)));
        assert!(crate::dag::instructions_commute(&cz(0, 1), &cz(1, 2)));
        // CX commutes with RZ on its control, not its target.
        assert!(crate::dag::instructions_commute(&cx(0, 1), &rz(0)));
        assert!(!crate::dag::instructions_commute(&cx(0, 1), &rz(1)));
        // Two CX sharing a control commute; sharing control/target do not.
        assert!(crate::dag::instructions_commute(&cx(0, 1), &cx(0, 2)));
        assert!(!crate::dag::instructions_commute(&cx(0, 1), &cx(1, 2)));
        // H never commutes with a CX touching the same wire.
        assert!(!crate::dag::instructions_commute(&cx(0, 1), &h(0)));
    }

    #[test]
    fn commutation_aware_dag_drops_false_dependences() {
        // cz(0,1); cz(1,2); cz(0,2): pairwise commuting — the standard
        // DAG chains them; the commutation-aware DAG is an antichain.
        let mut c = Circuit::new(3);
        c.cz(0, 1).cz(1, 2).cz(0, 2);
        let strict = DependencyDag::from_circuit(&c);
        let relaxed = DependencyDag::from_circuit_commutation_aware(&c);
        assert!(strict.makespan(&[1.0, 1.0, 1.0]) > 2.5);
        assert!((relaxed.makespan(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        for i in 0..3 {
            assert!(relaxed.preds(i).is_empty());
        }
    }

    #[test]
    fn commutation_aware_dag_keeps_true_dependences() {
        // h(0); cx(0,1): genuinely ordered.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let relaxed = DependencyDag::from_circuit_commutation_aware(&c);
        assert_eq!(relaxed.preds(1), &[0]);
        // And non-adjacent non-commuting pairs are caught through a
        // commuting middle gate: rz(0); h? use: z-basis chain.
        let mut c2 = Circuit::new(2);
        c2.z(0).rz(0, 0.4).h(0);
        let r2 = DependencyDag::from_circuit_commutation_aware(&c2);
        // h must depend on BOTH z and rz (it commutes with neither),
        // even though z and rz commute with each other.
        assert!(r2.preds(2).contains(&0));
        assert!(r2.preds(2).contains(&1));
        assert!(r2.preds(1).is_empty(), "z and rz commute");
    }

    #[test]
    fn empty_circuit_has_zero_makespan() {
        let c = Circuit::new(2);
        let dag = DependencyDag::from_circuit(&c);
        assert!(dag.is_empty());
        assert_eq!(dag.makespan(&[]), 0.0);
    }
}
