//! # paqoc-circuit
//!
//! The quantum-circuit intermediate representation of the PAQOC
//! reproduction: a gate vocabulary with optional symbolic rotation
//! parameters ([`GateKind`], [`Angle`]), the [`Circuit`] container, the
//! gate-dependence [`DependencyDag`] with the criticality primitives the
//! paper's search builds on, lowering to a hardware universal basis
//! ([`decompose`]), and an OpenQASM 2 subset ([`parse_qasm`],
//! [`to_qasm`]).
//!
//! ## Example
//!
//! ```
//! use paqoc_circuit::{decompose, Basis, Circuit, DependencyDag};
//!
//! let mut c = Circuit::new(3);
//! c.h(0).cx(0, 1).ccx(0, 1, 2);
//! let physical = decompose(&c, Basis::Ibm);
//! let dag = DependencyDag::from_circuit(&physical);
//! assert_eq!(dag.len(), physical.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod dag;
mod decompose;
mod gate;
mod qasm;

pub use circuit::{apply_gate_to_state, combined_unitary, embed_unitary, Circuit, Instruction};
pub use dag::{instructions_commute, DependencyDag};
pub use decompose::{decompose, Basis};
pub use gate::{Angle, GateKind};
pub use qasm::{parse_qasm, to_qasm, ParseQasmError};
