//! A pragmatic OpenQASM 2 subset: printing and parsing.
//!
//! Supports a single quantum register, the gate vocabulary of
//! [`GateKind`], and angle expressions over `pi`, numeric literals,
//! `* / + -` and parentheses — enough to exchange the evaluation
//! benchmarks with other toolchains.

use crate::circuit::Circuit;
use crate::gate::{Angle, GateKind};
use std::fmt;

/// An error produced while parsing QASM text.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseQasmError {
    line: usize,
    message: String,
}

impl ParseQasmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseQasmError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseQasmError {}

/// Serializes a circuit as OpenQASM 2 text.
///
/// # Examples
///
/// ```
/// use paqoc_circuit::{to_qasm, Circuit};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let text = to_qasm(&c);
/// assert!(text.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for inst in circuit.iter() {
        let name = inst.gate().name();
        if inst.params().is_empty() {
            out.push_str(name);
        } else {
            let ps: Vec<String> = inst
                .params()
                .iter()
                .map(|a| format!("{:.12}", a.value))
                .collect();
            out.push_str(&format!("{name}({})", ps.join(",")));
        }
        let qs: Vec<String> = inst.qubits().iter().map(|q| format!("q[{q}]")).collect();
        out.push_str(&format!(" {};\n", qs.join(",")));
    }
    out
}

/// Parses OpenQASM 2 text into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on unknown gates, malformed operands,
/// missing register declarations or arity mismatches.
///
/// # Examples
///
/// ```
/// use paqoc_circuit::parse_qasm;
/// let c = parse_qasm(
///     "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\nrz(pi/4) q[1];",
/// )?;
/// assert_eq!(c.len(), 3);
/// # Ok::<(), paqoc_circuit::ParseQasmError>(())
/// ```
pub fn parse_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut circuit: Option<Circuit> = None;
    for (lineno, raw_line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                let n = parse_reg_size(rest.trim())
                    .ok_or_else(|| ParseQasmError::new(lineno, "malformed qreg"))?;
                circuit = Some(Circuit::new(n));
                continue;
            }
            if stmt.starts_with("creg")
                || stmt.starts_with("barrier")
                || stmt.starts_with("measure")
            {
                continue; // classical bookkeeping: ignored by the IR
            }
            let circ = circuit
                .as_mut()
                .ok_or_else(|| ParseQasmError::new(lineno, "gate before qreg"))?;
            parse_gate_statement(stmt, circ, lineno)?;
        }
    }
    circuit.ok_or_else(|| ParseQasmError::new(0, "no qreg declaration found"))
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Parses `q[5]` (after `qreg`) into 5.
fn parse_reg_size(s: &str) -> Option<usize> {
    let open = s.find('[')?;
    // Search for the `]` only *after* the `[`: on garbage like `]q[`
    // an independent find would produce a reversed (panicking) range.
    let close = open + s[open..].find(']')?;
    s[open + 1..close].trim().parse().ok()
}

fn parse_gate_statement(
    stmt: &str,
    circuit: &mut Circuit,
    lineno: usize,
) -> Result<(), ParseQasmError> {
    // Split "name(params) operands" into head and operand list.
    let (head, operands) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(pos)
            if stmt[..pos].find('(').is_none_or(|p| {
                // make sure we split after a balanced parameter list
                stmt[p..pos].contains(')')
            }) =>
        {
            (&stmt[..pos], stmt[pos..].trim())
        }
        _ => {
            // Parameters may contain spaces: split at the ')' if present.
            match stmt.find(')') {
                Some(p) => (stmt[..=p].trim(), stmt[p + 1..].trim()),
                None => {
                    return Err(ParseQasmError::new(
                        lineno,
                        format!("malformed statement: {stmt}"),
                    ))
                }
            }
        }
    };

    let (name, params) = match head.find('(') {
        Some(p) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| ParseQasmError::new(lineno, "unclosed parameter list"))?;
            let plist = &head[p + 1..close];
            let params: Result<Vec<Angle>, ParseQasmError> = plist
                .split(',')
                .map(|e| {
                    parse_angle_expr(e.trim()).map(Angle::new).ok_or_else(|| {
                        ParseQasmError::new(lineno, format!("bad angle expression: {e}"))
                    })
                })
                .collect();
            (&head[..p], params?)
        }
        None => (head, Vec::new()),
    };

    let kind = GateKind::from_name(name)
        .ok_or_else(|| ParseQasmError::new(lineno, format!("unknown gate: {name}")))?;

    let qubits: Result<Vec<usize>, ParseQasmError> = operands
        .split(',')
        .map(|op| {
            let op = op.trim();
            let open = op.find('[');
            // `]` must come after the `[` (see parse_reg_size).
            let close = open.and_then(|o| op[o..].find(']').map(|c| o + c));
            match (open, close) {
                (Some(o), Some(c)) => op[o + 1..c]
                    .trim()
                    .parse()
                    .map_err(|_| ParseQasmError::new(lineno, format!("bad qubit index: {op}"))),
                _ => Err(ParseQasmError::new(lineno, format!("bad operand: {op}"))),
            }
        })
        .collect();
    let qubits = qubits?;

    if qubits.len() != kind.num_qubits() {
        return Err(ParseQasmError::new(
            lineno,
            format!(
                "{name} expects {} qubit(s), got {}",
                kind.num_qubits(),
                qubits.len()
            ),
        ));
    }
    if params.len() != kind.num_params() {
        return Err(ParseQasmError::new(
            lineno,
            format!(
                "{name} expects {} parameter(s), got {}",
                kind.num_params(),
                params.len()
            ),
        ));
    }
    // Validate here rather than letting `Circuit::push` assert: the
    // parser's contract is a typed error on any malformed input.
    for (i, &q) in qubits.iter().enumerate() {
        if q >= circuit.num_qubits() {
            return Err(ParseQasmError::new(
                lineno,
                format!(
                    "qubit index {q} out of range for {}-qubit register",
                    circuit.num_qubits()
                ),
            ));
        }
        if qubits[..i].contains(&q) {
            return Err(ParseQasmError::new(
                lineno,
                format!("duplicate qubit operand q[{q}] in {name}"),
            ));
        }
    }
    circuit.apply(kind, qubits, params);
    Ok(())
}

/// Evaluates an angle expression: numbers, `pi`, `+ - * /`, parentheses.
fn parse_angle_expr(expr: &str) -> Option<f64> {
    let tokens = tokenize(expr)?;
    let mut pos = 0;
    let v = parse_sum(&tokens, &mut pos)?;
    if pos == tokens.len() {
        Some(v)
    } else {
        None
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Num(f64),
    Op(char),
}

fn tokenize(s: &str) -> Option<Vec<Tok>> {
    let mut out = Vec::new();
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_digit() || c == '.' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_digit()
                    || chars[i] == '.'
                    || chars[i] == 'e'
                    || chars[i] == 'E'
                    || ((chars[i] == '+' || chars[i] == '-') && matches!(chars[i - 1], 'e' | 'E')))
            {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.push(Tok::Num(text.parse().ok()?));
        } else if s[i..].starts_with("pi") {
            out.push(Tok::Num(std::f64::consts::PI));
            i += 2;
        } else if "+-*/()".contains(c) {
            out.push(Tok::Op(c));
            i += 1;
        } else {
            return None;
        }
    }
    Some(out)
}

fn parse_sum(toks: &[Tok], pos: &mut usize) -> Option<f64> {
    let mut acc = parse_product(toks, pos)?;
    while let Some(Tok::Op(op @ ('+' | '-'))) = toks.get(*pos) {
        let op = *op;
        *pos += 1;
        let rhs = parse_product(toks, pos)?;
        if op == '+' {
            acc += rhs;
        } else {
            acc -= rhs;
        }
    }
    Some(acc)
}

fn parse_product(toks: &[Tok], pos: &mut usize) -> Option<f64> {
    let mut acc = parse_atom(toks, pos)?;
    while let Some(Tok::Op(op @ ('*' | '/'))) = toks.get(*pos) {
        let op = *op;
        *pos += 1;
        let rhs = parse_atom(toks, pos)?;
        if op == '*' {
            acc *= rhs;
        } else {
            acc /= rhs;
        }
    }
    Some(acc)
}

fn parse_atom(toks: &[Tok], pos: &mut usize) -> Option<f64> {
    match toks.get(*pos)? {
        Tok::Num(v) => {
            *pos += 1;
            Some(*v)
        }
        Tok::Op('-') => {
            *pos += 1;
            Some(-parse_atom(toks, pos)?)
        }
        Tok::Op('+') => {
            *pos += 1;
            parse_atom(toks, pos)
        }
        Tok::Op('(') => {
            *pos += 1;
            let v = parse_sum(toks, pos)?;
            match toks.get(*pos) {
                Some(Tok::Op(')')) => {
                    *pos += 1;
                    Some(v)
                }
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_math::trace_fidelity;
    use std::f64::consts::PI;

    #[test]
    fn roundtrip_preserves_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(2, 0.725).ccx(0, 1, 2).cp(1, 2, PI / 8.0);
        let text = to_qasm(&c);
        let parsed = parse_qasm(&text).expect("roundtrip parse");
        assert_eq!(parsed.num_qubits(), 3);
        assert_eq!(parsed.len(), c.len());
        let f = trace_fidelity(&c.unitary(), &parsed.unitary());
        assert!(f > 1.0 - 1e-10);
    }

    #[test]
    fn parses_pi_expressions() {
        let c =
            parse_qasm("qreg q[1]; rz(pi/4) q[0]; rz(-pi) q[0]; rz(3*pi/2) q[0];").expect("parse");
        let vals: Vec<f64> = c.iter().map(|i| i.params()[0].value).collect();
        assert!((vals[0] - PI / 4.0).abs() < 1e-12);
        assert!((vals[1] + PI).abs() < 1e-12);
        assert!((vals[2] - 3.0 * PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn parses_parenthesized_arithmetic() {
        let c = parse_qasm("qreg q[1]; rz((1+2)*pi/(2-0.5)) q[0];").expect("parse");
        assert!((c.instructions()[0].params()[0].value - 3.0 * PI / 1.5).abs() < 1e-12);
    }

    #[test]
    fn ignores_comments_and_classical_statements() {
        let src = "OPENQASM 2.0;\n// a comment\nqreg q[2];\ncreg c[2];\nh q[0]; // trailing\nmeasure q[0];\n";
        let c = parse_qasm(src).expect("parse");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unknown_gate_is_an_error() {
        let err = parse_qasm("qreg q[1];\nfoo q[0];").unwrap_err();
        assert!(err.to_string().contains("unknown gate"));
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let err = parse_qasm("qreg q[2];\ncx q[0];").unwrap_err();
        assert!(err.to_string().contains("expects 2 qubit"));
    }

    #[test]
    fn reversed_brackets_are_an_error_not_a_panic() {
        // `]` before `[` used to build a reversed slice range and panic.
        assert!(parse_qasm("qreg ]q[;").is_err());
        assert!(parse_qasm("qreg q[2];\nh ]q[0;").is_err());
        assert!(parse_qasm("qreg q[2];\ncx q]0[, q[1];").is_err());
    }

    #[test]
    fn gate_before_qreg_is_an_error() {
        let err = parse_qasm("h q[0];").unwrap_err();
        assert!(err.to_string().contains("gate before qreg"));
    }

    #[test]
    fn out_of_range_and_duplicate_operands_are_errors_not_panics() {
        // Both used to fall through to Circuit's asserts and abort.
        let err = parse_qasm("qreg q[2];\nh q[2];").unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let err = parse_qasm("qreg q[3];\ncx q[1], q[1];").unwrap_err();
        assert!(err.to_string().contains("duplicate qubit"), "{err}");
    }

    #[test]
    fn cnot_alias_is_accepted() {
        let c = parse_qasm("qreg q[2]; cnot q[0],q[1];").expect("parse");
        assert_eq!(c.instructions()[0].gate(), GateKind::Cx);
    }
}
