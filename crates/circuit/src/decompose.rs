//! Lowering to a hardware universal basis.
//!
//! Input workloads use high-level gates (Toffoli, controlled-phase,
//! SWAP, …); transpilation lowers everything to the machine basis before
//! mapping and pulse generation — the paper targets the IBM basis
//! `{X, √X, RZ, CX, ID}`. All identities hold up to global phase, which
//! every downstream fidelity metric ignores.

use crate::circuit::{Circuit, Instruction};
use crate::gate::{Angle, GateKind};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// The hardware basis to lower into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Basis {
    /// IBM-Q basis: `{id, x, sx, rz, cx}` (the paper's setting).
    #[default]
    Ibm,
    /// Mining-friendly basis: every *named single-qubit gate* stays
    /// whole (H remains "h", T remains "t") and only multi-qubit gates
    /// lower to CX — the level at which the paper's Fig. 5 graphs and
    /// Table III patterns are expressed.
    Extended,
}

impl Basis {
    /// `true` when a gate kind is native to this basis.
    pub fn contains(self, kind: GateKind) -> bool {
        use GateKind::*;
        match self {
            Basis::Ibm => matches!(kind, Id | X | Sx | Rz | Cx),
            Basis::Extended => kind.num_qubits() == 1 || kind == Cx,
        }
    }
}

/// Lowers a circuit to the given universal basis.
///
/// The rewrite is applied recursively until every instruction is native.
/// Rotation angles propagate their symbolic labels through scaling (so a
/// parameterized `cp(gamma)` lowers to `rz(gamma*0.5)` gates and the
/// miner still sees one structural identity per parameter).
///
/// # Examples
///
/// ```
/// use paqoc_circuit::{decompose, Basis, Circuit, GateKind};
/// let mut c = Circuit::new(3);
/// c.ccx(0, 1, 2);
/// let low = decompose(&c, Basis::Ibm);
/// assert!(low.iter().all(|i| Basis::Ibm.contains(i.gate())));
/// ```
pub fn decompose(circuit: &Circuit, basis: Basis) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for inst in circuit.iter() {
        lower_into(inst, basis, &mut out, 0);
    }
    out
}

fn lower_into(inst: &Instruction, basis: Basis, out: &mut Circuit, depth: usize) {
    assert!(depth < 16, "decomposition recursion exceeded 16 levels");
    if basis.contains(inst.gate()) {
        out.push(inst.clone());
        return;
    }
    for step in expand_once(inst) {
        lower_into(&step, basis, out, depth + 1);
    }
}

/// A gate application in emission (time) order.
fn g(kind: GateKind, qubits: &[usize], params: &[Angle]) -> Instruction {
    Instruction::new(kind, qubits.to_vec(), params.to_vec())
}

fn rz(q: usize, a: Angle) -> Instruction {
    g(GateKind::Rz, &[q], &[a])
}

fn rzc(q: usize, v: f64) -> Instruction {
    rz(q, Angle::new(v))
}

fn sx(q: usize) -> Instruction {
    g(GateKind::Sx, &[q], &[])
}

fn x(q: usize) -> Instruction {
    g(GateKind::X, &[q], &[])
}

fn h(q: usize) -> Instruction {
    g(GateKind::H, &[q], &[])
}

fn t(q: usize) -> Instruction {
    g(GateKind::T, &[q], &[])
}

fn tdg(q: usize) -> Instruction {
    g(GateKind::Tdg, &[q], &[])
}

fn cx(c: usize, tq: usize) -> Instruction {
    g(GateKind::Cx, &[c, tq], &[])
}

/// `U3(θ, φ, λ)` as the standard ZSXZSXZ sequence, in emission order.
fn u3_seq(q: usize, theta: Angle, phi: Angle, lambda: Angle) -> Vec<Instruction> {
    vec![
        rz(q, lambda),
        sx(q),
        rz(q, Angle::new(theta.value + PI)),
        sx(q),
        rz(q, Angle::new(phi.value + 3.0 * PI)),
    ]
}

/// One level of rewriting for a non-native gate.
fn expand_once(inst: &Instruction) -> Vec<Instruction> {
    use GateKind::*;
    let q = inst.qubits();
    let p = inst.params();
    match inst.gate() {
        // Native kinds never reach here for Basis::Ibm; kinds below are
        // rewritten in terms of simpler gates (possibly recursively).
        Z => vec![rzc(q[0], PI)],
        S => vec![rzc(q[0], FRAC_PI_2)],
        Sdg => vec![rzc(q[0], -FRAC_PI_2)],
        T => vec![rzc(q[0], FRAC_PI_4)],
        Tdg => vec![rzc(q[0], -FRAC_PI_4)],
        Phase => vec![rz(q[0], p[0].clone())],
        H => vec![rzc(q[0], FRAC_PI_2), sx(q[0]), rzc(q[0], FRAC_PI_2)],
        Y => vec![rzc(q[0], PI), x(q[0])],
        Sxdg => vec![rzc(q[0], PI), sx(q[0]), rzc(q[0], PI)],
        Rx => u3_seq(
            q[0],
            p[0].clone(),
            Angle::new(-FRAC_PI_2),
            Angle::new(FRAC_PI_2),
        ),
        Ry => u3_seq(q[0], p[0].clone(), Angle::new(0.0), Angle::new(0.0)),
        U2 => u3_seq(q[0], Angle::new(FRAC_PI_2), p[0].clone(), p[1].clone()),
        U3 => u3_seq(q[0], p[0].clone(), p[1].clone(), p[2].clone()),
        Cz => vec![h(q[1]), cx(q[0], q[1]), h(q[1])],
        Cy => vec![g(Sdg, &[q[1]], &[]), cx(q[0], q[1]), g(S, &[q[1]], &[])],
        Ch => vec![
            g(S, &[q[1]], &[]),
            h(q[1]),
            t(q[1]),
            cx(q[0], q[1]),
            tdg(q[1]),
            h(q[1]),
            g(Sdg, &[q[1]], &[]),
        ],
        CPhase => {
            let half = p[0].scaled(0.5);
            let neg_half = p[0].scaled(-0.5);
            vec![
                rz(q[0], half.clone()),
                cx(q[0], q[1]),
                rz(q[1], neg_half),
                cx(q[0], q[1]),
                rz(q[1], half),
            ]
        }
        Crz => {
            let half = p[0].scaled(0.5);
            let neg_half = p[0].scaled(-0.5);
            vec![
                rz(q[1], half),
                cx(q[0], q[1]),
                rz(q[1], neg_half),
                cx(q[0], q[1]),
            ]
        }
        Rzz => vec![cx(q[0], q[1]), rz(q[1], p[0].clone()), cx(q[0], q[1])],
        Rxx => vec![
            h(q[0]),
            h(q[1]),
            cx(q[0], q[1]),
            rz(q[1], p[0].clone()),
            cx(q[0], q[1]),
            h(q[0]),
            h(q[1]),
        ],
        Ryy => vec![
            g(Rx, &[q[0]], &[Angle::new(FRAC_PI_2)]),
            g(Rx, &[q[1]], &[Angle::new(FRAC_PI_2)]),
            cx(q[0], q[1]),
            rz(q[1], p[0].clone()),
            cx(q[0], q[1]),
            g(Rx, &[q[0]], &[Angle::new(-FRAC_PI_2)]),
            g(Rx, &[q[1]], &[Angle::new(-FRAC_PI_2)]),
        ],
        Swap => vec![cx(q[0], q[1]), cx(q[1], q[0]), cx(q[0], q[1])],
        ISwap => vec![
            g(S, &[q[0]], &[]),
            g(S, &[q[1]], &[]),
            h(q[0]),
            cx(q[0], q[1]),
            cx(q[1], q[0]),
            h(q[1]),
        ],
        Ccx => {
            let (a, b, c) = (q[0], q[1], q[2]);
            vec![
                h(c),
                cx(b, c),
                tdg(c),
                cx(a, c),
                t(c),
                cx(b, c),
                tdg(c),
                cx(a, c),
                t(b),
                t(c),
                h(c),
                cx(a, b),
                t(a),
                tdg(b),
                cx(a, b),
            ]
        }
        Ccz => vec![h(q[2]), g(Ccx, q, &[]), h(q[2])],
        Cswap => vec![
            cx(q[2], q[1]),
            g(Ccx, &[q[0], q[1], q[2]], &[]),
            cx(q[2], q[1]),
        ],
        other => unreachable!("{} is native and never expanded", other.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_math::trace_fidelity;

    /// Lowers a single-gate circuit and checks unitary equivalence.
    fn check_equiv(build: impl Fn(&mut Circuit)) {
        let mut c = Circuit::new(3);
        build(&mut c);
        let low = decompose(&c, Basis::Ibm);
        for inst in low.iter() {
            assert!(
                Basis::Ibm.contains(inst.gate()),
                "{} not lowered",
                inst.gate()
            );
        }
        let f = trace_fidelity(&c.unitary(), &low.unitary());
        assert!(f > 1.0 - 1e-10, "fidelity {f} for {c}");
    }

    #[test]
    fn one_qubit_cliffords_lower_exactly() {
        check_equiv(|c| {
            c.z(0);
        });
        check_equiv(|c| {
            c.s(0);
        });
        check_equiv(|c| {
            c.sdg(0);
        });
        check_equiv(|c| {
            c.t(0);
        });
        check_equiv(|c| {
            c.tdg(0);
        });
        check_equiv(|c| {
            c.h(0);
        });
        check_equiv(|c| {
            c.y(0);
        });
    }

    #[test]
    fn rotations_lower_exactly() {
        check_equiv(|c| {
            c.rx(0, 0.713);
        });
        check_equiv(|c| {
            c.ry(0, -1.1);
        });
        check_equiv(|c| {
            c.p(0, 2.2);
        });
        check_equiv(|c| {
            c.apply(GateKind::Sxdg, vec![0], vec![]);
        });
        check_equiv(|c| {
            c.apply(
                GateKind::U2,
                vec![0],
                vec![Angle::new(0.3), Angle::new(-0.4)],
            );
        });
        check_equiv(|c| {
            c.apply(
                GateKind::U3,
                vec![0],
                vec![Angle::new(1.0), Angle::new(0.3), Angle::new(-0.4)],
            );
        });
    }

    #[test]
    fn two_qubit_gates_lower_exactly() {
        check_equiv(|c| {
            c.cz(0, 1);
        });
        check_equiv(|c| {
            c.cy(0, 1);
        });
        check_equiv(|c| {
            c.ch(0, 1);
        });
        check_equiv(|c| {
            c.cp(0, 1, 0.9);
        });
        check_equiv(|c| {
            c.crz(0, 1, -0.7);
        });
        check_equiv(|c| {
            c.rzz(0, 1, 1.3);
        });
        check_equiv(|c| {
            c.rxx(0, 1, 0.5);
        });
        check_equiv(|c| {
            c.apply(GateKind::Ryy, vec![0, 1], vec![Angle::new(0.8)]);
        });
        check_equiv(|c| {
            c.swap(0, 1);
        });
        check_equiv(|c| {
            c.iswap(0, 1);
        });
    }

    #[test]
    fn three_qubit_gates_lower_exactly() {
        check_equiv(|c| {
            c.ccx(0, 1, 2);
        });
        check_equiv(|c| {
            c.ccz(0, 1, 2);
        });
        check_equiv(|c| {
            c.cswap(0, 1, 2);
        });
    }

    #[test]
    fn native_gates_pass_through_unchanged() {
        let mut c = Circuit::new(2);
        c.x(0).sx(1).rz(0, 0.4).cx(0, 1);
        let low = decompose(&c, Basis::Ibm);
        assert_eq!(low.instructions(), c.instructions());
    }

    #[test]
    fn toffoli_uses_six_cx() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let low = decompose(&c, Basis::Ibm);
        assert_eq!(low.two_qubit_gate_count(), 6);
    }

    #[test]
    fn symbolic_angles_propagate_through_cphase() {
        let mut c = Circuit::new(2);
        c.apply(GateKind::CPhase, vec![0, 1], vec![Angle::sym("gamma", 0.7)]);
        let low = decompose(&c, Basis::Ibm);
        let labels: Vec<String> = low.iter().map(|i| i.label()).collect();
        assert!(labels.contains(&"rz(gamma*0.5)".to_string()), "{labels:?}");
        assert!(labels.contains(&"rz(gamma*-0.5)".to_string()), "{labels:?}");
    }

    #[test]
    fn whole_circuit_lowers_equivalently() {
        let mut c = Circuit::new(3);
        c.h(0).ccx(0, 1, 2).swap(1, 2).cp(0, 2, 0.3).ry(1, 0.9);
        let low = decompose(&c, Basis::Ibm);
        let f = trace_fidelity(&c.unitary(), &low.unitary());
        assert!(f > 1.0 - 1e-9, "fidelity {f}");
    }
}
