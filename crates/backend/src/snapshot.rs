//! Calibration-snapshot files.
//!
//! A snapshot is a JSON document (the `paqoc-cal-1` schema) carrying
//! one record per qubit and one per coupler, as exported from a device
//! characterization run:
//!
//! ```json
//! {
//!   "schema": "paqoc-cal-1",
//!   "backend": "heavy-hex",
//!   "qubits":   [{"q": 0, "frequency_ghz": 5.01, "anharmonicity_ghz": -0.33,
//!                 "t1_us": 112.4, "t2_us": 84.1, "drive_scale": 0.97}, …],
//!   "couplers": [{"a": 0, "b": 1, "scale": 0.95}, …]
//! }
//! ```
//!
//! Parsing is strict: an unknown schema tag, a missing field, an
//! out-of-range qubit index or a non-finite number is an error, never a
//! default — a half-read calibration silently blessing the wrong
//! amplitude limit is exactly the failure mode the namespaced
//! fingerprints exist to prevent.

use paqoc_device::{DeviceTuning, QubitCal};
use paqoc_telemetry::json::{parse, Value};

/// Why a calibration snapshot was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CalError {
    /// Human-readable reason, with enough context to find the record.
    pub message: String,
}

impl std::fmt::Display for CalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "calibration snapshot rejected: {}", self.message)
    }
}

impl std::error::Error for CalError {}

fn err(message: impl Into<String>) -> CalError {
    CalError {
        message: message.into(),
    }
}

fn finite(v: &Value, field: &str, ctx: &str) -> Result<f64, CalError> {
    let n = v
        .get(field)
        .and_then(Value::as_num)
        .ok_or_else(|| err(format!("{ctx}: missing numeric field {field:?}")))?;
    if !n.is_finite() {
        return Err(err(format!("{ctx}: field {field:?} is not finite")));
    }
    Ok(n)
}

fn index(v: &Value, field: &str, ctx: &str, num_qubits: usize) -> Result<usize, CalError> {
    let n = finite(v, field, ctx)?;
    if n < 0.0 || n.fract() != 0.0 || n >= num_qubits as f64 {
        return Err(err(format!(
            "{ctx}: field {field:?} = {n} is not a qubit index below {num_qubits}"
        )));
    }
    Ok(n as usize)
}

/// Parses a `paqoc-cal-1` snapshot into a [`DeviceTuning`] for a device
/// with `num_qubits` qubits.
///
/// # Errors
///
/// Returns [`CalError`] on malformed JSON, a wrong/missing `schema`
/// tag, missing or non-finite fields, duplicate or out-of-range qubit
/// indices, or a qubit list that does not cover `0..num_qubits`.
pub fn parse_snapshot(text: &str, num_qubits: usize) -> Result<DeviceTuning, CalError> {
    let doc = parse(text).map_err(|e| err(format!("invalid JSON: {e}")))?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| err("missing \"schema\" tag"))?;
    if schema != "paqoc-cal-1" {
        return Err(err(format!("unsupported schema {schema:?}")));
    }

    let qubit_records = doc
        .get("qubits")
        .and_then(Value::as_arr)
        .ok_or_else(|| err("missing \"qubits\" array"))?;
    let mut qubits = vec![None; num_qubits];
    for rec in qubit_records {
        let q = index(rec, "q", "qubit record", num_qubits)?;
        if qubits[q].is_some() {
            return Err(err(format!("duplicate record for qubit {q}")));
        }
        let ctx = format!("qubit {q}");
        qubits[q] = Some(QubitCal {
            frequency_ghz: finite(rec, "frequency_ghz", &ctx)?,
            anharmonicity_ghz: finite(rec, "anharmonicity_ghz", &ctx)?,
            t1_us: finite(rec, "t1_us", &ctx)?,
            t2_us: finite(rec, "t2_us", &ctx)?,
            drive_scale: finite(rec, "drive_scale", &ctx)?,
        });
    }
    let qubits: Vec<QubitCal> = qubits
        .into_iter()
        .enumerate()
        .map(|(q, cal)| cal.ok_or_else(|| err(format!("no record for qubit {q}"))))
        .collect::<Result<_, _>>()?;

    let mut tuning = DeviceTuning {
        qubits,
        coupler_scale: Default::default(),
    };
    let couplers = doc
        .get("couplers")
        .and_then(Value::as_arr)
        .ok_or_else(|| err("missing \"couplers\" array"))?;
    for rec in couplers {
        let a = index(rec, "a", "coupler record", num_qubits)?;
        let b = index(rec, "b", "coupler record", num_qubits)?;
        if a == b {
            return Err(err(format!("coupler ({a},{b}) is a self-loop")));
        }
        let ctx = format!("coupler ({a},{b})");
        let scale = finite(rec, "scale", &ctx)?;
        let key = (a.min(b), a.max(b));
        if tuning.coupler_scale.insert(key, scale).is_some() {
            return Err(err(format!("duplicate record for coupler ({a},{b})")));
        }
    }
    Ok(tuning)
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK: &str = r#"{
        "schema": "paqoc-cal-1",
        "qubits": [
            {"q": 0, "frequency_ghz": 5.0, "anharmonicity_ghz": -0.33,
             "t1_us": 100.0, "t2_us": 80.0, "drive_scale": 0.9},
            {"q": 1, "frequency_ghz": 5.1, "anharmonicity_ghz": -0.32,
             "t1_us": 90.0, "t2_us": 70.0, "drive_scale": 1.05}
        ],
        "couplers": [{"a": 1, "b": 0, "scale": 0.88}]
    }"#;

    #[test]
    fn valid_snapshot_parses_and_normalizes_couplers() {
        let t = parse_snapshot(OK, 2).expect("parse");
        assert_eq!(t.qubit(0).drive_scale, 0.9);
        assert_eq!(t.qubit(1).frequency_ghz, 5.1);
        assert_eq!(t.coupler(0, 1), 0.88, "endpoints normalized");
    }

    #[test]
    fn missing_qubit_record_is_an_error() {
        let e = parse_snapshot(OK, 3).expect_err("qubit 2 uncovered");
        assert!(e.message.contains("no record for qubit 2"), "{e}");
    }

    #[test]
    fn strictness_rejects_bad_documents() {
        for (text, what) in [
            ("not json", "invalid JSON"),
            (r#"{"qubits": [], "couplers": []}"#, "schema"),
            (
                r#"{"schema": "paqoc-cal-2", "qubits": [], "couplers": []}"#,
                "unsupported schema",
            ),
            (
                r#"{"schema": "paqoc-cal-1", "couplers": []}"#,
                "\"qubits\" array",
            ),
        ] {
            let e = parse_snapshot(text, 0).expect_err(what);
            assert!(e.message.contains(what), "{what}: {e}");
        }
    }

    #[test]
    fn out_of_range_and_duplicate_records_are_errors() {
        let oob = r#"{"schema": "paqoc-cal-1",
            "qubits": [{"q": 7, "frequency_ghz": 5.0, "anharmonicity_ghz": -0.3,
                        "t1_us": 1.0, "t2_us": 1.0, "drive_scale": 1.0}],
            "couplers": []}"#;
        assert!(parse_snapshot(oob, 2).is_err());
        let dup = r#"{"schema": "paqoc-cal-1",
            "qubits": [
              {"q": 0, "frequency_ghz": 5.0, "anharmonicity_ghz": -0.3,
               "t1_us": 1.0, "t2_us": 1.0, "drive_scale": 1.0},
              {"q": 0, "frequency_ghz": 5.0, "anharmonicity_ghz": -0.3,
               "t1_us": 1.0, "t2_us": 1.0, "drive_scale": 1.0}],
            "couplers": []}"#;
        let e = parse_snapshot(dup, 1).expect_err("dup");
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn non_finite_fields_are_errors() {
        // The JSON dialect has no NaN literal, but a huge exponent
        // overflows to infinity — strictness must still catch it.
        let inf = r#"{"schema": "paqoc-cal-1",
            "qubits": [{"q": 0, "frequency_ghz": 1e999, "anharmonicity_ghz": -0.3,
                        "t1_us": 1.0, "t2_us": 1.0, "drive_scale": 1.0}],
            "couplers": []}"#;
        let e = parse_snapshot(inf, 1).expect_err("inf");
        assert!(e.message.contains("not finite"), "{e}");
    }
}
