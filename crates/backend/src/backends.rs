//! The three shipped device targets.

use crate::snapshot::{parse_snapshot, CalError};
use crate::traits::{Backend, HasCalibration, HasChannels, HasSpec, HasTopology};
use paqoc_device::{DeviceTuning, Topology, NS_HEAVY_HEX, NS_TUNABLE_COUPLER};

/// The default heavy-hex calibration snapshot, shipped with the crate.
pub const HEAVY_HEX_DEFAULT_CAL: &str = include_str!("../data/heavy_hex_cal.json");

/// The paper's idealized 5×5 transmon grid.
///
/// Deliberately the *legacy* device: no calibration, no namespace tag.
/// Its [`Backend::device`] is bit-identical to `Device::grid5x5()` —
/// same fingerprint, same store files, same bench dumps — so adopting
/// the backend registry is not a migration for existing users.
#[derive(Clone, Copy, Debug, Default)]
pub struct TransmonGridBackend;

impl HasTopology for TransmonGridBackend {
    fn topology(&self) -> Topology {
        Topology::grid(5, 5)
    }
}
impl HasSpec for TransmonGridBackend {}
impl HasCalibration for TransmonGridBackend {}
impl HasChannels for TransmonGridBackend {}
impl Backend for TransmonGridBackend {
    fn name(&self) -> &'static str {
        "transmon-grid"
    }
    fn ns_id(&self) -> Option<u8> {
        None
    }
    fn description(&self) -> &'static str {
        "idealized 5x5 transmon grid (the paper's device)"
    }
}

/// An IBM-style heavy-hex lattice with per-qubit calibration loaded
/// from a `paqoc-cal-1` snapshot file.
#[derive(Clone, Debug)]
pub struct HeavyHexBackend {
    tuning: DeviceTuning,
}

impl HeavyHexBackend {
    /// Hexagon rows/cols of the shipped lattice (33 qubits).
    pub const ROWS: usize = 2;
    /// See [`Self::ROWS`].
    pub const COLS: usize = 2;

    /// The backend with the shipped default snapshot.
    ///
    /// # Panics
    ///
    /// Never in practice: the embedded snapshot is validated by test.
    pub fn shipped() -> Self {
        Self::from_snapshot_str(HEAVY_HEX_DEFAULT_CAL).expect("shipped snapshot is valid")
    }

    /// The backend with a caller-supplied snapshot document.
    ///
    /// # Errors
    ///
    /// Returns [`CalError`] when the snapshot is malformed or does not
    /// cover the 33-qubit lattice.
    pub fn from_snapshot_str(text: &str) -> Result<Self, CalError> {
        let num_qubits = Topology::heavy_hex(Self::ROWS, Self::COLS).num_qubits();
        let tuning = parse_snapshot(text, num_qubits)?;
        Ok(HeavyHexBackend { tuning })
    }

    /// The backend with a snapshot read from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CalError`] when the file is unreadable or malformed.
    pub fn from_snapshot_file(path: &std::path::Path) -> Result<Self, CalError> {
        let text = std::fs::read_to_string(path).map_err(|e| CalError {
            message: format!("{}: {e}", path.display()),
        })?;
        Self::from_snapshot_str(&text)
    }
}

impl HasTopology for HeavyHexBackend {
    fn topology(&self) -> Topology {
        Topology::heavy_hex(Self::ROWS, Self::COLS)
    }
}
impl HasSpec for HeavyHexBackend {}
impl HasCalibration for HeavyHexBackend {
    fn calibration(&self) -> Option<DeviceTuning> {
        Some(self.tuning.clone())
    }
}
impl HasChannels for HeavyHexBackend {}
impl Backend for HeavyHexBackend {
    fn name(&self) -> &'static str {
        "heavy-hex"
    }
    fn ns_id(&self) -> Option<u8> {
        Some(NS_HEAVY_HEX)
    }
    fn description(&self) -> &'static str {
        "IBM-style 33-qubit heavy-hex lattice with per-qubit calibration"
    }
}

/// A tunable-coupler grid: every two-qubit channel's strength is a
/// deterministic function of a single flux parameter, modeling a
/// flux-biased coupler between fixed-frequency transmons.
#[derive(Clone, Debug)]
pub struct TunableCouplerBackend {
    flux: f64,
    tuning: DeviceTuning,
}

impl TunableCouplerBackend {
    /// Grid side of the tunable-coupler lattice.
    pub const SIDE: usize = 4;

    /// The backend at flux bias `flux` ∈ \[0, 1\].
    ///
    /// Coupler `k` (in topology edge order) gets scale
    /// `0.55 + 0.45·cos(flux·π·(k+1)/num_edges)` — each coupler sits at
    /// a different point of its flux-tuning curve, so the two-qubit
    /// channels are genuinely parametric: changing `flux` re-scales
    /// every coupler differently and rotates the namespace.
    ///
    /// # Panics
    ///
    /// Panics when `flux` is not finite or outside \[0, 1\].
    pub fn at_flux(flux: f64) -> Self {
        assert!(
            flux.is_finite() && (0.0..=1.0).contains(&flux),
            "flux bias {flux} outside [0, 1]"
        );
        let topology = Topology::grid(Self::SIDE, Self::SIDE);
        let mut tuning = DeviceTuning::identity(topology.num_qubits());
        let num_edges = topology.edges().len();
        for (k, &(a, b)) in topology.edges().iter().enumerate() {
            let theta = flux * std::f64::consts::PI * (k + 1) as f64 / num_edges as f64;
            let scale = 0.55 + 0.45 * theta.cos();
            tuning.coupler_scale.insert((a.min(b), a.max(b)), scale);
        }
        TunableCouplerBackend { flux, tuning }
    }

    /// The flux bias this backend was built at.
    pub fn flux(&self) -> f64 {
        self.flux
    }
}

impl Default for TunableCouplerBackend {
    fn default() -> Self {
        Self::at_flux(0.5)
    }
}

impl HasTopology for TunableCouplerBackend {
    fn topology(&self) -> Topology {
        Topology::grid(Self::SIDE, Self::SIDE)
    }
}
impl HasSpec for TunableCouplerBackend {}
impl HasCalibration for TunableCouplerBackend {
    fn calibration(&self) -> Option<DeviceTuning> {
        Some(self.tuning.clone())
    }
}
impl HasChannels for TunableCouplerBackend {}
impl Backend for TunableCouplerBackend {
    fn name(&self) -> &'static str {
        "tunable-coupler"
    }
    fn ns_id(&self) -> Option<u8> {
        Some(NS_TUNABLE_COUPLER)
    }
    fn description(&self) -> &'static str {
        "4x4 grid of fixed-frequency transmons with flux-tunable couplers"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_device::{decode_fingerprint, Device, FingerprintKind};

    #[test]
    fn transmon_grid_backend_is_bit_identical_to_grid5x5() {
        let via_backend = TransmonGridBackend.device();
        let legacy = Device::grid5x5();
        assert_eq!(via_backend.fingerprint(), legacy.fingerprint());
        assert_eq!(via_backend.backend_name(), "transmon-grid");
        assert_eq!(
            decode_fingerprint(via_backend.fingerprint()),
            FingerprintKind::Legacy
        );
        // The control sets — what GRAPE and the analytic model actually
        // consume — agree too.
        let a = via_backend.controls_for(&[0, 1]);
        let b = legacy.controls_for(&[0, 1]);
        assert_eq!(a.channels.len(), b.channels.len());
        for (ca, cb) in a.channels.iter().zip(&b.channels) {
            assert_eq!(ca.max_amp.to_bits(), cb.max_amp.to_bits());
        }
    }

    #[test]
    fn shipped_heavy_hex_snapshot_is_valid_and_namespaced() {
        let backend = HeavyHexBackend::shipped();
        let device = backend.device();
        assert_eq!(device.topology().num_qubits(), 33);
        assert_eq!(device.backend_name(), "heavy-hex");
        match decode_fingerprint(device.fingerprint()) {
            FingerprintKind::Namespaced { ns_id, cal_id } => {
                assert_eq!(ns_id, NS_HEAVY_HEX);
                assert_eq!(Some(cal_id), backend.calibration_id());
            }
            k => panic!("expected namespaced fingerprint, got {k:?}"),
        }
    }

    #[test]
    fn heavy_hex_snapshot_drift_rotates_the_fingerprint() {
        let base = HeavyHexBackend::shipped().device();
        let drifted = HEAVY_HEX_DEFAULT_CAL.replacen("\"t1_us\": 1", "\"t1_us\": 2", 1);
        assert_ne!(drifted, HEAVY_HEX_DEFAULT_CAL, "the replace must bite");
        let drifted = HeavyHexBackend::from_snapshot_str(&drifted)
            .expect("still valid")
            .device();
        assert_ne!(base.fingerprint(), drifted.fingerprint());
        assert!(paqoc_device::is_namespaced(drifted.fingerprint()));
    }

    #[test]
    fn tunable_coupler_flux_is_parametric() {
        let a = TunableCouplerBackend::at_flux(0.25).device();
        let b = TunableCouplerBackend::at_flux(0.75).device();
        assert_ne!(a.fingerprint(), b.fingerprint(), "flux is part of identity");
        // Different couplers sit at different points of the tuning
        // curve even within one device.
        let t = TunableCouplerBackend::at_flux(0.5);
        let edges = t.topology();
        let edges = edges.edges();
        let first = t.tuning.coupler(edges[0].0, edges[0].1);
        let last = t
            .tuning
            .coupler(edges[edges.len() - 1].0, edges[edges.len() - 1].1);
        assert_ne!(first, last);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn tunable_coupler_rejects_wild_flux() {
        let _ = TunableCouplerBackend::at_flux(1.5);
    }
}
