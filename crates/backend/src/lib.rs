//! # paqoc-backend
//!
//! Pluggable device targets for the PAQOC pipeline.
//!
//! A [`Backend`] bundles four concerns behind one registry name:
//! coupling topology, Hamiltonian-level control limits, a per-qubit /
//! per-coupler calibration snapshot, and control-channel naming. Three
//! targets ship:
//!
//! * `transmon-grid` — the paper's idealized 5×5 lattice, bit-identical
//!   to `Device::grid5x5()` (legacy fingerprint, untouched stores).
//! * `heavy-hex` — an IBM-style 33-qubit heavy-hex lattice calibrated
//!   from a JSON snapshot ([`HEAVY_HEX_DEFAULT_CAL`], overridable).
//! * `tunable-coupler` — a 4×4 grid with flux-parametric two-qubit
//!   channels.
//!
//! Calibrated backends build namespace-fingerprinted devices (see
//! `paqoc_device::fingerprint`), which isolates their pulse stores and
//! cache keys from each other and from the legacy grid. The crate also
//! lowers compiled circuits to channel-addressed pulse programs
//! ([`lower_to_program`]) and (de)serializes them as OpenPulse-style
//! JSON ([`export`] / [`import`]) for cross-tool exchange; the
//! `paqoc-export` binary drives both ends.
//!
//! ## Example
//!
//! ```
//! use paqoc_backend::{resolve, export, import, lower_to_program, sample_exact_eq};
//! use paqoc_circuit::Circuit;
//! use paqoc_core::{compile, PipelineOptions};
//! use paqoc_device::AnalyticModel;
//!
//! let backend = resolve("heavy-hex").expect("registered");
//! let device = backend.device();
//! let mut circuit = Circuit::new(2);
//! circuit.h(0).cx(0, 1);
//! let mut source = AnalyticModel::new();
//! let result = compile(&circuit, &device, &mut source, &PipelineOptions::m0());
//! let program = lower_to_program("bell", &result, &device, backend.as_ref());
//! let wire = export(&program);
//! assert!(sample_exact_eq(&program, &import(&wire).expect("strict")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backends;
mod openpulse;
mod registry;
mod schedule;
mod snapshot;
mod traits;

pub use backends::{
    HeavyHexBackend, TransmonGridBackend, TunableCouplerBackend, HEAVY_HEX_DEFAULT_CAL,
};
pub use openpulse::{export, import, sample_exact_eq, ImportError, SCHEMA_VERSION};
pub use registry::{resolve, resolve_with_cal, BackendError, BACKEND_NAMES};
pub use schedule::{
    lower_to_program, Experiment, PlayInst, PulseDef, PulseProgram, MAX_ENVELOPE_SAMPLES,
};
pub use snapshot::{parse_snapshot, CalError};
pub use traits::{Backend, HasCalibration, HasChannels, HasSpec, HasTopology};
