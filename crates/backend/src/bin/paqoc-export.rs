//! `paqoc-export` — compile a benchmark on a backend and export its
//! pulse schedule as OpenPulse JSON.
//!
//! ```text
//! paqoc-export list-backends
//! paqoc-export <benchmark> [--backend <name>] [--cal <snapshot.json>]
//!              [--out <file>] [--reimport-check]
//! ```
//!
//! With `--out` the document goes to the file (stdout otherwise).
//! `--reimport-check` parses the emitted document back and verifies the
//! roundtrip is sample-exact, exiting 3 on any mismatch — the CI smoke
//! gate for exporter/importer drift.

use paqoc_backend::{export, import, lower_to_program, resolve_with_cal, sample_exact_eq};
use paqoc_core::{compile, PipelineOptions};
use paqoc_device::AnalyticModel;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    benchmark: String,
    backend: String,
    cal: Option<PathBuf>,
    out: Option<PathBuf>,
    reimport_check: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: paqoc-export list-backends\n\
         \x20      paqoc-export <benchmark> [--backend <name>] [--cal <snapshot.json>]\n\
         \x20                   [--out <file>] [--reimport-check]"
    );
    ExitCode::from(1)
}

fn parse_args(argv: &[String]) -> Option<Args> {
    let mut it = argv.iter().map(String::as_str);
    let benchmark = it.next()?.to_string();
    let mut args = Args {
        benchmark,
        backend: "transmon-grid".to_string(),
        cal: None,
        out: None,
        reimport_check: false,
    };
    while let Some(flag) = it.next() {
        match flag {
            "--backend" => args.backend = it.next()?.to_string(),
            "--cal" => args.cal = Some(PathBuf::from(it.next()?)),
            "--out" => args.out = Some(PathBuf::from(it.next()?)),
            "--reimport-check" => args.reimport_check = true,
            _ => return None,
        }
    }
    Some(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("list-backends") {
        for name in paqoc_backend::BACKEND_NAMES {
            let backend = resolve_with_cal(name, None).expect("registered");
            println!("{name:16} {}", backend.description());
        }
        return ExitCode::SUCCESS;
    }
    let Some(args) = parse_args(&argv) else {
        return usage();
    };

    let backend = match resolve_with_cal(&args.backend, args.cal.as_deref()) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("paqoc-export: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(bench) = paqoc_workloads::benchmark(&args.benchmark) else {
        eprintln!("paqoc-export: unknown benchmark {:?}", args.benchmark);
        return ExitCode::from(2);
    };

    let device = backend.device();
    let circuit = (bench.build)();
    if circuit.num_qubits() > device.topology().num_qubits() {
        eprintln!(
            "paqoc-export: {} needs {} qubits, backend {:?} has {}",
            bench.name,
            circuit.num_qubits(),
            backend.name(),
            device.topology().num_qubits()
        );
        return ExitCode::from(2);
    }
    let mut source = AnalyticModel::new();
    let result = compile(&circuit, &device, &mut source, &PipelineOptions::m0());
    let program = lower_to_program(bench.name, &result, &device, backend.as_ref());
    let text = export(&program);

    if args.reimport_check {
        match import(&text) {
            Ok(back) if sample_exact_eq(&program, &back) => {
                eprintln!(
                    "reimport-check: ok ({} pulses, {} instructions)",
                    program.pulses.len(),
                    program.experiments[0].instructions.len()
                );
            }
            Ok(_) => {
                eprintln!("paqoc-export: reimport-check FAILED: roundtrip not sample-exact");
                return ExitCode::from(3);
            }
            Err(e) => {
                eprintln!("paqoc-export: reimport-check FAILED: {e}");
                return ExitCode::from(3);
            }
        }
    }

    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text + "\n") {
                eprintln!("paqoc-export: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        None => println!("{text}"),
    }
    ExitCode::SUCCESS
}
