//! Pulse-schedule extraction.
//!
//! Lowers a compiled [`GroupedCircuit`] to a flat, channel-addressed
//! pulse program: each customized-gate group becomes one waveform in
//! the pulse library plus one `play` instruction per control channel it
//! touches, started at the group's critical-path offset (`cp_before`,
//! quantized to device cycles). This is the exchange format the
//! OpenPulse exporter serializes.

use crate::traits::Backend;
use paqoc_core::{CompilationResult, GroupedCircuit};
use paqoc_device::Device;

/// One waveform in the pulse library.
#[derive(Clone, Debug, PartialEq)]
pub struct PulseDef {
    /// Library name, unique within a program.
    pub name: String,
    /// Complex samples, one per device cycle.
    pub samples: Vec<(f64, f64)>,
}

/// One `play` instruction: a library waveform on a channel at a time.
#[derive(Clone, Debug, PartialEq)]
pub struct PlayInst {
    /// Pulse-library name.
    pub pulse: String,
    /// Channel name (`d{q}` drive / `u{k}` coupler by default).
    pub channel: String,
    /// Start time in device cycles.
    pub t0_dt: u64,
}

/// One experiment (a compiled circuit's schedule).
#[derive(Clone, Debug, PartialEq)]
pub struct Experiment {
    /// Experiment name (the benchmark name).
    pub name: String,
    /// Instructions in deterministic order (group topological order,
    /// channels sorted within a group).
    pub instructions: Vec<PlayInst>,
}

/// A complete pulse program: identity + library + experiments.
#[derive(Clone, Debug, PartialEq)]
pub struct PulseProgram {
    /// Deterministic program id.
    pub qobj_id: String,
    /// Backend registry name.
    pub backend_name: String,
    /// The device fingerprint the program was compiled against.
    pub fingerprint: u64,
    /// Calibration-snapshot digest, `None` for legacy devices.
    pub calibration_id: Option<u16>,
    /// Device cycle time, nanoseconds.
    pub dt_ns: f64,
    /// The pulse library, sorted by name.
    pub pulses: Vec<PulseDef>,
    /// The experiments.
    pub experiments: Vec<Experiment>,
}

/// Envelope length cap, cycles. Long groups are represented by a
/// decimated envelope — the exchange format is a schedule skeleton for
/// cross-tool interop, not a full AWG waveform dump.
pub const MAX_ENVELOPE_SAMPLES: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// JSON's number grammar cannot distinguish `-0.0` from `0.0` (the
/// writer prints integer-valued floats without a sign), so envelopes
/// never carry a negative zero.
fn scrub_zero(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x
    }
}

/// Deterministic envelope for a group: a raised-cosine ramp with a
/// phase seeded from the pulse name and device fingerprint. Purely a
/// function of its inputs — two exports of the same compile are
/// byte-identical.
fn synthesize_envelope(
    name: &str,
    fingerprint: u64,
    duration_dt: u64,
    max_amp: f64,
) -> Vec<(f64, f64)> {
    let n = (duration_dt.max(4) as usize).min(MAX_ENVELOPE_SAMPLES);
    let seed = fnv1a(
        fnv1a(FNV_OFFSET, name.as_bytes()),
        &fingerprint.to_le_bytes(),
    );
    let phase0 = (seed >> 11) as f64 / (1u64 << 53) as f64 * std::f64::consts::TAU;
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let x = (i as f64 + 0.5) / n as f64;
        let window = 0.5 * (1.0 - (std::f64::consts::TAU * x).cos());
        let phase = phase0 + std::f64::consts::PI * x;
        let amp = max_amp * window;
        samples.push((scrub_zero(amp * phase.cos()), scrub_zero(amp * phase.sin())));
    }
    samples
}

/// Lowers a compilation result to a [`PulseProgram`] on `backend`.
///
/// Deterministic: group topological order fixes instruction order, and
/// envelopes are pure functions of (pulse name, fingerprint, duration).
///
/// # Panics
///
/// Panics if `result` was not compiled for `backend`'s device (the
/// group qubits index channels of the backend's topology).
pub fn lower_to_program(
    experiment_name: &str,
    result: &CompilationResult,
    device: &Device,
    backend: &dyn Backend,
) -> PulseProgram {
    let grouped = &result.grouped;
    let dt_ns = device.spec().dt_ns;
    let (pulses, instructions) = lower_groups(grouped, device, backend, dt_ns);
    PulseProgram {
        qobj_id: format!(
            "{}-{}-{:016x}",
            backend.name(),
            experiment_name,
            device.fingerprint()
        ),
        backend_name: backend.name().to_string(),
        fingerprint: device.fingerprint(),
        calibration_id: device.tag().map(|t| t.cal_id),
        dt_ns,
        pulses,
        experiments: vec![Experiment {
            name: experiment_name.to_string(),
            instructions,
        }],
    }
}

fn lower_groups(
    grouped: &GroupedCircuit,
    device: &Device,
    backend: &dyn Backend,
    dt_ns: f64,
) -> (Vec<PulseDef>, Vec<PlayInst>) {
    let order = grouped.topological_order();
    let cp_before = grouped.cp_before();
    let topology = device.topology();
    let mut pulses = Vec::new();
    let mut instructions = Vec::new();
    for &gid in &order {
        let group = grouped.group(gid);
        let mut label: Vec<&str> = group
            .instructions
            .iter()
            .take(3)
            .map(|inst| inst.gate().name())
            .collect();
        if group.instructions.len() > 3 {
            label.push("etc");
        }
        let name = format!("g{gid}_{}", label.join("_"));
        let t0_dt = (cp_before[gid] / dt_ns).round() as u64;
        let duration_dt = device.spec().ns_to_dt(group.latency_ns);
        let qubits: Vec<usize> = group.qubits.iter().copied().collect();
        let max_amp = qubits
            .iter()
            .map(|&q| device.single_qubit_limit_for(q))
            .fold(0.0f64, f64::max);
        pulses.push(PulseDef {
            name: name.clone(),
            samples: synthesize_envelope(&name, device.fingerprint(), duration_dt, max_amp),
        });
        let mut channels: Vec<String> = qubits.iter().map(|&q| backend.drive_channel(q)).collect();
        for (k, &(a, b)) in topology.edges().iter().enumerate() {
            if qubits.contains(&a) && qubits.contains(&b) {
                channels.push(backend.coupler_channel(k));
            }
        }
        channels.sort();
        for channel in channels {
            instructions.push(PlayInst {
                pulse: name.clone(),
                channel,
                t0_dt,
            });
        }
    }
    pulses.sort_by(|a, b| a.name.cmp(&b.name));
    pulses.dedup_by(|a, b| a.name == b.name);
    (pulses, instructions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::TransmonGridBackend;
    use crate::traits::Backend;
    use paqoc_circuit::Circuit;
    use paqoc_core::{compile, PipelineOptions};
    use paqoc_device::AnalyticModel;

    fn tiny_program() -> PulseProgram {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).x(2).cx(1, 2);
        let backend = TransmonGridBackend;
        let device = backend.device();
        let mut source = AnalyticModel::new();
        let result = compile(&c, &device, &mut source, &PipelineOptions::m0());
        lower_to_program("tiny", &result, &device, &backend)
    }

    #[test]
    fn lowering_is_deterministic_and_consistent() {
        let a = tiny_program();
        let b = tiny_program();
        assert_eq!(a, b, "same compile → identical program");
        assert!(!a.pulses.is_empty());
        let exp = &a.experiments[0];
        assert!(!exp.instructions.is_empty());
        // Every instruction references a library pulse.
        for inst in &exp.instructions {
            assert!(
                a.pulses.iter().any(|p| p.name == inst.pulse),
                "dangling pulse reference {:?}",
                inst.pulse
            );
            assert!(inst.channel.starts_with('d') || inst.channel.starts_with('u'));
        }
    }

    #[test]
    fn envelopes_are_bounded_and_scrubbed() {
        let p = tiny_program();
        for pulse in &p.pulses {
            assert!(pulse.samples.len() <= MAX_ENVELOPE_SAMPLES);
            assert!(pulse.samples.len() >= 4);
            for &(re, im) in &pulse.samples {
                assert!(re.is_finite() && im.is_finite());
                assert_ne!(re.to_bits(), (-0.0f64).to_bits(), "-0.0 never exported");
                assert_ne!(im.to_bits(), (-0.0f64).to_bits());
            }
        }
    }

    #[test]
    fn start_times_follow_the_critical_path() {
        let p = tiny_program();
        let first = p.experiments[0].instructions.first().expect("nonempty");
        assert_eq!(first.t0_dt, 0, "some group starts at t = 0");
        let max_t0 = p.experiments[0]
            .instructions
            .iter()
            .map(|i| i.t0_dt)
            .max()
            .expect("nonempty");
        assert!(max_t0 > 0, "a dependent group starts later");
    }
}
