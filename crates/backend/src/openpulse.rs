//! OpenPulse-compatible JSON export and strict re-import.
//!
//! The wire format is a pulse-qobj-shaped document on the repo's own
//! JSON dialect (`paqoc_telemetry::json`):
//!
//! ```json
//! {
//!   "qobj_id": "heavy-hex-bv-b5…",
//!   "type": "PULSE",
//!   "schema_version": "1.0",
//!   "backend": {"name": "heavy-hex", "fingerprint": "b5…", "calibration_id": 4660},
//!   "config": {
//!     "dt_ns": 0.125,
//!     "pulse_library": [{"name": "g0_cx", "samples": [[0.01, -0.02], …]}, …]
//!   },
//!   "experiments": [
//!     {"header": {"name": "bv"},
//!      "instructions": [{"name": "g0_cx", "ch": "d0", "t0": 0}, …]}
//!   ]
//! }
//! ```
//!
//! Export is lossless for every finite sample except `-0.0`, which the
//! number grammar cannot carry; [`export`] scrubs it to `+0.0` so
//! export → [`import`] → [`export`] is a byte-level fixed point.
//! [`import`] is strict: missing fields, wrong types, dangling pulse
//! references, non-finite samples, or a malformed fingerprint are typed
//! [`ImportError`]s, never defaults.

use crate::schedule::{Experiment, PlayInst, PulseDef, PulseProgram};
use paqoc_telemetry::json::{parse, Value};
use std::collections::BTreeMap;

/// The exporter's schema tag.
pub const SCHEMA_VERSION: &str = "1.0";

/// Why a document failed to import.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImportError {
    /// What was wrong, with enough context to locate it.
    pub message: String,
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "openpulse import rejected: {}", self.message)
    }
}

impl std::error::Error for ImportError {}

fn fail(message: impl Into<String>) -> ImportError {
    ImportError {
        message: message.into(),
    }
}

fn scrub_zero(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// Serializes a program to the OpenPulse JSON document.
pub fn export(program: &PulseProgram) -> String {
    let pulse_library: Vec<Value> = program
        .pulses
        .iter()
        .map(|p| {
            let samples: Vec<Value> = p
                .samples
                .iter()
                .map(|&(re, im)| {
                    Value::Arr(vec![Value::Num(scrub_zero(re)), Value::Num(scrub_zero(im))])
                })
                .collect();
            obj(vec![
                ("name", Value::Str(p.name.clone())),
                ("samples", Value::Arr(samples)),
            ])
        })
        .collect();
    let experiments: Vec<Value> = program
        .experiments
        .iter()
        .map(|e| {
            let instructions: Vec<Value> = e
                .instructions
                .iter()
                .map(|i| {
                    obj(vec![
                        ("name", Value::Str(i.pulse.clone())),
                        ("ch", Value::Str(i.channel.clone())),
                        ("t0", Value::Num(i.t0_dt as f64)),
                    ])
                })
                .collect();
            obj(vec![
                ("header", obj(vec![("name", Value::Str(e.name.clone()))])),
                ("instructions", Value::Arr(instructions)),
            ])
        })
        .collect();
    let calibration_id = match program.calibration_id {
        Some(id) => Value::Num(id as f64),
        None => Value::Null,
    };
    let doc = obj(vec![
        ("qobj_id", Value::Str(program.qobj_id.clone())),
        ("type", Value::Str("PULSE".to_string())),
        ("schema_version", Value::Str(SCHEMA_VERSION.to_string())),
        (
            "backend",
            obj(vec![
                ("name", Value::Str(program.backend_name.clone())),
                (
                    "fingerprint",
                    Value::Str(format!("{:016x}", program.fingerprint)),
                ),
                ("calibration_id", calibration_id),
            ]),
        ),
        (
            "config",
            obj(vec![
                ("dt_ns", Value::Num(program.dt_ns)),
                ("pulse_library", Value::Arr(pulse_library)),
            ]),
        ),
        ("experiments", Value::Arr(experiments)),
    ]);
    doc.to_json()
}

fn need<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, ImportError> {
    v.get(key)
        .ok_or_else(|| fail(format!("{ctx}: missing field {key:?}")))
}

fn need_str(v: &Value, key: &str, ctx: &str) -> Result<String, ImportError> {
    need(v, key, ctx)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| fail(format!("{ctx}: field {key:?} is not a string")))
}

fn need_finite(v: &Value, key: &str, ctx: &str) -> Result<f64, ImportError> {
    let n = need(v, key, ctx)?
        .as_num()
        .ok_or_else(|| fail(format!("{ctx}: field {key:?} is not a number")))?;
    if !n.is_finite() {
        return Err(fail(format!("{ctx}: field {key:?} is not finite")));
    }
    Ok(n)
}

fn need_u64(v: &Value, key: &str, ctx: &str) -> Result<u64, ImportError> {
    let n = need_finite(v, key, ctx)?;
    if n < 0.0 || n.fract() != 0.0 || n > (1u64 << 53) as f64 {
        return Err(fail(format!(
            "{ctx}: field {key:?} = {n} is not an unsigned integer"
        )));
    }
    Ok(n as u64)
}

fn need_arr<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a [Value], ImportError> {
    need(v, key, ctx)?
        .as_arr()
        .ok_or_else(|| fail(format!("{ctx}: field {key:?} is not an array")))
}

/// Parses an OpenPulse document back into a [`PulseProgram`].
///
/// # Errors
///
/// Returns [`ImportError`] on any deviation from the exported schema.
pub fn import(text: &str) -> Result<PulseProgram, ImportError> {
    let doc = parse(text).map_err(|e| fail(format!("invalid JSON: {e}")))?;
    let ty = need_str(&doc, "type", "document")?;
    if ty != "PULSE" {
        return Err(fail(format!("document type {ty:?} is not \"PULSE\"")));
    }
    let schema = need_str(&doc, "schema_version", "document")?;
    if schema != SCHEMA_VERSION {
        return Err(fail(format!("unsupported schema_version {schema:?}")));
    }
    let qobj_id = need_str(&doc, "qobj_id", "document")?;

    let backend = need(&doc, "backend", "document")?;
    let backend_name = need_str(backend, "name", "backend")?;
    let fp_hex = need_str(backend, "fingerprint", "backend")?;
    if fp_hex.len() != 16 {
        return Err(fail(format!(
            "backend: fingerprint {fp_hex:?} is not 16 hex digits"
        )));
    }
    let fingerprint = u64::from_str_radix(&fp_hex, 16)
        .map_err(|_| fail(format!("backend: fingerprint {fp_hex:?} is not hex")))?;
    let calibration_id = match need(backend, "calibration_id", "backend")? {
        Value::Null => None,
        v => {
            let n = v
                .as_num()
                .ok_or_else(|| fail("backend: calibration_id is neither null nor a number"))?;
            if n < 0.0 || n.fract() != 0.0 || n > u16::MAX as f64 {
                return Err(fail(format!(
                    "backend: calibration_id {n} does not fit in 16 bits"
                )));
            }
            Some(n as u16)
        }
    };

    let config = need(&doc, "config", "document")?;
    let dt_ns = need_finite(config, "dt_ns", "config")?;
    if dt_ns <= 0.0 {
        return Err(fail(format!("config: dt_ns = {dt_ns} is not positive")));
    }
    let mut pulses = Vec::new();
    let mut names = std::collections::BTreeSet::new();
    for (i, p) in need_arr(config, "pulse_library", "config")?
        .iter()
        .enumerate()
    {
        let ctx = format!("pulse_library[{i}]");
        let name = need_str(p, "name", &ctx)?;
        if !names.insert(name.clone()) {
            return Err(fail(format!("{ctx}: duplicate pulse name {name:?}")));
        }
        let mut samples = Vec::new();
        for (j, s) in need_arr(p, "samples", &ctx)?.iter().enumerate() {
            let pair = s
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| fail(format!("{ctx}: samples[{j}] is not an [re, im] pair")))?;
            let comp = |v: &Value, part: &str| {
                let n = v
                    .as_num()
                    .ok_or_else(|| fail(format!("{ctx}: samples[{j}].{part} is not a number")))?;
                if !n.is_finite() {
                    return Err(fail(format!("{ctx}: samples[{j}].{part} is not finite")));
                }
                Ok(n)
            };
            samples.push((comp(&pair[0], "re")?, comp(&pair[1], "im")?));
        }
        pulses.push(PulseDef { name, samples });
    }

    let mut experiments = Vec::new();
    for (i, e) in need_arr(&doc, "experiments", "document")?
        .iter()
        .enumerate()
    {
        let ctx = format!("experiments[{i}]");
        let header = need(e, "header", &ctx)?;
        let name = need_str(header, "name", &ctx)?;
        let mut instructions = Vec::new();
        for (j, inst) in need_arr(e, "instructions", &ctx)?.iter().enumerate() {
            let ictx = format!("{ctx}.instructions[{j}]");
            let pulse = need_str(inst, "name", &ictx)?;
            if !names.contains(&pulse) {
                return Err(fail(format!("{ictx}: dangling pulse reference {pulse:?}")));
            }
            instructions.push(PlayInst {
                pulse,
                channel: need_str(inst, "ch", &ictx)?,
                t0_dt: need_u64(inst, "t0", &ictx)?,
            });
        }
        experiments.push(Experiment { name, instructions });
    }

    Ok(PulseProgram {
        qobj_id,
        backend_name,
        fingerprint,
        calibration_id,
        dt_ns,
        pulses,
        experiments,
    })
}

/// Bit-exact equality of two programs, sample by sample, modulo the
/// `-0.0` → `+0.0` normalization the wire format imposes.
pub fn sample_exact_eq(a: &PulseProgram, b: &PulseProgram) -> bool {
    let norm = |p: &PulseProgram| {
        let mut p = p.clone();
        for pulse in &mut p.pulses {
            for s in &mut pulse.samples {
                s.0 = scrub_zero(s.0);
                s.1 = scrub_zero(s.1);
            }
        }
        p
    };
    let (a, b) = (norm(a), norm(b));
    if (
        &a.qobj_id,
        &a.backend_name,
        a.fingerprint,
        a.calibration_id,
        a.dt_ns.to_bits(),
        &a.experiments,
    ) != (
        &b.qobj_id,
        &b.backend_name,
        b.fingerprint,
        b.calibration_id,
        b.dt_ns.to_bits(),
        &b.experiments,
    ) {
        return false;
    }
    a.pulses.len() == b.pulses.len()
        && a.pulses.iter().zip(&b.pulses).all(|(pa, pb)| {
            pa.name == pb.name
                && pa.samples.len() == pb.samples.len()
                && pa.samples.iter().zip(&pb.samples).all(|(sa, sb)| {
                    sa.0.to_bits() == sb.0.to_bits() && sa.1.to_bits() == sb.1.to_bits()
                })
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hostile_program() -> PulseProgram {
        PulseProgram {
            qobj_id: "id with \"quotes\" and \\ backslashes".to_string(),
            backend_name: "heavy-hex".to_string(),
            fingerprint: 0xb510_2345_6789_abcd,
            calibration_id: Some(0x1234),
            dt_ns: 0.125,
            pulses: vec![
                PulseDef {
                    name: "g0_cx\n\t\"π\"".to_string(),
                    samples: vec![(0.25, -0.125), (1.0, 0.0), (-0.0, 1e-300)],
                },
                PulseDef {
                    name: "控制-π/2 🎛".to_string(),
                    samples: vec![(f64::MIN_POSITIVE, -f64::EPSILON)],
                },
            ],
            experiments: vec![Experiment {
                name: "bench \"x\" <&>".to_string(),
                instructions: vec![
                    PlayInst {
                        pulse: "g0_cx\n\t\"π\"".to_string(),
                        channel: "d0".to_string(),
                        t0_dt: 0,
                    },
                    PlayInst {
                        pulse: "控制-π/2 🎛".to_string(),
                        channel: "u12".to_string(),
                        t0_dt: 987_654,
                    },
                ],
            }],
        }
    }

    #[test]
    fn hostile_names_and_extreme_samples_roundtrip() {
        let program = hostile_program();
        let text = export(&program);
        let back = import(&text).expect("import");
        assert!(sample_exact_eq(&program, &back));
        // And the wire form is a fixed point.
        assert_eq!(text, export(&back));
    }

    #[test]
    fn negative_zero_is_scrubbed_not_corrupted() {
        let program = hostile_program();
        let back = import(&export(&program)).expect("import");
        let s = back.pulses[0].samples[2];
        assert_eq!(s.0.to_bits(), 0.0f64.to_bits(), "-0.0 → +0.0 on the wire");
        assert_eq!(s.1, 1e-300, "tiny magnitudes survive exactly");
    }

    #[test]
    fn import_rejects_structural_damage() {
        let good = export(&hostile_program());
        for (mutation, what) in [
            (good.replace("\"PULSE\"", "\"QASM\""), "not \"PULSE\""),
            (good.replace("\"1.0\"", "\"9.9\""), "schema_version"),
            (good.replace("987654", "-1"), "unsigned integer"),
            (good.replace("\"d0\"", "0"), "not a string"),
            (
                good.replace("b51023456789abcd", "xyz3456789abcdef"),
                "not hex",
            ),
        ] {
            let e = import(&mutation).expect_err(what);
            assert!(e.message.contains(what), "{what}: {e}");
        }
        // A dangling pulse reference (rename in the library only).
        let dangling = good.replacen("控制", "失控", 1);
        assert!(import(&dangling).is_err());
    }

    #[test]
    fn missing_calibration_id_roundtrips_as_null() {
        let mut program = hostile_program();
        program.calibration_id = None;
        let back = import(&export(&program)).expect("import");
        assert_eq!(back.calibration_id, None);
    }
}
