//! Name → backend resolution.

use crate::backends::{HeavyHexBackend, TransmonGridBackend, TunableCouplerBackend};
use crate::traits::Backend;

/// Registry names of the shipped backends, in presentation order.
pub const BACKEND_NAMES: [&str; 3] = ["transmon-grid", "heavy-hex", "tunable-coupler"];

/// Why a backend could not be resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// No backend with that name is registered.
    Unknown {
        /// The requested name.
        name: String,
    },
    /// The calibration override could not be loaded.
    Calibration {
        /// The parse/read failure.
        message: String,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Unknown { name } => write!(
                f,
                "unknown backend {name:?} (known: {})",
                BACKEND_NAMES.join(", ")
            ),
            BackendError::Calibration { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// Resolves a backend by registry name, with its shipped calibration.
///
/// # Errors
///
/// Returns [`BackendError::Unknown`] for an unregistered name.
pub fn resolve(name: &str) -> Result<Box<dyn Backend>, BackendError> {
    resolve_with_cal(name, None)
}

/// Resolves a backend by name, optionally overriding its calibration
/// snapshot with the file at `cal`.
///
/// Only the heavy-hex backend accepts a snapshot override; passing one
/// to the other backends is an error (silently ignoring an operator's
/// calibration file would be worse).
///
/// # Errors
///
/// Returns [`BackendError`] on an unknown name, an unreadable or
/// malformed snapshot, or an override for a backend that takes none.
pub fn resolve_with_cal(
    name: &str,
    cal: Option<&std::path::Path>,
) -> Result<Box<dyn Backend>, BackendError> {
    match name {
        "heavy-hex" => {
            let backend = match cal {
                Some(path) => HeavyHexBackend::from_snapshot_file(path).map_err(|e| {
                    BackendError::Calibration {
                        message: e.to_string(),
                    }
                })?,
                None => HeavyHexBackend::shipped(),
            };
            Ok(Box::new(backend))
        }
        "transmon-grid" | "tunable-coupler" => {
            if let Some(path) = cal {
                return Err(BackendError::Calibration {
                    message: format!(
                        "backend {name:?} takes no calibration snapshot (got {})",
                        path.display()
                    ),
                });
            }
            Ok(match name {
                "transmon-grid" => Box::new(TransmonGridBackend),
                _ => Box::new(TunableCouplerBackend::default()),
            })
        }
        _ => Err(BackendError::Unknown {
            name: name.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_resolves_to_itself() {
        for name in BACKEND_NAMES {
            let b = resolve(name).expect(name);
            assert_eq!(b.name(), name);
            assert!(!b.description().is_empty());
        }
    }

    #[test]
    fn unknown_name_lists_the_registry() {
        let Err(e) = resolve("ion-trap") else {
            panic!("unknown backend must fail");
        };
        assert!(e.to_string().contains("transmon-grid"), "{e}");
    }

    #[test]
    fn cal_override_is_rejected_where_meaningless() {
        let Err(e) = resolve_with_cal("transmon-grid", Some(std::path::Path::new("/tmp/x.json")))
        else {
            panic!("cal override on transmon-grid must fail");
        };
        assert!(e.to_string().contains("takes no calibration"), "{e}");
    }
}
