//! The backend trait family: one small trait per concern.
//!
//! Mirrors the repo's `Gate` idiom — a backend is not one fat object
//! but the intersection of four narrow capabilities, each of which can
//! be reasoned about (and defaulted) independently:
//!
//! * [`HasTopology`] — the coupling lattice.
//! * [`HasSpec`] — the Hamiltonian-level control limits.
//! * [`HasCalibration`] — the per-qubit / per-coupler overlay, if any.
//! * [`HasChannels`] — the control-channel naming scheme.
//!
//! [`Backend`] composes them and owns the one derived operation that
//! must be consistent across the stack: building the [`Device`] whose
//! fingerprint namespaces every pulse store and cache key downstream.

use paqoc_device::{Device, DeviceTuning, HardwareSpec, Topology};

/// Concern 1: the coupling lattice.
pub trait HasTopology {
    /// The backend's qubit-coupling graph.
    fn topology(&self) -> Topology;
}

/// Concern 2: the Hamiltonian-level control limits.
pub trait HasSpec {
    /// The control-field limits shared by every qubit before
    /// calibration scaling. Defaults to the paper's transmon-XY spec.
    fn spec(&self) -> HardwareSpec {
        HardwareSpec::transmon_xy()
    }
}

/// Concern 3: the calibration overlay.
pub trait HasCalibration {
    /// The per-qubit / per-coupler calibration snapshot, or `None` for
    /// an idealized (spec-only) device.
    fn calibration(&self) -> Option<DeviceTuning> {
        None
    }

    /// The 16-bit digest of the active snapshot, `None` when
    /// uncalibrated. A drifted snapshot changes this, which rotates the
    /// device fingerprint and with it every store namespace.
    fn calibration_id(&self) -> Option<u16> {
        self.calibration().map(|t| t.cal_id())
    }
}

/// Concern 4: control-channel naming.
///
/// The default scheme matches OpenPulse convention: `d{q}` for the
/// drive channel of qubit `q`, `u{k}` for the control channel of the
/// `k`-th coupler in the topology's edge list.
pub trait HasChannels {
    /// Drive-channel name of qubit `q`.
    fn drive_channel(&self, q: usize) -> String {
        format!("d{q}")
    }

    /// Control-channel name of the `k`-th coupler edge.
    fn coupler_channel(&self, k: usize) -> String {
        format!("u{k}")
    }
}

/// A pluggable device target.
///
/// Implementors provide identity ([`Backend::name`], [`Backend::ns_id`])
/// on top of the four concern traits; [`Backend::device`] derives the
/// device — tagged and namespace-fingerprinted when the backend is
/// calibrated, bit-identical to the legacy constructor when it is not.
pub trait Backend: HasTopology + HasSpec + HasCalibration + HasChannels {
    /// Registry name, e.g. `"heavy-hex"`.
    fn name(&self) -> &'static str;

    /// Fingerprint namespace id (see `paqoc_device::fingerprint`), or
    /// `None` for a legacy untagged device. The paper grid returns
    /// `None` so its fingerprint — and with it every store file, cache
    /// key, bench dump and baseline — stays byte-identical.
    fn ns_id(&self) -> Option<u8>;

    /// One-line human description for CLI listings.
    fn description(&self) -> &'static str {
        ""
    }

    /// Builds the device this backend models.
    fn device(&self) -> Device {
        match (self.ns_id(), self.calibration()) {
            (Some(ns), Some(tuning)) => {
                Device::with_tuning(self.topology(), self.spec(), tuning, self.name(), ns)
            }
            // Uncalibrated or legacy: the untagged constructor, so the
            // fingerprint is the raw topology+spec hash.
            _ => Device::new(self.topology(), self.spec()),
        }
    }
}
