//! # paqoc-accqoc
//!
//! The AccQOC baseline (Cheng, Deng, Qian — ISCA 2020) as extended by
//! the PAQOC paper's evaluation: the circuit is partitioned into
//! fixed-size subcircuits (at most `max_qubits` qubits, at most `depth`
//! layers each — the paper's `accqoc_n3d3` and `accqoc_n3d5` variants),
//! each subcircuit's pulse is generated with QOC, and a pulse database
//! with a similarity graph decides generation order: a minimum spanning
//! tree over pairwise unitary distances so that every new pulse is
//! warm-started from its most similar already-generated neighbour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mst;
mod partition;

pub use mst::{similarity_mst, MstEdge};
pub use partition::{partition_fixed, FixedPartition};

use paqoc_circuit::{combined_unitary, decompose, Basis, Circuit};
use paqoc_core::{group_key, CompileStats};
use paqoc_device::{Device, PulseSource};
use paqoc_mapping::{sabre_map, SabreOptions};
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

/// AccQOC configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccqocOptions {
    /// Maximum qubits per subcircuit (the paper's extension uses 3).
    pub max_qubits: usize,
    /// Maximum depth (layers) per subcircuit: 3 for `n3d3`, 5 for `n3d5`.
    pub depth: usize,
    /// Pulse fidelity target.
    pub target_fidelity: f64,
    /// Skip SABRE mapping when the input is already physical.
    pub skip_mapping: bool,
    /// SABRE knobs.
    pub sabre: SabreOptions,
}

impl AccqocOptions {
    /// The paper's `accqoc_n3d3` baseline.
    pub fn n3d3() -> Self {
        AccqocOptions {
            max_qubits: 3,
            depth: 3,
            target_fidelity: 0.999,
            skip_mapping: false,
            sabre: SabreOptions::default(),
        }
    }

    /// The paper's `accqoc_n3d5` baseline.
    pub fn n3d5() -> Self {
        AccqocOptions {
            depth: 5,
            ..AccqocOptions::n3d3()
        }
    }
}

/// The outcome of an AccQOC compilation.
#[derive(Debug)]
pub struct AccqocResult {
    /// The physical circuit that was partitioned.
    pub physical: Circuit,
    /// Instruction-index sets of the fixed-size subcircuits, in order.
    pub blocks: Vec<Vec<usize>>,
    /// Whole-circuit latency (critical path over blocks), ns.
    pub latency_ns: f64,
    /// Whole-circuit latency in device cycles.
    pub latency_dt: u64,
    /// ESP: product of per-block pulse fidelities.
    pub esp: f64,
    /// Pulse-generation accounting.
    pub stats: CompileStats,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
}

/// Compiles a circuit with the AccQOC baseline.
///
/// # Panics
///
/// Panics if mapping is enabled and the circuit does not fit the device.
pub fn compile_accqoc(
    logical: &Circuit,
    device: &Device,
    source: &mut dyn PulseSource,
    opts: &AccqocOptions,
) -> AccqocResult {
    let start = Instant::now();
    let _compile_span = paqoc_telemetry::span("accqoc");
    let lowered = decompose(logical, Basis::Extended);
    let physical = if opts.skip_mapping {
        lowered
    } else {
        let _s = paqoc_telemetry::span("map");
        let mapped = sabre_map(&lowered, device.topology(), &opts.sabre);
        decompose(&mapped.circuit, Basis::Extended)
    };

    let partition = partition_fixed(&physical, opts.max_qubits, opts.depth);
    paqoc_telemetry::counter("accqoc.blocks", partition.blocks.len() as u64);

    // Group blocks by canonical key; generate one pulse per distinct
    // shape, ordered along the similarity MST so each generation warm
    // starts from its closest neighbour (AccQOC's central trick).
    let mut distinct: Vec<(String, Vec<usize>)> = Vec::new();
    let mut key_of_block: Vec<String> = Vec::new();
    {
        let mut seen: HashMap<String, usize> = HashMap::new();
        for block in &partition.blocks {
            let insts: Vec<_> = block
                .iter()
                .map(|&i| physical.instructions()[i].clone())
                .collect();
            let key = group_key(&insts);
            key_of_block.push(key.clone());
            seen.entry(key.clone()).or_insert_with(|| {
                distinct.push((key, block.clone()));
                distinct.len() - 1
            });
        }
    }

    // Pairwise unitary distances between distinct shapes → MST order.
    let unitaries: Vec<paqoc_math::Matrix> = distinct
        .iter()
        .map(|(_, block)| {
            let insts: Vec<_> = block
                .iter()
                .map(|&i| physical.instructions()[i].clone())
                .collect();
            let qubits: Vec<usize> = insts
                .iter()
                .flat_map(|i| i.qubits().iter().copied())
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            combined_unitary(&insts, &qubits)
        })
        .collect();
    let order = similarity_mst(&unitaries);

    let mut stats = CompileStats::default();
    let mut pulse_of_key: HashMap<String, paqoc_device::PulseEstimate> = HashMap::new();
    let generate_span = paqoc_telemetry::span("generate");
    for &(idx, parent_dist) in &order {
        let (key, block) = &distinct[idx];
        let insts: Vec<_> = block
            .iter()
            .map(|&i| physical.instructions()[i].clone())
            .collect();
        // The MST root is generated cold; every other pulse warm-starts
        // from its tree parent, converging faster the closer it is.
        let est = source.generate(&insts, device, opts.target_fidelity, parent_dist);
        stats.pulses_generated += 1;
        stats.cost_units += est.cost_units;
        pulse_of_key.insert(key.clone(), est);
    }
    drop(generate_span);
    stats.cache_hits = partition.blocks.len().saturating_sub(distinct.len());
    paqoc_telemetry::counter("accqoc.distinct_shapes", distinct.len() as u64);
    paqoc_telemetry::counter("accqoc.block_reuses", stats.cache_hits as u64);

    // Latency: list-schedule the blocks on their qubits (blocks arrive
    // in a valid topological order from the layered partitioner).
    let num_qubits = physical.num_qubits();
    let mut ready_at = vec![0.0f64; num_qubits];
    let mut esp = 1.0f64;
    for (b, block) in partition.blocks.iter().enumerate() {
        let est = pulse_of_key[&key_of_block[b]];
        let qubits: BTreeSet<usize> = block
            .iter()
            .flat_map(|&i| physical.instructions()[i].qubits().iter().copied())
            .collect();
        let start_t = qubits.iter().map(|&q| ready_at[q]).fold(0.0f64, f64::max);
        let end_t = start_t + est.latency_ns;
        for &q in &qubits {
            ready_at[q] = end_t;
        }
        esp *= est.fidelity;
    }
    let latency_ns = ready_at.iter().copied().fold(0.0, f64::max);

    AccqocResult {
        latency_ns,
        latency_dt: device.spec().ns_to_dt(latency_ns),
        esp,
        stats,
        blocks: partition.blocks,
        physical,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_device::AnalyticModel;

    fn sample() -> Circuit {
        let mut c = Circuit::new(4);
        for _ in 0..3 {
            for (a, b) in [(0usize, 1usize), (1, 2), (2, 3)] {
                c.cp(a, b, 0.7);
            }
            for q in 0..4 {
                c.rx(q, 0.35);
            }
        }
        c
    }

    #[test]
    fn blocks_cover_every_instruction_exactly_once() {
        let device = Device::grid5x5();
        let mut src = AnalyticModel::new();
        let r = compile_accqoc(&sample(), &device, &mut src, &AccqocOptions::n3d3());
        let mut seen = vec![false; r.physical.len()];
        for block in &r.blocks {
            for &i in block {
                assert!(!seen[i], "instruction {i} in two blocks");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every instruction partitioned");
    }

    #[test]
    fn deeper_blocks_usually_help_latency() {
        let device = Device::grid5x5();
        let mut s3 = AnalyticModel::new();
        let d3 = compile_accqoc(&sample(), &device, &mut s3, &AccqocOptions::n3d3());
        let mut s5 = AnalyticModel::new();
        let d5 = compile_accqoc(&sample(), &device, &mut s5, &AccqocOptions::n3d5());
        // The paper: d5 is better "for most of the time" — allow slack.
        assert!(
            d5.latency_ns <= d3.latency_ns * 1.15,
            "d5 {} vs d3 {}",
            d5.latency_ns,
            d3.latency_ns
        );
    }

    #[test]
    fn distinct_shapes_are_generated_once() {
        let device = Device::grid5x5();
        let mut src = AnalyticModel::new();
        let r = compile_accqoc(&sample(), &device, &mut src, &AccqocOptions::n3d3());
        assert!(
            r.stats.pulses_generated < r.blocks.len(),
            "{} generated for {} blocks",
            r.stats.pulses_generated,
            r.blocks.len()
        );
        assert!(r.esp > 0.0 && r.esp < 1.0);
        assert!(r.latency_dt > 0);
    }
}
