//! The similarity MST that orders AccQOC's pulse generations.
//!
//! Nodes are the distinct subcircuit unitaries; edge weight is the
//! phase-aligned operator distance. Prim's algorithm builds the minimum
//! spanning tree and a preorder walk yields the generation order, so
//! every pulse after the root is optimized starting from its most
//! similar, already-generated neighbour.

use paqoc_math::{phase_aligned_distance, Matrix};

/// One MST edge (parent → child in generation order).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MstEdge {
    /// Already-generated node.
    pub parent: usize,
    /// Node to generate next, warm-started from `parent`.
    pub child: usize,
    /// Unitary distance between the two.
    pub distance: f64,
}

/// Distance used between unitaries of different dimensions (they can
/// never warm-start each other meaningfully).
const CROSS_DIM_DISTANCE: f64 = 1.0e3;

/// Builds the similarity MST and returns the node visit order with
/// each node's distance to its tree parent (`None` for the root) —
/// a valid generation schedule: each node appears after its parent, and
/// the distance drives how cheap its warm-started generation is.
///
/// Returns an empty order for no nodes. Disconnected components do not
/// arise (the graph is complete).
pub fn similarity_mst(unitaries: &[Matrix]) -> Vec<(usize, Option<f64>)> {
    let n = unitaries.len();
    if n == 0 {
        return Vec::new();
    }
    let dist = |a: usize, b: usize| -> f64 {
        if unitaries[a].rows() != unitaries[b].rows() {
            CROSS_DIM_DISTANCE
        } else {
            phase_aligned_distance(&unitaries[a], &unitaries[b])
        }
    };

    // Prim from node 0.
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_parent = vec![0usize; n];
    let mut order: Vec<(usize, Option<f64>)> = Vec::with_capacity(n);
    in_tree[0] = true;
    order.push((0, None));
    for v in 1..n {
        best_dist[v] = dist(0, v);
        best_parent[v] = 0;
    }
    for _ in 1..n {
        let v = (0..n)
            .filter(|&v| !in_tree[v])
            .min_by(|&a, &b| best_dist[a].total_cmp(&best_dist[b]))
            .expect("a node remains");
        in_tree[v] = true;
        order.push((v, Some(best_dist[v])));
        for u in 0..n {
            if !in_tree[u] {
                let d = dist(v, u);
                if d < best_dist[u] {
                    best_dist[u] = d;
                    best_parent[u] = v;
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_circuit::GateKind;

    #[test]
    fn empty_input_gives_empty_order() {
        assert!(similarity_mst(&[]).is_empty());
    }

    #[test]
    fn order_is_a_permutation_starting_at_root() {
        let us = vec![
            GateKind::X.unitary(&[]),
            GateKind::H.unitary(&[]),
            GateKind::Cx.unitary(&[]),
            GateKind::Swap.unitary(&[]),
        ];
        let order = similarity_mst(&us);
        assert_eq!(order[0].0, 0);
        assert!(order[0].1.is_none(), "root has no parent");
        assert!(order[1..].iter().all(|(_, d)| d.is_some()));
        let mut sorted: Vec<usize> = order.iter().map(|&(v, _)| v).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn similar_unitaries_are_visited_adjacently() {
        use paqoc_circuit::Angle;
        // Three RZ angles: 0.5 and 0.52 are near, 2.5 is far.
        let us = vec![
            GateKind::Rz.unitary(&[Angle::new(0.5)]),
            GateKind::Rz.unitary(&[Angle::new(2.5)]),
            GateKind::Rz.unitary(&[Angle::new(0.52)]),
        ];
        let order: Vec<usize> = similarity_mst(&us).iter().map(|&(v, _)| v).collect();
        // From root 0 (angle .5), the closest is 2 (angle .52).
        assert_eq!(order, vec![0, 2, 1]);
    }
}
