//! Fixed-size subcircuit partitioning (AccQOC's circuit division).
//!
//! Greedy single pass in instruction order: a gate joins the open block
//! that currently owns *all* of its qubits when the block stays within
//! the qubit cap and depth cap; otherwise it opens a new block (stealing
//! its qubits from their previous blocks, which therefore never reopen
//! on those qubits — keeping every block convex and the block list
//! topologically ordered).

use paqoc_circuit::Circuit;
use std::collections::HashMap;

/// The result of fixed-size partitioning.
#[derive(Clone, Debug)]
pub struct FixedPartition {
    /// Instruction-index sets, in topological (creation) order.
    pub blocks: Vec<Vec<usize>>,
}

/// Partitions a circuit into blocks of at most `max_qubits` qubits and
/// at most `depth` layers.
///
/// # Panics
///
/// Panics if `max_qubits` is smaller than the widest gate or `depth` is
/// zero.
///
/// # Examples
///
/// ```
/// use paqoc_circuit::Circuit;
/// use paqoc_accqoc::partition_fixed;
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).rz(1, 0.3).cx(0, 1).h(1);
/// let p = partition_fixed(&c, 3, 3);
/// let covered: usize = p.blocks.iter().map(Vec::len).sum();
/// assert_eq!(covered, c.len());
/// ```
pub fn partition_fixed(circuit: &Circuit, max_qubits: usize, depth: usize) -> FixedPartition {
    assert!(depth > 0, "depth must be positive");
    // AccQOC's subcircuits are *fixed-size*: the circuit is sliced into
    // depth-`depth` windows of the ASAP schedule, and blocks never span
    // a window boundary (this rigidity is exactly what PAQOC's
    // unrestricted-depth merging improves on — paper Fig. 13).
    let mut level = vec![0usize; circuit.num_qubits()];
    let window_of: Vec<usize> = circuit
        .iter()
        .map(|inst| {
            let l = inst.qubits().iter().map(|&q| level[q]).max().unwrap_or(0);
            for &q in inst.qubits() {
                level[q] = l + 1;
            }
            l / depth
        })
        .collect();

    let mut blocks: Vec<Vec<usize>> = Vec::new();
    // Per-block bookkeeping.
    let mut block_qubits: Vec<Vec<usize>> = Vec::new();
    let mut block_depth: Vec<HashMap<usize, usize>> = Vec::new();
    let mut block_window: Vec<usize> = Vec::new();
    // current[q] = the open block owning qubit q.
    let mut current: Vec<Option<usize>> = vec![None; circuit.num_qubits()];

    for (i, inst) in circuit.iter().enumerate() {
        let qs = inst.qubits();
        assert!(
            qs.len() <= max_qubits,
            "gate {} is wider than max_qubits={max_qubits}",
            inst.gate()
        );
        // Try to join: all qubits owned by one block (or unowned), and
        // caps respected.
        let owners: Vec<Option<usize>> = qs.iter().map(|&q| current[q]).collect();
        let candidate = owners.iter().flatten().copied().next();
        let joinable = match candidate {
            Some(b) => {
                block_window[b] == window_of[i]
                    && owners.iter().all(|o| o.is_none_or(|x| x == b))
                    && {
                        let mut qset = block_qubits[b].clone();
                        for &q in qs {
                            if !qset.contains(&q) {
                                qset.push(q);
                            }
                        }
                        let new_depth = qs
                            .iter()
                            .map(|q| block_depth[b].get(q).copied().unwrap_or(0))
                            .max()
                            .unwrap_or(0)
                            + 1;
                        qset.len() <= max_qubits && new_depth <= depth
                    }
            }
            None => false,
        };
        let target = if joinable {
            candidate.expect("joinable implies a candidate")
        } else {
            let b = blocks.len();
            blocks.push(Vec::new());
            block_qubits.push(Vec::new());
            block_depth.push(HashMap::new());
            block_window.push(window_of[i]);
            b
        };
        blocks[target].push(i);
        let new_depth = qs
            .iter()
            .map(|q| block_depth[target].get(q).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
            + 1;
        for &q in qs {
            if !block_qubits[target].contains(&q) {
                block_qubits[target].push(q);
            }
            block_depth[target].insert(q, new_depth);
            current[q] = Some(target);
        }
    }

    FixedPartition { blocks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_is_exact(c: &Circuit, p: &FixedPartition) {
        let mut seen = vec![false; c.len()];
        for block in &p.blocks {
            for &i in block {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partition_covers_exactly() {
        let mut c = Circuit::new(4);
        for _ in 0..3 {
            c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).rz(3, 0.2);
        }
        let p = partition_fixed(&c, 3, 3);
        cover_is_exact(&c, &p);
    }

    #[test]
    fn depth_cap_limits_block_size() {
        let mut c = Circuit::new(1);
        for _ in 0..10 {
            c.rz(0, 0.1);
        }
        let p = partition_fixed(&c, 3, 3);
        assert_eq!(p.blocks.len(), 4); // 3+3+3+1
        for b in &p.blocks {
            assert!(b.len() <= 3);
        }
    }

    #[test]
    fn qubit_cap_limits_block_width() {
        let mut c = Circuit::new(5);
        for q in 0..4 {
            c.cx(q, q + 1);
        }
        let p = partition_fixed(&c, 3, 5);
        for (bi, block) in p.blocks.iter().enumerate() {
            let qubits: std::collections::BTreeSet<usize> = block
                .iter()
                .flat_map(|&i| c.instructions()[i].qubits().iter().copied())
                .collect();
            assert!(qubits.len() <= 3, "block {bi} uses {qubits:?}");
        }
    }

    #[test]
    fn deeper_limit_yields_fewer_blocks() {
        let mut c = Circuit::new(2);
        for _ in 0..6 {
            c.cx(0, 1).rz(1, 0.3);
        }
        let d3 = partition_fixed(&c, 3, 3);
        let d5 = partition_fixed(&c, 3, 5);
        assert!(d5.blocks.len() <= d3.blocks.len());
    }

    #[test]
    fn blocks_are_topologically_ordered() {
        // No gate may depend on a gate in a later block.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(2, 3).cx(1, 2).h(3).cx(0, 1);
        let p = partition_fixed(&c, 2, 3);
        cover_is_exact(&c, &p);
        let mut block_of = vec![0usize; c.len()];
        for (b, block) in p.blocks.iter().enumerate() {
            for &i in block {
                block_of[i] = b;
            }
        }
        let dag = paqoc_circuit::DependencyDag::from_circuit(&c);
        for i in 0..c.len() {
            for &s in dag.succs(i) {
                assert!(
                    block_of[s] >= block_of[i],
                    "gate {s} in block {} depends on {i} in block {}",
                    block_of[s],
                    block_of[i]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "wider than max_qubits")]
    fn too_wide_gate_panics() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        partition_fixed(&c, 2, 3);
    }
}
