//! SABRE qubit mapping and routing (Li, Ding, Xie — ASPLOS 2019).
//!
//! The paper's evaluation maps every logical benchmark onto the 5×5 grid
//! with "Sabre qubit routing and mapping heuristic", so this crate
//! reproduces it: the front-layer/extended-set swap heuristic with decay,
//! plus the bidirectional traversal that refines the initial layout.

use paqoc_circuit::{Circuit, DependencyDag, GateKind, Instruction};
use paqoc_device::Topology;
use paqoc_math::Rng;
use std::collections::HashSet;

/// Tunable parameters of the SABRE heuristic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SabreOptions {
    /// Weight of the extended set (lookahead) term.
    pub extended_weight: f64,
    /// Size cap of the extended set.
    pub extended_size: usize,
    /// Decay added to a qubit's factor after it participates in a swap.
    pub decay_delta: f64,
    /// Swaps after which decay factors reset.
    pub decay_reset: usize,
    /// Forward/backward refinement passes for the initial mapping.
    pub refinement_passes: usize,
    /// Seed for the (deterministic) random initial layout.
    pub seed: u64,
}

impl Default for SabreOptions {
    fn default() -> Self {
        SabreOptions {
            extended_weight: 0.5,
            extended_size: 20,
            decay_delta: 0.001,
            decay_reset: 5,
            refinement_passes: 2,
            seed: 11,
        }
    }
}

/// The result of mapping a logical circuit onto hardware.
#[derive(Clone, Debug)]
pub struct MappedCircuit {
    /// The routed physical circuit (logical qubits replaced by physical
    /// ones, SWAPs inserted so every 2-qubit gate is on a coupler).
    pub circuit: Circuit,
    /// `initial_layout[logical] = physical` at circuit start.
    pub initial_layout: Vec<usize>,
    /// `final_layout[logical] = physical` at circuit end.
    pub final_layout: Vec<usize>,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
}

/// Why a circuit cannot be mapped onto a topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MapError {
    /// The circuit uses more qubits than the topology offers.
    CircuitTooWide {
        /// Qubits the circuit needs.
        needed: usize,
        /// Qubits the topology has.
        available: usize,
    },
    /// A gate with three or more qubits reached the mapper; such gates
    /// must be decomposed (lowered) first.
    UnloweredGate {
        /// Display form of the offending gate.
        gate: String,
        /// Its qubit count.
        arity: usize,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::CircuitTooWide { needed, available } => write!(
                f,
                "circuit needs {needed} qubits but the device has {available}"
            ),
            MapError::UnloweredGate { gate, arity } => {
                write!(f, "decompose {arity}-qubit gate {gate} before mapping")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// Maps and routes a logical circuit onto a topology with SABRE.
///
/// Multi-qubit (>2) gates must be decomposed before mapping.
///
/// # Panics
///
/// Panics if the circuit needs more qubits than the topology offers, or
/// contains gates with three or more qubits. Use [`try_sabre_map`] to
/// get those conditions as a typed [`MapError`] instead.
///
/// # Examples
///
/// ```
/// use paqoc_circuit::Circuit;
/// use paqoc_device::Topology;
/// use paqoc_mapping::{sabre_map, SabreOptions};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 2).cx(1, 2);
/// let mapped = sabre_map(&c, &Topology::line(3), &SabreOptions::default());
/// // every 2-qubit gate now touches a coupler
/// for inst in mapped.circuit.iter() {
///     if inst.qubits().len() == 2 {
///         assert!(Topology::line(3).are_coupled(inst.qubits()[0], inst.qubits()[1]));
///     }
/// }
/// ```
pub fn sabre_map(circuit: &Circuit, topology: &Topology, opts: &SabreOptions) -> MappedCircuit {
    match try_sabre_map(circuit, topology, opts) {
        Ok(mapped) => mapped,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`sabre_map`]: rejects circuits wider than the topology and
/// unlowered (≥3-qubit) gates with a typed [`MapError`] instead of
/// panicking.
pub fn try_sabre_map(
    circuit: &Circuit,
    topology: &Topology,
    opts: &SabreOptions,
) -> Result<MappedCircuit, MapError> {
    if circuit.num_qubits() > topology.num_qubits() {
        return Err(MapError::CircuitTooWide {
            needed: circuit.num_qubits(),
            available: topology.num_qubits(),
        });
    }
    for inst in circuit.iter() {
        if inst.qubits().len() > 2 {
            return Err(MapError::UnloweredGate {
                gate: inst.gate().to_string(),
                arity: inst.qubits().len(),
            });
        }
    }

    let dist = topology.distance_matrix();

    // Initial layout: random, then refined by bidirectional traversal —
    // run forward and backward passes, each time keeping the layout the
    // previous pass ended with (the SABRE trick).
    let mut rng = Rng::seed_from_u64(opts.seed);
    let mut layout = random_layout(circuit.num_qubits(), topology.num_qubits(), &mut rng);
    let reversed = reversed_circuit(circuit);
    for _ in 0..opts.refinement_passes {
        let fwd = route(circuit, topology, &dist, layout.clone(), opts);
        layout = fwd.final_layout;
        let bwd = route(&reversed, topology, &dist, layout.clone(), opts);
        layout = bwd.final_layout;
        paqoc_telemetry::counter("sabre.refinement_passes", 1);
    }

    let mapped = route(circuit, topology, &dist, layout, opts);
    paqoc_telemetry::counter("sabre.swaps_inserted", mapped.swaps_inserted as u64);
    Ok(mapped)
}

fn random_layout(logical: usize, physical: usize, rng: &mut Rng) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..physical).collect();
    // Fisher–Yates.
    for i in (1..physical).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    perm.truncate(logical);
    perm
}

fn reversed_circuit(circuit: &Circuit) -> Circuit {
    let mut rev = Circuit::new(circuit.num_qubits());
    for inst in circuit.instructions().iter().rev() {
        rev.push(inst.clone());
    }
    rev
}

/// One SABRE routing pass at a fixed initial layout.
fn route(
    circuit: &Circuit,
    topology: &Topology,
    dist: &[Vec<usize>],
    initial_layout: Vec<usize>,
    opts: &SabreOptions,
) -> MappedCircuit {
    let dag = DependencyDag::from_circuit(circuit);
    let n = circuit.len();

    // layout[logical] = physical; phys2log[physical] = Some(logical).
    let mut layout = initial_layout.clone();
    let mut phys2log: Vec<Option<usize>> = vec![None; topology.num_qubits()];
    for (l, &p) in layout.iter().enumerate() {
        phys2log[p] = Some(l);
    }

    let mut remaining_preds: Vec<usize> = (0..n).map(|i| dag.preds(i).len()).collect();
    let mut front: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
    let mut done = vec![false; n];
    let mut out = Circuit::new(topology.num_qubits());
    let mut swaps_inserted = 0usize;
    let mut decay = vec![1.0f64; topology.num_qubits()];
    let mut swaps_since_reset = 0usize;
    // Livelock guard: the heuristic can oscillate on adversarial inputs;
    // past this budget we route the first blocked gate greedily along a
    // shortest path, which always makes progress.
    let swap_budget = 16 * (n + 1) * topology.num_qubits();
    let mut greedy_mode = false;

    let executable = |inst: &Instruction, layout: &[usize]| -> bool {
        match inst.qubits() {
            [_] => true,
            [a, b] => topology.are_coupled(layout[*a], layout[*b]),
            _ => unreachable!("gates are 1- or 2-qubit after the arity check"),
        }
    };

    while !front.is_empty() {
        // Execute every currently executable front gate.
        let mut progressed = false;
        let mut i = 0;
        while i < front.len() {
            let g = front[i];
            let inst = &circuit.instructions()[g];
            if executable(inst, &layout) {
                out.push(inst.remapped(|q| layout[q]));
                done[g] = true;
                front.swap_remove(i);
                for &s in dag.succs(g) {
                    remaining_preds[s] -= 1;
                    if remaining_preds[s] == 0 {
                        front.push(s);
                    }
                }
                progressed = true;
            } else {
                i += 1;
            }
        }
        if progressed {
            continue;
        }
        if front.is_empty() {
            break;
        }

        if swaps_inserted > swap_budget {
            greedy_mode = true;
        }
        if greedy_mode {
            // Deterministic fallback: move the first blocked gate's first
            // qubit one hop toward its partner.
            let g = front[0];
            let qs = circuit.instructions()[g].qubits();
            let (pa, pb) = (layout[qs[0]], layout[qs[1]]);
            let next = *topology
                .neighbors(pa)
                .iter()
                .min_by_key(|&&nb| dist[nb][pb])
                .expect("connected topology");
            out.push(Instruction::new(GateKind::Swap, vec![pa, next], vec![]));
            swaps_inserted += 1;
            apply_swap(&mut layout, &mut phys2log, pa, next);
            continue;
        }

        // Blocked: pick the best swap among neighbourhoods of front gates.
        let extended = extended_set(&dag, &front, circuit, opts.extended_size, &done);
        let candidate_swaps = candidate_swaps(&front, circuit, &layout, topology);
        assert!(
            !candidate_swaps.is_empty(),
            "blocked front must have swap candidates on a connected topology"
        );

        let mut best: Option<((usize, usize), f64)> = None;
        for &(p, q) in &candidate_swaps {
            let mut trial = layout.clone();
            apply_swap(&mut trial, &mut phys2log.clone(), p, q);
            let f_cost: f64 = front
                .iter()
                .map(|&g| gate_distance(&circuit.instructions()[g], &trial, dist))
                .sum::<f64>()
                / front.len() as f64;
            let e_cost = if extended.is_empty() {
                0.0
            } else {
                extended
                    .iter()
                    .map(|&g| gate_distance(&circuit.instructions()[g], &trial, dist))
                    .sum::<f64>()
                    / extended.len() as f64
            };
            let score = decay[p].max(decay[q]) * (f_cost + opts.extended_weight * e_cost);
            if best.is_none_or(|(_, s)| score < s) {
                best = Some(((p, q), score));
            }
        }
        let ((p, q), _) = best.expect("candidates are nonempty");
        out.push(Instruction::new(GateKind::Swap, vec![p, q], vec![]));
        swaps_inserted += 1;
        apply_swap(&mut layout, &mut phys2log, p, q);
        decay[p] += opts.decay_delta;
        decay[q] += opts.decay_delta;
        swaps_since_reset += 1;
        if swaps_since_reset >= opts.decay_reset {
            decay.iter_mut().for_each(|d| *d = 1.0);
            swaps_since_reset = 0;
        }
    }

    MappedCircuit {
        circuit: out,
        initial_layout,
        final_layout: layout,
        swaps_inserted,
    }
}

/// Swaps the logical occupants of physical qubits `p` and `q`.
fn apply_swap(layout: &mut [usize], phys2log: &mut [Option<usize>], p: usize, q: usize) {
    let lp = phys2log[p];
    let lq = phys2log[q];
    if let Some(l) = lp {
        layout[l] = q;
    }
    if let Some(l) = lq {
        layout[l] = p;
    }
    phys2log.swap(p, q);
}

fn gate_distance(inst: &Instruction, layout: &[usize], dist: &[Vec<usize>]) -> f64 {
    match inst.qubits() {
        [a, b] => dist[layout[*a]][layout[*b]] as f64,
        _ => 0.0,
    }
}

/// The lookahead set: descendants of the front layer, breadth-first,
/// capped at `cap` two-qubit gates.
fn extended_set(
    dag: &DependencyDag,
    front: &[usize],
    circuit: &Circuit,
    cap: usize,
    done: &[bool],
) -> Vec<usize> {
    let mut out = Vec::new();
    let mut queue: Vec<usize> = front.to_vec();
    let mut seen: HashSet<usize> = front.iter().copied().collect();
    while let Some(g) = queue.pop() {
        for &s in dag.succs(g) {
            if seen.insert(s) && !done[s] {
                if circuit.instructions()[s].qubits().len() == 2 {
                    out.push(s);
                    if out.len() >= cap {
                        return out;
                    }
                }
                queue.push(s);
            }
        }
    }
    out
}

/// Swaps adjacent to any qubit of a blocked front gate.
fn candidate_swaps(
    front: &[usize],
    circuit: &Circuit,
    layout: &[usize],
    topology: &Topology,
) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    for &g in front {
        for &lq in circuit.instructions()[g].qubits() {
            let p = layout[lq];
            for &nb in topology.neighbors(p) {
                out.push((p.min(nb), p.max(nb)));
            }
        }
    }
    // Sorted and deduplicated so score ties always break the same way.
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use paqoc_math::trace_fidelity;

    fn assert_routed(circuit: &Circuit, topo: &Topology) -> MappedCircuit {
        let mapped = sabre_map(circuit, topo, &SabreOptions::default());
        for inst in mapped.circuit.iter() {
            if inst.qubits().len() == 2 {
                assert!(
                    topo.are_coupled(inst.qubits()[0], inst.qubits()[1]),
                    "{inst} not on a coupler"
                );
            }
        }
        assert_eq!(
            mapped.circuit.len(),
            circuit.len() + mapped.swaps_inserted,
            "no gates lost or duplicated"
        );
        mapped
    }

    #[test]
    fn already_routable_circuit_needs_no_swaps() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).cx(1, 0);
        let mapped = assert_routed(&c, &Topology::line(2));
        assert_eq!(mapped.swaps_inserted, 0);
    }

    #[test]
    fn distant_gate_on_a_line_needs_swaps() {
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let mapped = assert_routed(&c, &Topology::line(4));
        // Whatever the initial placement, the routed circuit is valid;
        // with a sensible layout at most 2 swaps are needed.
        assert!(
            mapped.swaps_inserted <= 2,
            "{} swaps",
            mapped.swaps_inserted
        );
    }

    #[test]
    fn mapping_preserves_circuit_semantics() {
        // Permutation-tracked unitary equivalence on a small case.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).cx(0, 2).rz(1, 0.37).cx(2, 0);
        let topo = Topology::line(3);
        let mapped = assert_routed(&c, &topo);

        // Build the ideal unitary re-expressed on physical qubits using
        // the initial layout, then append the inverse of the final
        // permutation to undo routing SWAPs.
        let ideal_logical = c.unitary();
        let routed = mapped.circuit.unitary();

        // Permutation matrices: P maps logical basis to physical basis.
        let n = 3usize;
        let dim = 1 << n;
        let perm_of = |layout: &[usize]| {
            let mut p = paqoc_math::Matrix::zeros(dim, dim);
            for src in 0..dim {
                let mut dst = 0usize;
                for (l, &phys) in layout.iter().enumerate().take(n) {
                    if (src >> l) & 1 == 1 {
                        dst |= 1 << phys;
                    }
                }
                p[(dst, src)] = paqoc_math::C64::ONE;
            }
            p
        };
        let p_init = perm_of(&mapped.initial_layout);
        let p_final = perm_of(&mapped.final_layout);
        // routed ∘ p_init should equal p_final ∘ ideal.
        let lhs = routed.matmul(&p_init);
        let rhs = p_final.matmul(&ideal_logical);
        let f = trace_fidelity(&lhs, &rhs);
        assert!(f > 1.0 - 1e-9, "fidelity {f}");
    }

    #[test]
    fn grid_5x5_routes_a_21_qubit_circuit() {
        // A BV-style oracle: CX from every qubit to the last.
        let mut c = Circuit::new(21);
        for q in 0..20 {
            c.h(q);
            c.cx(q, 20);
        }
        let mapped = assert_routed(&c, &Topology::grid(5, 5));
        assert!(mapped.swaps_inserted > 0, "grid routing must insert swaps");
    }

    #[test]
    fn mapping_is_deterministic() {
        let mut c = Circuit::new(5);
        for q in 0..4 {
            c.cx(q, 4);
        }
        let topo = Topology::grid(5, 5);
        let a = sabre_map(&c, &topo, &SabreOptions::default());
        let b = sabre_map(&c, &topo, &SabreOptions::default());
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.initial_layout, b.initial_layout);
    }

    #[test]
    #[should_panic(expected = "decompose")]
    fn three_qubit_gates_are_rejected() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        sabre_map(&c, &Topology::line(3), &SabreOptions::default());
    }

    #[test]
    #[should_panic(expected = "circuit needs")]
    fn too_many_qubits_rejected() {
        let c = Circuit::new(10);
        sabre_map(&c, &Topology::line(3), &SabreOptions::default());
    }
}
