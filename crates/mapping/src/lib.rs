//! # paqoc-mapping
//!
//! SABRE qubit mapping and routing ([`sabre_map`]), the heuristic the
//! paper's evaluation uses to place every logical benchmark onto the 5×5
//! grid. The routed output is the *physical circuit* that feeds PAQOC's
//! frequent-subcircuit miner — the inserted SWAP chains are precisely the
//! recurring patterns Table III discovers.
//!
//! ## Example
//!
//! ```
//! use paqoc_circuit::Circuit;
//! use paqoc_device::Topology;
//! use paqoc_mapping::{sabre_map, SabreOptions};
//!
//! let mut c = Circuit::new(4);
//! c.h(0).cx(0, 3);
//! let mapped = sabre_map(&c, &Topology::grid(2, 2), &SabreOptions::default());
//! assert_eq!(mapped.circuit.len(), c.len() + mapped.swaps_inserted);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sabre;

pub use sabre::{sabre_map, try_sabre_map, MapError, MappedCircuit, SabreOptions};
