//! Gate-fidelity metrics used across the pulse-generation stack.
//!
//! All metrics are *global-phase insensitive*: QOC is free to realize a
//! target up to `e^{iφ}`, and the paper's ESP (Eq. 2) treats the per-gate
//! error term the same way.

use crate::matrix::Matrix;

/// Phase-insensitive process (trace) fidelity `|Tr(U†V)|² / d²`.
///
/// Equals 1 exactly when `V = e^{iφ}U`, and decreases smoothly with
/// distance. This is the objective GRAPE maximizes.
///
/// # Panics
///
/// Panics if the matrices are not square or differ in shape.
///
/// # Examples
///
/// ```
/// use paqoc_math::{trace_fidelity, Matrix, C64};
/// let u = Matrix::identity(2);
/// let v = u.scaled(C64::cis(1.0)); // global phase only
/// assert!((trace_fidelity(&u, &v) - 1.0).abs() < 1e-12);
/// ```
pub fn trace_fidelity(u: &Matrix, v: &Matrix) -> f64 {
    assert!(u.is_square(), "trace_fidelity requires square matrices");
    assert_eq!(u.rows(), v.rows(), "trace_fidelity shape mismatch");
    assert_eq!(u.cols(), v.cols(), "trace_fidelity shape mismatch");
    let d = u.rows() as f64;
    let overlap = u.dagger().matmul(v).trace();
    (overlap.norm_sqr() / (d * d)).min(1.0)
}

/// Average gate fidelity `(d·F_pro + 1)/(d + 1)` derived from the process
/// fidelity [`trace_fidelity`].
pub fn average_gate_fidelity(u: &Matrix, v: &Matrix) -> f64 {
    let d = u.rows() as f64;
    (d * trace_fidelity(u, v) + 1.0) / (d + 1.0)
}

/// Phase-aligned operator distance `min_φ ‖U − e^{iφ}V‖_F / √d`.
///
/// This is the paper's `|U − H(t)|` error term, normalized so that it lies
/// in `[0, 2]` independent of dimension. The optimal phase is
/// `φ = arg Tr(U†V)`.
///
/// # Panics
///
/// Panics if the matrices are not square or differ in shape.
pub fn phase_aligned_distance(u: &Matrix, v: &Matrix) -> f64 {
    assert!(
        u.is_square(),
        "phase_aligned_distance requires square matrices"
    );
    assert_eq!(u.rows(), v.rows(), "phase_aligned_distance shape mismatch");
    let d = u.rows() as f64;
    let overlap = u.dagger().matmul(v).trace();
    // ‖U − e^{iφ}V‖_F² = 2d − 2·Re(e^{-iφ}·Tr(U†V)); minimized at φ = arg overlap.
    let sq = (2.0 * d - 2.0 * overlap.abs()).max(0.0);
    (sq / d).sqrt()
}

/// Per-gate success rate `1 − ε` used by the ESP product (paper Eq. 2),
/// with `ε` the [`phase_aligned_distance`] clamped to `[0, 1]`.
pub fn gate_success_rate(u: &Matrix, v: &Matrix) -> f64 {
    (1.0 - phase_aligned_distance(u, v)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C64;

    fn h_gate() -> Matrix {
        let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        Matrix::from_rows(&[&[s, s], &[s, -s]])
    }

    #[test]
    fn identical_gates_have_unit_fidelity() {
        let h = h_gate();
        assert!((trace_fidelity(&h, &h) - 1.0).abs() < 1e-14);
        assert!(phase_aligned_distance(&h, &h) < 1e-7);
        assert!((gate_success_rate(&h, &h) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn global_phase_is_ignored() {
        let h = h_gate();
        let phased = h.scaled(C64::cis(2.1));
        assert!((trace_fidelity(&h, &phased) - 1.0).abs() < 1e-12);
        assert!(phase_aligned_distance(&h, &phased) < 1e-7);
    }

    #[test]
    fn orthogonal_gates_have_zero_fidelity() {
        // Tr(Z†X) = 0 → process fidelity 0.
        let x = Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let z = Matrix::diag(&[C64::ONE, C64::real(-1.0)]);
        assert!(trace_fidelity(&x, &z) < 1e-14);
        // Average gate fidelity bottoms out at 1/(d+1).
        assert!((average_gate_fidelity(&x, &z) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distance_grows_monotonically_with_rotation_error() {
        // Rz(θ) vs identity: distance increases with θ on [0, π].
        let dist = |theta: f64| {
            let rz = Matrix::diag(&[C64::cis(-theta / 2.0), C64::cis(theta / 2.0)]);
            phase_aligned_distance(&Matrix::identity(2), &rz)
        };
        let mut last = 0.0;
        for k in 1..=8 {
            let d = dist(k as f64 * std::f64::consts::PI / 8.0);
            assert!(d > last, "distance must grow with angle");
            last = d;
        }
    }

    #[test]
    fn fidelity_and_distance_are_consistent() {
        // F close to 1 ⇔ distance close to 0.
        let h = h_gate();
        let almost = {
            let eps = 1e-3;
            let rz = Matrix::diag(&[C64::cis(-eps), C64::cis(eps)]);
            h.matmul(&rz)
        };
        let f = trace_fidelity(&h, &almost);
        let d = phase_aligned_distance(&h, &almost);
        assert!(f > 0.999_99);
        assert!(d < 2e-3);
    }
}
