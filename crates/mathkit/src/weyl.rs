//! Weyl-chamber canonical coordinates of two-qubit unitaries.
//!
//! Every two-qubit unitary is locally equivalent to
//! `exp(i/2 (c₁ X⊗X + c₂ Y⊗Y + c₃ Z⊗Z))` for canonical coordinates
//! `(c₁, c₂, c₃)` in the Weyl chamber. The sum `c₁+c₂+c₃` measures the
//! *nonlocal interaction content* of the gate, which under an
//! amplitude-bounded XY coupling lower-bounds the time needed to realize
//! it — exactly the quantity the analytic latency model in `paqoc-device`
//! builds on.
//!
//! The reduction follows the standard magic-basis construction (as used by
//! Qiskit's `weyl_coordinates`): transform to the magic basis, take the
//! eigenphases of `Mᵀ M`, and fold the resulting angles into the chamber.

use crate::complex::C64;
use crate::eig::eigenvalues;
use crate::matrix::Matrix;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// Canonical (Weyl-chamber) coordinates of a two-qubit unitary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeylCoordinates {
    /// First canonical coordinate, in `[0, π/2]`.
    pub c1: f64,
    /// Second canonical coordinate, in `[0, π/4]`.
    pub c2: f64,
    /// Third canonical coordinate, in `[-π/4, π/4]`.
    pub c3: f64,
}

impl WeylCoordinates {
    /// Total nonlocal interaction content `c₁ + c₂ + |c₃|`.
    ///
    /// Zero exactly for products of single-qubit gates; `3π/4` for SWAP.
    pub fn interaction_content(&self) -> f64 {
        self.c1 + self.c2 + self.c3.abs()
    }

    /// `true` when the gate is locally equivalent to the identity
    /// (i.e. a product of single-qubit gates).
    pub fn is_local(&self, tol: f64) -> bool {
        self.interaction_content() < tol
    }
}

/// The magic basis `B` with `B† U B` mapping local gates to orthogonals.
fn magic_basis() -> Matrix {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let z = C64::ZERO;
    let r = C64::real(s);
    let i = C64::new(0.0, s);
    Matrix::from_rows(&[&[r, i, z, z], &[z, z, i, r], &[z, z, i, -r], &[r, -i, z, z]])
}

/// Determinant of a small square complex matrix by LU elimination.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn det(a: &Matrix) -> C64 {
    assert!(a.is_square(), "det requires a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut result = C64::ONE;
    for col in 0..n {
        let mut piv = col;
        let mut mag = m[(col, col)].abs();
        for r in (col + 1)..n {
            if m[(r, col)].abs() > mag {
                piv = r;
                mag = m[(r, col)].abs();
            }
        }
        if mag < 1e-300 {
            return C64::ZERO;
        }
        if piv != col {
            for j in 0..n {
                let t = m[(col, j)];
                m[(col, j)] = m[(piv, j)];
                m[(piv, j)] = t;
            }
            result = -result;
        }
        result *= m[(col, col)];
        let inv = m[(col, col)].recip();
        for r in (col + 1)..n {
            let f = m[(r, col)] * inv;
            for j in col..n {
                let v = m[(col, j)];
                m[(r, j)] = m[(r, j)].mul_add(-f, v);
            }
        }
    }
    result
}

/// Computes the Weyl-chamber canonical coordinates of a 4×4 unitary.
///
/// # Panics
///
/// Panics if `u` is not 4×4.
///
/// # Examples
///
/// ```
/// use paqoc_math::{weyl_coordinates, Matrix};
/// let id = Matrix::identity(4);
/// let w = weyl_coordinates(&id);
/// assert!(w.interaction_content() < 1e-6);
/// ```
pub fn weyl_coordinates(u: &Matrix) -> WeylCoordinates {
    assert_eq!(u.rows(), 4, "weyl_coordinates requires a 4×4 unitary");
    assert_eq!(u.cols(), 4, "weyl_coordinates requires a 4×4 unitary");

    // Normalize to SU(4).
    let d = det(u);
    let phase = d.arg() / 4.0;
    let scale = C64::cis(-phase) * d.abs().powf(-0.25);
    let su = u.scaled(scale);

    // Magic-basis transform and eigenphases of MᵀM.
    let b = magic_basis();
    let up = b.dagger().matmul(&su).matmul(&b);
    let m2 = up.transpose().matmul(&up);
    let evs = eigenvalues(&m2);

    let mut d_ang: Vec<f64> = evs.iter().map(|e| -e.arg() / 2.0).collect();
    d_ang[3] = -d_ang[0] - d_ang[1] - d_ang[2];

    let mut cs: Vec<f64> = (0..3)
        .map(|i| ((d_ang[i] + d_ang[3]) / 2.0).rem_euclid(2.0 * PI))
        .collect();

    // Order coordinates by their distance into [0, π/2] folded form.
    let cstemp: Vec<f64> = cs
        .iter()
        .map(|&c| {
            let m = c.rem_euclid(FRAC_PI_2);
            m.min(FRAC_PI_2 - m)
        })
        .collect();
    let mut idx = [0usize, 1, 2];
    idx.sort_by(|&a, &b| cstemp[a].total_cmp(&cstemp[b]));
    let order = [idx[1], idx[2], idx[0]];
    cs = vec![cs[order[0]], cs[order[1]], cs[order[2]]];

    // Fold into the Weyl chamber.
    if cs[0] > FRAC_PI_2 {
        cs[0] -= 3.0 * FRAC_PI_2;
    }
    if cs[1] > FRAC_PI_2 {
        cs[1] -= 3.0 * FRAC_PI_2;
    }
    let mut conjs = 0;
    if cs[0] > FRAC_PI_4 {
        cs[0] = FRAC_PI_2 - cs[0];
        conjs += 1;
    }
    if cs[1] > FRAC_PI_4 {
        cs[1] = FRAC_PI_2 - cs[1];
        conjs += 1;
    }
    if cs[2] > FRAC_PI_2 {
        cs[2] -= 3.0 * FRAC_PI_2;
    }
    if conjs == 1 {
        cs[2] = FRAC_PI_2 - cs[2];
    }
    if cs[2] > FRAC_PI_4 {
        cs[2] -= FRAC_PI_2;
    }

    WeylCoordinates {
        c1: cs[1].abs(),
        c2: cs[0].abs(),
        c3: cs[2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx() -> Matrix {
        let mut m = Matrix::identity(4);
        m[(2, 2)] = C64::ZERO;
        m[(3, 3)] = C64::ZERO;
        m[(2, 3)] = C64::ONE;
        m[(3, 2)] = C64::ONE;
        m
    }

    fn swap() -> Matrix {
        let mut m = Matrix::zeros(4, 4);
        m[(0, 0)] = C64::ONE;
        m[(1, 2)] = C64::ONE;
        m[(2, 1)] = C64::ONE;
        m[(3, 3)] = C64::ONE;
        m
    }

    fn iswap() -> Matrix {
        let mut m = Matrix::zeros(4, 4);
        m[(0, 0)] = C64::ONE;
        m[(1, 2)] = C64::I;
        m[(2, 1)] = C64::I;
        m[(3, 3)] = C64::ONE;
        m
    }

    #[test]
    fn det_of_identity_is_one() {
        assert!((det(&Matrix::identity(4)) - C64::ONE).abs() < 1e-12);
    }

    #[test]
    fn det_of_swap_is_minus_one() {
        assert!((det(&swap()) - C64::real(-1.0)).abs() < 1e-12);
    }

    #[test]
    fn identity_has_zero_content() {
        let w = weyl_coordinates(&Matrix::identity(4));
        assert!(w.interaction_content() < 1e-6, "{w:?}");
        assert!(w.is_local(1e-6));
    }

    #[test]
    fn cx_content_is_quarter_pi() {
        let w = weyl_coordinates(&cx());
        assert!((w.interaction_content() - FRAC_PI_4).abs() < 1e-6, "{w:?}");
    }

    #[test]
    fn swap_content_is_three_quarter_pi() {
        let w = weyl_coordinates(&swap());
        assert!(
            (w.interaction_content() - 3.0 * FRAC_PI_4).abs() < 1e-6,
            "{w:?}"
        );
    }

    #[test]
    fn iswap_content_is_half_pi() {
        let w = weyl_coordinates(&iswap());
        assert!((w.interaction_content() - FRAC_PI_2).abs() < 1e-6, "{w:?}");
    }

    #[test]
    fn local_product_has_zero_content() {
        // H ⊗ T is a product of single-qubit gates.
        let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        let h = Matrix::from_rows(&[&[s, s], &[s, -s]]);
        let t = Matrix::diag(&[C64::ONE, C64::cis(FRAC_PI_4)]);
        let w = weyl_coordinates(&h.kron(&t));
        assert!(w.interaction_content() < 1e-6, "{w:?}");
    }

    #[test]
    fn content_is_invariant_under_local_dressing() {
        // CX dressed by local gates keeps its canonical content.
        let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        let h = Matrix::from_rows(&[&[s, s], &[s, -s]]);
        let local = h.kron(&Matrix::identity(2));
        let dressed = local.matmul(&cx()).matmul(&local.dagger());
        let w = weyl_coordinates(&dressed);
        assert!((w.interaction_content() - FRAC_PI_4).abs() < 1e-6, "{w:?}");
    }
}
