//! A deterministic, in-tree pseudo-random number generator.
//!
//! The workspace builds with no external crates, so this module supplies
//! the randomness the reproduction needs (GRAPE initial guesses, SABRE
//! layouts, workload corpora, Haar-random test unitaries): xoshiro256**
//! by Blackman & Vigna, seeded through SplitMix64 exactly as the
//! reference implementation recommends. The generator is fully
//! deterministic from its seed and stable across platforms, which the
//! seeded tests and benchmark corpora rely on.

use std::ops::{Range, RangeInclusive};

/// A xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use paqoc_math::Rng;
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x: f64 = a.random();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let state = [next_sm(), next_sm(), next_sm(), next_sm()];
        Rng { state }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform sample of type `T` (see [`Sample`]); `f64` lands in
    /// `[0, 1)` with 53 bits of precision.
    pub fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from a range; accepts `lo..hi` and `lo..=hi`
    /// over the integer types used in this workspace plus `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_in(self)
    }

    /// Uniform integer in `[0, bound)` by Lemire rejection (unbiased).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            // Low 64 bits of the 128-bit product are the rejection test.
            let wide = (x as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

/// Types [`Rng::random`] can produce.
pub trait Sample {
    /// Draws one uniform sample.
    fn sample(rng: &mut Rng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for f64 {
    fn sample(rng: &mut Rng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Sample for bool {
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample_in(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_in(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_in(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_in(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_xoshiro_reference_vector() {
        // xoshiro256** with state {1, 2, 3, 4}: first outputs from the
        // published reference implementation.
        let mut rng = Rng {
            state: [1, 2, 3, 4],
        };
        assert_eq!(rng.next_u64(), 11520);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1509978240);
        assert_eq!(rng.next_u64(), 1215971899390074240);
        assert_eq!(rng.next_u64(), 1216172134540287360);
        assert_eq!(rng.next_u64(), 607988272756665600);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 1000 uniforms is within a loose window of 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn ranges_cover_their_support_uniformly_enough() {
        let mut rng = Rng::seed_from_u64(11);
        let mut hits = [0usize; 6];
        for _ in 0..6000 {
            hits[rng.random_range(0..6usize)] += 1;
        }
        for (face, &h) in hits.iter().enumerate() {
            assert!((800..1200).contains(&h), "face {face}: {h}");
        }
        for _ in 0..100 {
            let v = rng.random_range(4..=16usize);
            assert!((4..=16).contains(&v));
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.random_range(0..10u32);
            assert!(u < 10);
        }
    }

    #[test]
    fn inclusive_range_reaches_both_endpoints() {
        let mut rng = Rng::seed_from_u64(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..500 {
            match rng.random_range(0..=3usize) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                _ => {}
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).random_range(5..5usize);
    }
}
