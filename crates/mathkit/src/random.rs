//! Haar-random unitaries and reproducible numeric noise.
//!
//! Random unitaries drive the property-based tests (invariance of Weyl
//! coordinates, unitarity preservation of `expm`) and the supremacy-style
//! workload generator. The construction is the standard Ginibre + QR with
//! phase fixing, which yields Haar measure.

use crate::complex::C64;
use crate::matrix::Matrix;
use crate::rng::Rng;

/// Draws a standard-normal sample via Box–Muller from a uniform source.
fn normal(rng: &mut Rng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random::<f64>();
    (-2.0f64 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples an `n × n` matrix with i.i.d. standard complex Gaussian entries.
pub fn ginibre(n: usize, rng: &mut Rng) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = C64::new(normal(rng), normal(rng));
        }
    }
    m
}

/// Samples an `n × n` Haar-random unitary.
///
/// Uses QR of a Ginibre matrix via modified Gram–Schmidt, with the phases
/// of the `R` diagonal folded into `Q` so the distribution is exactly Haar.
///
/// # Examples
///
/// ```
/// use paqoc_math::random_unitary_seeded;
/// let u = random_unitary_seeded(4, 7);
/// assert!(u.is_unitary(1e-10));
/// ```
pub fn random_unitary(n: usize, rng: &mut Rng) -> Matrix {
    let g = ginibre(n, rng);
    // Modified Gram–Schmidt on columns.
    let mut q = g;
    for j in 0..n {
        // Normalize column j.
        let mut norm = 0.0f64;
        for i in 0..n {
            norm += q[(i, j)].norm_sqr();
        }
        let norm = norm.sqrt();
        // Fix the phase using the leading entry so R has positive diagonal.
        let lead = q[(0, j)];
        let phase = if lead.abs() > 1e-300 {
            C64::cis(-lead.arg())
        } else {
            C64::ONE
        };
        let inv = phase * (1.0 / norm.max(1e-300));
        for i in 0..n {
            q[(i, j)] *= inv;
        }
        // Orthogonalize the remaining columns against column j.
        for k in (j + 1)..n {
            let mut dot = C64::ZERO;
            for i in 0..n {
                dot = dot.mul_add(q[(i, j)].conj(), q[(i, k)]);
            }
            for i in 0..n {
                let v = q[(i, j)];
                q[(i, k)] = q[(i, k)].mul_add(-dot, v);
            }
        }
    }
    q
}

/// Samples a Haar-random unitary from a fixed seed (deterministic).
pub fn random_unitary_seeded(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from_u64(seed);
    random_unitary(n, &mut rng)
}

/// A tiny deterministic hash for jitter terms in the analytic latency
/// model: maps arbitrary bytes to a value in `[0, 1)`.
///
/// This is FNV-1a followed by a 53-bit mantissa extraction — fast, stable
/// across platforms and good enough for ±5% deterministic "noise".
pub fn stable_jitter(bytes: &[u8]) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Mix once more to decorrelate low bytes.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_unitary_is_unitary() {
        for seed in 0..5 {
            for n in [2usize, 4, 8] {
                let u = random_unitary_seeded(n, seed);
                assert!(u.is_unitary(1e-9), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn seeded_unitary_is_deterministic() {
        let a = random_unitary_seeded(4, 42);
        let b = random_unitary_seeded(4, 42);
        assert!(a.max_diff(&b) < 1e-15);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_unitary_seeded(4, 1);
        let b = random_unitary_seeded(4, 2);
        assert!(a.max_diff(&b) > 1e-3);
    }

    #[test]
    fn jitter_is_in_unit_interval_and_stable() {
        let j1 = stable_jitter(b"cx:0:1");
        let j2 = stable_jitter(b"cx:0:1");
        let j3 = stable_jitter(b"cx:1:0");
        assert_eq!(j1, j2);
        assert!((0.0..1.0).contains(&j1));
        assert_ne!(j1, j3);
    }

    #[test]
    fn ginibre_entries_have_unit_scale() {
        let mut rng = Rng::seed_from_u64(9);
        let g = ginibre(8, &mut rng);
        let mean_sq: f64 = g.as_slice().iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        // E|z|² = 2 for standard complex Gaussian with unit-variance parts.
        assert!((mean_sq - 2.0).abs() < 0.8, "mean_sq={mean_sq}");
    }
}
