//! # paqoc-math
//!
//! From-scratch complex linear algebra sized for few-qubit quantum optimal
//! control: a [`C64`] scalar type, dense [`Matrix`] kernels (product,
//! Kronecker, adjoint, linear solve), the matrix exponential [`expm`],
//! small-matrix [`eigenvalues`], Weyl-chamber canonical coordinates of
//! two-qubit gates ([`weyl_coordinates`]), fidelity metrics and Haar-random
//! unitaries.
//!
//! This crate is the numeric substrate of the PAQOC reproduction; every
//! other crate builds on it and nothing here knows about circuits or
//! pulses.
//!
//! ## Example
//!
//! ```
//! use paqoc_math::{expm, trace_fidelity, C64, Matrix};
//!
//! // A π/2 X rotation generated from its Hamiltonian…
//! let x = Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
//! let u = expm(&x.scaled(C64::new(0.0, -std::f64::consts::FRAC_PI_4)));
//! // …is a √X gate up to global phase.
//! assert!(u.is_unitary(1e-12));
//! assert!(trace_fidelity(&u, &u) > 0.999_999);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod eig;
mod expm;
mod fidelity;
mod matrix;
mod random;
mod rng;
mod weyl;

pub use complex::C64;
pub use eig::{char_poly, eigenvalues, poly_roots};
pub use expm::{expm, propagator};
pub use fidelity::{
    average_gate_fidelity, gate_success_rate, phase_aligned_distance, trace_fidelity,
};
pub use matrix::Matrix;
pub use random::{ginibre, random_unitary, random_unitary_seeded, stable_jitter};
pub use rng::{Rng, Sample, SampleRange};
pub use weyl::{det, weyl_coordinates, WeylCoordinates};
