//! Dense complex matrices sized for few-qubit unitaries.
//!
//! Row-major storage; all hot paths (`matmul`, `kron`, `dagger`) are written
//! against flat slices so the optimizer can vectorize them. Dimensions in
//! this workspace are small powers of two (2–32), so `O(n³)` kernels are
//! entirely adequate and cache-friendly.

use crate::complex::C64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use paqoc_math::{C64, Matrix};
/// let x = Matrix::from_rows(&[
///     &[C64::ZERO, C64::ONE],
///     &[C64::ONE, C64::ZERO],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert_eq!(&x * &x, Matrix::identity(2));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Matrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or have inconsistent lengths.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a square matrix from a flat row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a perfect square.
    pub fn from_flat(data: Vec<C64>) -> Self {
        let n = (data.len() as f64).sqrt().round() as usize;
        assert_eq!(n * n, data.len(), "flat data must form a square matrix");
        Matrix {
            rows: n,
            cols: n,
            data,
        }
    }

    /// Builds a diagonal matrix from the given entries.
    pub fn diag(entries: &[C64]) -> Self {
        let mut m = Matrix::zeros(entries.len(), entries.len());
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable flat row-major view of the entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Conjugate transpose `A†`.
    pub fn dagger(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Matrix {
        let data = self.data.iter().map(|z| z.conj()).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Matrix trace.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Scales every entry by a complex factor.
    pub fn scaled(&self, s: C64) -> Matrix {
        let data = self.data.iter().map(|&z| z * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += other * s`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, s: C64, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "axpy shape mismatch");
        assert_eq!(self.cols, other.cols, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = a.mul_add(*b, s);
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul inner dimensions must agree ({}×{} · {}×{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        paqoc_telemetry::kernel_probe!("mathkit.matmul", self.rows);
        paqoc_telemetry::kernel_alloc(
            "mathkit.matmul",
            1,
            (self.rows * rhs.cols * std::mem::size_of::<C64>()) as u64,
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        // i-k-j loop order: streams over the output row and the rhs row,
        // which is the cache-friendly order for row-major data.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a.re == 0.0 && a.im == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * n..(k + 1) * n];
                for j in 0..n {
                    out_row[j] = out_row[j].mul_add(a, rhs_row[j]);
                }
            }
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a.re == 0.0 && a.im == 0.0 {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Induced 1-norm (maximum absolute column sum), used by `expm` scaling.
    pub fn one_norm(&self) -> f64 {
        let mut best = 0.0f64;
        for j in 0..self.cols {
            let s: f64 = (0..self.rows).map(|i| self[(i, j)].abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Largest entry magnitude.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// `true` when `‖A†A − I‖_max ≤ tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let p = self.dagger().matmul(self);
        let mut dev = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                let expect = if i == j { C64::ONE } else { C64::ZERO };
                dev = dev.max((p[(i, j)] - expect).abs());
            }
        }
        dev <= tol
    }

    /// `true` when `‖A − A†‖_max ≤ tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..=i {
                if (self[(i, j)] - self[(j, i)].conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum entry-wise distance to another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "max_diff shape mismatch");
        assert_eq!(self.cols, other.cols, "max_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Applies `self` to a state vector.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.cols()`.
    pub fn apply(&self, state: &[C64]) -> Vec<C64> {
        assert_eq!(state.len(), self.cols, "state length must equal cols");
        let mut out = vec![C64::ZERO; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = C64::ZERO;
            for (a, s) in row.iter().zip(state) {
                acc = acc.mul_add(*a, *s);
            }
            *o = acc;
        }
        out
    }

    /// Solves `A·X = B` by Gaussian elimination with partial pivoting.
    ///
    /// Used by the Padé step of [`crate::expm`]. Returns `None` when the
    /// system is singular to working precision.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn solve(&self, b: &Matrix) -> Option<Matrix> {
        assert!(self.is_square(), "solve requires a square matrix");
        assert_eq!(self.rows, b.rows, "solve shape mismatch");
        paqoc_telemetry::kernel_probe!("mathkit.solve", self.rows);
        let n = self.rows;
        let m = b.cols;
        // The elimination clones both operands — scratch that a reuse
        // pass would eliminate, so it is counted.
        paqoc_telemetry::kernel_alloc(
            "mathkit.solve",
            2,
            ((self.data.len() + b.data.len()) * std::mem::size_of::<C64>()) as u64,
        );
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Partial pivot.
            let mut piv = col;
            let mut piv_mag = a[(col, col)].abs();
            for r in (col + 1)..n {
                let mag = a[(r, col)].abs();
                if mag > piv_mag {
                    piv = r;
                    piv_mag = mag;
                }
            }
            if piv_mag < 1e-300 {
                return None;
            }
            if piv != col {
                for j in 0..n {
                    a.data.swap(col * n + j, piv * n + j);
                }
                for j in 0..m {
                    x.data.swap(col * m + j, piv * m + j);
                }
            }
            let inv = a[(col, col)].recip();
            for r in (col + 1)..n {
                let f = a[(r, col)] * inv;
                if f.re == 0.0 && f.im == 0.0 {
                    continue;
                }
                for j in col..n {
                    let v = a[(col, j)];
                    a[(r, j)] = a[(r, j)].mul_add(-f, v);
                }
                for j in 0..m {
                    let v = x[(col, j)];
                    x[(r, j)] = x[(r, j)].mul_add(-f, v);
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let inv = a[(col, col)].recip();
            for j in 0..m {
                let mut acc = x[(col, j)];
                for k in (col + 1)..n {
                    acc = acc.mul_add(-a[(col, k)], x[(k, j)]);
                }
                x[(col, j)] = acc * inv;
            }
        }
        Some(x)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}×{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>24}", format!("{}", self[(i, j)]))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "add shape mismatch");
        assert_eq!(self.cols, rhs.cols, "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| *a + *b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "sub shape mismatch");
        assert_eq!(self.cols, rhs.cols, "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| *a - *b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scaled(C64::real(-1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x_gate() -> Matrix {
        Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
    }

    fn h_gate() -> Matrix {
        let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        Matrix::from_rows(&[&[s, s], &[s, -s]])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let h = h_gate();
        let i2 = Matrix::identity(2);
        assert!(h.matmul(&i2).max_diff(&h) < 1e-15);
        assert!(i2.matmul(&h).max_diff(&h) < 1e-15);
    }

    #[test]
    fn x_is_self_inverse() {
        let x = x_gate();
        assert!(x.matmul(&x).max_diff(&Matrix::identity(2)) < 1e-15);
    }

    #[test]
    fn hadamard_is_unitary_and_hermitian() {
        let h = h_gate();
        assert!(h.is_unitary(1e-12));
        assert!(h.is_hermitian(1e-12));
    }

    #[test]
    fn dagger_reverses_products() {
        let h = h_gate();
        let x = x_gate();
        let lhs = h.matmul(&x).dagger();
        let rhs = x.dagger().matmul(&h.dagger());
        assert!(lhs.max_diff(&rhs) < 1e-14);
    }

    #[test]
    fn kron_shapes_and_identity() {
        let i2 = Matrix::identity(2);
        let k = i2.kron(&i2);
        assert_eq!(k.rows(), 4);
        assert!(k.max_diff(&Matrix::identity(4)) < 1e-15);
    }

    #[test]
    fn kron_of_x_and_identity() {
        let x = x_gate();
        let k = x.kron(&Matrix::identity(2));
        // X⊗I maps |00> -> |10>, i.e. column 0 has a 1 at row 2.
        assert_eq!(k[(2, 0)], C64::ONE);
        assert_eq!(k[(0, 0)], C64::ZERO);
        assert!(k.is_unitary(1e-12));
    }

    #[test]
    fn trace_of_identity() {
        assert_eq!(Matrix::identity(5).trace(), C64::real(5.0));
    }

    #[test]
    fn solve_recovers_rhs() {
        // A = H (unitary, well conditioned); X should satisfy H X = B.
        let h = h_gate();
        let b = x_gate();
        let x = h.solve(&b).expect("H is invertible");
        assert!(h.matmul(&x).max_diff(&b) < 1e-12);
    }

    #[test]
    fn solve_detects_singularity() {
        let singular = Matrix::from_rows(&[&[C64::ONE, C64::ONE], &[C64::ONE, C64::ONE]]);
        assert!(singular.solve(&Matrix::identity(2)).is_none());
    }

    #[test]
    fn apply_matches_matmul_column() {
        let h = h_gate();
        let state = vec![C64::ONE, C64::ZERO];
        let out = h.apply(&state);
        assert!((out[0].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-14);
        assert!((out[1].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-14);
    }

    #[test]
    fn norms_agree_on_identity() {
        let i4 = Matrix::identity(4);
        assert!((i4.frobenius_norm() - 2.0).abs() < 1e-14);
        assert!((i4.one_norm() - 1.0).abs() < 1e-14);
        assert!((i4.max_abs() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn axpy_accumulates() {
        let mut m = Matrix::identity(2);
        m.axpy(C64::real(2.0), &x_gate());
        assert_eq!(m[(0, 1)], C64::real(2.0));
        assert_eq!(m[(0, 0)], C64::ONE);
    }

    #[test]
    #[should_panic(expected = "matmul inner dimensions")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
