//! A from-scratch double-precision complex number type.
//!
//! The quantum-optimal-control kernels in this workspace only need a small,
//! predictable surface: arithmetic, conjugation, polar helpers and `exp`.
//! Implementing it locally keeps the workspace dependency-free for its
//! numeric core and lets us tune the inline behaviour of the hot loops.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use paqoc_math::C64;
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// ```
    /// use paqoc_math::C64;
    /// let z = C64::from_polar(2.0, std::f64::consts::PI);
    /// assert!((z.re + 2.0).abs() < 1e-12 && z.im.abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}`: a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns non-finite components for zero input.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        C64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        C64::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Principal natural logarithm.
    pub fn ln(self) -> Self {
        C64::new(self.abs().ln(), self.arg())
    }

    /// Multiplies by the imaginary unit (cheaper than `self * C64::I`).
    #[inline]
    pub fn mul_i(self) -> Self {
        C64::new(-self.im, self.re)
    }

    /// Fused multiply-accumulate: `self + a * b`.
    #[inline]
    pub fn mul_add(self, a: C64, b: C64) -> Self {
        C64::new(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64::new(self.re * s, self.im * s)
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiply-by-reciprocal
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert!(close(z * z.recip(), C64::ONE));
        assert_eq!(-(-z), z);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(C64::I * C64::I, C64::real(-1.0)));
    }

    #[test]
    fn modulus_and_argument() {
        let z = C64::new(0.0, 2.0);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((z.norm_sqr() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.5, 1.234);
        assert!((z.abs() - 2.5).abs() < 1e-12);
        assert!((z.arg() - 1.234).abs() < 1e-12);
    }

    #[test]
    fn exp_of_i_pi() {
        let z = (C64::I * std::f64::consts::PI).exp();
        assert!(close(z, C64::real(-1.0)));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = C64::new(-3.0, 4.0);
        let s = z.sqrt();
        assert!(close(s * s, z));
    }

    #[test]
    fn ln_inverts_exp() {
        let z = C64::new(0.3, -1.2);
        assert!(close(z.exp().ln(), z));
    }

    #[test]
    fn mul_i_matches_multiplication() {
        let z = C64::new(1.5, -2.5);
        assert!(close(z.mul_i(), z * C64::I));
    }

    #[test]
    fn mul_add_matches_expanded() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 0.25);
        let acc = C64::new(10.0, -3.0);
        assert!(close(acc.mul_add(a, b), acc + a * b));
    }

    #[test]
    fn division_matches_multiplication_by_reciprocal() {
        let a = C64::new(4.0, -2.0);
        let b = C64::new(1.0, 1.0);
        assert!(close(a / b, a * b.recip()));
    }

    #[test]
    fn sum_over_iterator() {
        let s: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert!(close(s, C64::new(6.0, 4.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", C64::new(1.0, -2.0)), "1-2i");
        assert_eq!(format!("{}", C64::new(1.0, 2.0)), "1+2i");
    }
}
