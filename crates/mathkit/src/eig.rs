//! Eigenvalues for small complex matrices.
//!
//! The workspace only needs eigenvalues of matrices up to 8×8 (two- and
//! three-qubit invariants), so we use the characteristic polynomial via
//! Faddeev–LeVerrier plus Durand–Kerner (Weierstrass) simultaneous root
//! iteration. This combination is numerically fine at these sizes and
//! avoids pulling in a full QR eigensolver.

use crate::complex::C64;
use crate::matrix::Matrix;

/// Computes the monic characteristic polynomial of a square matrix.
///
/// Returns coefficients `[c₀ = 1, c₁, …, c_n]` such that
/// `p(λ) = Σ c_k λ^{n-k}`.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn char_poly(a: &Matrix) -> Vec<C64> {
    assert!(a.is_square(), "char_poly requires a square matrix");
    let n = a.rows();
    // Faddeev–LeVerrier clones the running power matrix each step;
    // count that scratch (the matmuls count their own).
    paqoc_telemetry::kernel_alloc(
        "mathkit.eig",
        n as u64,
        (n * n * n * std::mem::size_of::<C64>()) as u64,
    );
    let mut coeffs = vec![C64::ONE];
    let mut m = a.clone();
    for k in 1..=n {
        let ck = m.trace() * (-1.0 / k as f64);
        coeffs.push(ck);
        if k < n {
            let mut shifted = m.clone();
            for i in 0..n {
                shifted[(i, i)] += ck;
            }
            m = a.matmul(&shifted);
        }
    }
    coeffs
}

/// Finds all roots of a monic complex polynomial by Durand–Kerner iteration.
///
/// `coeffs` are `[c₀, …, c_n]` with `c₀ = 1` (the function normalizes
/// otherwise). Returns `n` roots with multiplicity.
///
/// # Panics
///
/// Panics if the polynomial has degree zero or the leading coefficient
/// vanishes.
pub fn poly_roots(coeffs: &[C64]) -> Vec<C64> {
    assert!(coeffs.len() >= 2, "polynomial must have degree >= 1");
    let lead = coeffs[0];
    assert!(lead.abs() > 1e-300, "leading coefficient must be nonzero");
    let monic: Vec<C64> = coeffs.iter().map(|&c| c / lead).collect();
    let n = monic.len() - 1;

    let eval = |z: C64| -> C64 {
        let mut acc = C64::ZERO;
        for &c in &monic {
            acc = acc * z + c;
        }
        acc
    };

    // Initial guesses: points on a circle whose radius bounds the roots
    // (Cauchy bound), with an irrational angle offset to break symmetry.
    let radius = 1.0 + monic[1..].iter().map(|c| c.abs()).fold(0.0f64, f64::max);
    let mut roots: Vec<C64> = (0..n)
        .map(|k| {
            C64::from_polar(
                radius.min(4.0),
                0.4 + 2.0 * std::f64::consts::PI * k as f64 / n as f64,
            )
        })
        .collect();

    for _ in 0..300 {
        let mut max_step = 0.0f64;
        for i in 0..n {
            let zi = roots[i];
            let mut denom = C64::ONE;
            for (j, &zj) in roots.iter().enumerate() {
                if j != i {
                    denom *= zi - zj;
                }
            }
            if denom.abs() < 1e-300 {
                // Coincident iterates: nudge and continue.
                roots[i] = zi + C64::new(1e-8, 1e-8);
                max_step = f64::MAX;
                continue;
            }
            let step = eval(zi) / denom;
            roots[i] = zi - step;
            max_step = max_step.max(step.abs());
        }
        if max_step < 1e-14 {
            break;
        }
    }
    polish_clusters(&mut roots);
    refine_multiple_roots(&monic, &mut roots);
    roots
}

/// Replaces clusters of nearby iterates with their centroid.
///
/// Durand–Kerner converges only linearly to a root of multiplicity `m`,
/// leaving the `m` iterates spread on a circle of radius `~ε^{1/m}` around
/// the true root — but their *mean* cancels the first-order error and is
/// accurate to near machine precision. Roots closer than `5·10⁻⁴` are
/// treated as one cluster, which is far below any eigenvalue separation
/// that matters for the latency model built on these spectra.
fn polish_clusters(roots: &mut [C64]) {
    let n = roots.len();
    let mut assigned = vec![usize::MAX; n];
    let mut next_cluster = 0;
    for i in 0..n {
        if assigned[i] != usize::MAX {
            continue;
        }
        assigned[i] = next_cluster;
        for j in (i + 1)..n {
            if assigned[j] == usize::MAX {
                let scale = 1.0 + roots[i].abs();
                if (roots[i] - roots[j]).abs() < 5e-4 * scale {
                    assigned[j] = next_cluster;
                }
            }
        }
        next_cluster += 1;
    }
    for c in 0..next_cluster {
        let members: Vec<usize> = (0..n).filter(|&k| assigned[k] == c).collect();
        if members.len() > 1 {
            let centroid = members.iter().map(|&k| roots[k]).sum::<C64>() / members.len() as f64;
            for &k in &members {
                roots[k] = centroid;
            }
        }
    }
}

/// Sharpens clustered (multiple) roots of the monic polynomial `monic`.
///
/// A root of multiplicity `m` of `p` is a *simple* root of `p^{(m-1)}`,
/// where plain Newton converges quadratically without the cancellation
/// noise that stalls iteration on `p` itself.
fn refine_multiple_roots(monic: &[C64], roots: &mut [C64]) {
    let n = roots.len();
    let mut i = 0;
    while i < n {
        // Clustered roots were snapped to an identical centroid above.
        let m = roots[i..].iter().filter(|r| **r == roots[i]).count();
        if m > 1 {
            // Differentiate m-1 times.
            let mut p: Vec<C64> = monic.to_vec();
            for _ in 0..(m - 1) {
                let deg = p.len() - 1;
                p = p[..deg]
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| c * (deg - k) as f64)
                    .collect();
            }
            // Newton on the derivative polynomial.
            let mut z = roots[i];
            for _ in 0..60 {
                let (mut val, mut der) = (C64::ZERO, C64::ZERO);
                for &c in &p {
                    der = der * z + val;
                    val = val * z + c;
                }
                if der.abs() < 1e-300 {
                    break;
                }
                let step = val / der;
                z -= step;
                if step.abs() < 1e-15 * (1.0 + z.abs()) {
                    break;
                }
            }
            let target = roots[i];
            for r in roots.iter_mut() {
                if *r == target {
                    *r = z;
                }
            }
        }
        i += m;
    }
}

/// Computes the eigenvalues (with multiplicity, unordered) of a small
/// square complex matrix.
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Examples
///
/// ```
/// use paqoc_math::{eigenvalues, C64, Matrix};
/// let z = Matrix::diag(&[C64::ONE, C64::real(-1.0)]);
/// let mut evs: Vec<f64> = eigenvalues(&z).iter().map(|e| e.re).collect();
/// evs.sort_by(f64::total_cmp);
/// assert!((evs[0] + 1.0).abs() < 1e-9 && (evs[1] - 1.0).abs() < 1e-9);
/// ```
pub fn eigenvalues(a: &Matrix) -> Vec<C64> {
    paqoc_telemetry::kernel_probe!("mathkit.eig", a.rows());
    poly_roots(&char_poly(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_re(mut v: Vec<C64>) -> Vec<C64> {
        v.sort_by(|a, b| a.re.total_cmp(&b.re).then(a.im.total_cmp(&b.im)));
        v
    }

    #[test]
    fn char_poly_of_identity() {
        // p(λ) = (λ-1)² = λ² - 2λ + 1
        let p = char_poly(&Matrix::identity(2));
        assert!((p[0] - C64::ONE).abs() < 1e-12);
        assert!((p[1] - C64::real(-2.0)).abs() < 1e-12);
        assert!((p[2] - C64::ONE).abs() < 1e-12);
    }

    #[test]
    fn roots_of_quadratic() {
        // λ² - 3λ + 2 = (λ-1)(λ-2)
        let roots = sorted_re(poly_roots(&[C64::ONE, C64::real(-3.0), C64::real(2.0)]));
        assert!((roots[0] - C64::ONE).abs() < 1e-9);
        assert!((roots[1] - C64::real(2.0)).abs() < 1e-9);
    }

    #[test]
    fn roots_of_unity_quartic() {
        // λ⁴ - 1 = 0 → {1, -1, i, -i}
        let roots = poly_roots(&[C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO, C64::real(-1.0)]);
        for r in &roots {
            assert!((r.abs() - 1.0).abs() < 1e-8);
            // each root^4 == 1
            let r4 = *r * *r * *r * *r;
            assert!((r4 - C64::ONE).abs() < 1e-7);
        }
    }

    #[test]
    fn eigenvalues_of_pauli_x() {
        let x = Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let evs = sorted_re(eigenvalues(&x));
        assert!((evs[0] - C64::real(-1.0)).abs() < 1e-9);
        assert!((evs[1] - C64::ONE).abs() < 1e-9);
    }

    #[test]
    fn eigenvalues_of_unitary_lie_on_circle() {
        // A fixed 4×4 unitary: CX gate.
        let mut cx = Matrix::identity(4);
        cx[(2, 2)] = C64::ZERO;
        cx[(3, 3)] = C64::ZERO;
        cx[(2, 3)] = C64::ONE;
        cx[(3, 2)] = C64::ONE;
        for ev in eigenvalues(&cx) {
            assert!((ev.abs() - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn eigenvalues_with_multiplicity() {
        let d = Matrix::diag(&[C64::real(2.0), C64::real(2.0), C64::real(5.0)]);
        let evs = sorted_re(eigenvalues(&d));
        assert!((evs[0] - C64::real(2.0)).abs() < 1e-7);
        assert!((evs[1] - C64::real(2.0)).abs() < 1e-7);
        assert!((evs[2] - C64::real(5.0)).abs() < 1e-7);
    }
}
