//! Matrix exponential via Padé approximation with scaling and squaring.
//!
//! This is the inner kernel of GRAPE time-slice propagation: every slice
//! computes `exp(-i·dt·H)` for a small Hermitian `H`. We use the classic
//! Higham [13/13] scaling-and-squaring scheme, simplified to a fixed [6/6]
//! Padé with norm-based scaling, which is more than accurate enough for
//! the step norms this workspace produces (`‖A‖ ≲ 1`).

use crate::complex::C64;
use crate::matrix::Matrix;

/// Padé [6/6] numerator coefficients for `exp`.
const PADE6: [f64; 7] = [
    1.0,
    1.0 / 2.0,
    5.0 / 44.0,
    1.0 / 66.0,
    1.0 / 792.0,
    1.0 / 15840.0,
    1.0 / 665280.0,
];

/// Computes the matrix exponential `e^A` of a square complex matrix.
///
/// Uses a [6/6] Padé approximant with scaling and squaring; the number of
/// squarings is chosen so the scaled norm is below `0.5`.
///
/// # Panics
///
/// Panics if `a` is not square or the internal linear solve fails (which
/// cannot happen for finite input, as the Padé denominator is nonsingular
/// for `‖A‖ < ln 2` after scaling).
///
/// # Examples
///
/// ```
/// use paqoc_math::{expm, C64, Matrix};
/// // exp(iθX) = cos(θ)·I + i·sin(θ)·X
/// let theta = 0.3;
/// let x = Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
/// let u = expm(&x.scaled(C64::I * theta));
/// assert!((u[(0, 0)].re - theta.cos()).abs() < 1e-12);
/// assert!((u[(0, 1)].im - theta.sin()).abs() < 1e-12);
/// ```
pub fn expm(a: &Matrix) -> Matrix {
    assert!(a.is_square(), "expm requires a square matrix");
    paqoc_telemetry::kernel_probe!("mathkit.expm", a.rows());
    // The Padé path allocates 9 fresh n×n scratch matrices per call
    // (A_scaled, A², A⁴, A⁶, V, U_inner, U, V−U, V+U; matmul/solve
    // count their own) — making that churn visible is what lets
    // scratch reuse be measured instead of guessed.
    paqoc_telemetry::kernel_alloc(
        "mathkit.expm",
        9,
        (9 * a.rows() * a.rows() * std::mem::size_of::<C64>()) as u64,
    );
    let norm = a.one_norm();
    let squarings = if norm <= 0.5 {
        0
    } else {
        (norm / 0.5).log2().ceil() as u32
    };
    let scale = 1.0 / f64::powi(2.0, squarings as i32);
    let a_scaled = a.scaled(C64::real(scale));

    // Horner-style evaluation of even/odd power series:
    //   N = Σ c_k A^k split into U (odd) and V (even) so that
    //   exp(A) ≈ (V - U)^{-1} (V + U).
    let n = a.rows();
    let a2 = a_scaled.matmul(&a_scaled);
    let a4 = a2.matmul(&a2);
    let a6 = a2.matmul(&a4);

    // V = c0 I + c2 A² + c4 A⁴ + c6 A⁶ (even part)
    let mut v = Matrix::identity(n).scaled(C64::real(PADE6[0]));
    v.axpy(C64::real(PADE6[2]), &a2);
    v.axpy(C64::real(PADE6[4]), &a4);
    v.axpy(C64::real(PADE6[6]), &a6);

    // U = A (c1 I + c3 A² + c5 A⁴) (odd part)
    let mut u_inner = Matrix::identity(n).scaled(C64::real(PADE6[1]));
    u_inner.axpy(C64::real(PADE6[3]), &a2);
    u_inner.axpy(C64::real(PADE6[5]), &a4);
    let u = a_scaled.matmul(&u_inner);

    let denom = &v - &u;
    let numer = &v + &u;
    let mut result = denom
        .solve(&numer)
        .expect("Padé denominator is nonsingular after scaling");

    for _ in 0..squarings {
        result = result.matmul(&result);
    }
    result
}

/// Computes `exp(-i·t·H)` — the unitary propagator of a Hamiltonian `H`
/// over time `t`.
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn propagator(h: &Matrix, t: f64) -> Matrix {
    expm(&h.scaled(C64::new(0.0, -t)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_z() -> Matrix {
        Matrix::diag(&[C64::ONE, C64::real(-1.0)])
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let z = Matrix::zeros(3, 3);
        assert!(expm(&z).max_diff(&Matrix::identity(3)) < 1e-14);
    }

    #[test]
    fn exp_of_diagonal_matches_scalar_exp() {
        let d = Matrix::diag(&[C64::new(0.2, 0.3), C64::new(-1.0, 0.5)]);
        let e = expm(&d);
        assert!((e[(0, 0)] - C64::new(0.2, 0.3).exp()).abs() < 1e-12);
        assert!((e[(1, 1)] - C64::new(-1.0, 0.5).exp()).abs() < 1e-12);
        assert!(e[(0, 1)].abs() < 1e-14);
    }

    #[test]
    fn exp_of_large_norm_uses_squaring() {
        // diag with norm ≈ 8 forces multiple squarings.
        let d = Matrix::diag(&[C64::real(8.0), C64::real(-8.0)]);
        let e = expm(&d);
        assert!((e[(0, 0)].re - 8.0f64.exp()).abs() / 8.0f64.exp() < 1e-10);
        assert!((e[(1, 1)].re - (-8.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn propagator_of_hermitian_is_unitary() {
        // H = Z + 0.5 X is Hermitian.
        let x = Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let mut h = pauli_z();
        h.axpy(C64::real(0.5), &x);
        let u = propagator(&h, 1.7);
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn propagator_composes_additively_in_time() {
        let x = Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let u1 = propagator(&x, 0.4);
        let u2 = propagator(&x, 0.6);
        let u_total = propagator(&x, 1.0);
        assert!(u2.matmul(&u1).max_diff(&u_total) < 1e-10);
    }

    #[test]
    fn exp_z_rotation_matches_closed_form() {
        // exp(-iθZ/2) = diag(e^{-iθ/2}, e^{iθ/2})
        let theta = 0.9;
        let u = propagator(&pauli_z().scaled(C64::real(0.5)), theta);
        assert!((u[(0, 0)] - C64::cis(-theta / 2.0)).abs() < 1e-12);
        assert!((u[(1, 1)] - C64::cis(theta / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn exp_commuting_sum_factorizes() {
        // Z and Z² commute trivially; exp(A+B) = exp(A)exp(B) for commuting A,B.
        let a = pauli_z().scaled(C64::new(0.0, 0.3));
        let b = pauli_z().scaled(C64::new(0.1, 0.0));
        let lhs = expm(&(&a + &b));
        let rhs = expm(&a).matmul(&expm(&b));
        assert!(lhs.max_diff(&rhs) < 1e-11);
    }
}
