//! Behavioural tests of the global collector. The registry is
//! process-wide, so every test serializes on one lock and resets the
//! state it depends on.

use paqoc_telemetry::json::{parse, Value};
use paqoc_telemetry::{
    add_gauge, counter, event, gauge, observe, reset, set_enabled, set_gauge, snapshot, span,
    FieldValue, EVENT_CAPACITY, METRICS_SAMPLE_EVENT,
};
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

/// Locks out other tests, enables collection, and clears the registry.
fn fresh() -> std::sync::MutexGuard<'static, ()> {
    let guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    set_enabled(true);
    reset();
    guard
}

#[test]
fn spans_nest_and_record_in_completion_order() {
    let _lock = fresh();
    {
        let _compile = span("compile");
        {
            let _mine = span("mine");
        }
        {
            let _generate = span("generate");
        }
    }
    let snap = snapshot();
    set_enabled(false);

    // Children complete before the parent.
    let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["mine", "generate", "compile"]);

    let compile = snap.spans_named("compile")[0];
    let mine = snap.spans_named("mine")[0];
    let generate = snap.spans_named("generate")[0];
    assert_eq!(compile.parent, None);
    assert_eq!(mine.parent, Some(compile.id));
    assert_eq!(generate.parent, Some(compile.id));
    // Sibling ordering by start time: mine entered first.
    let kids = snap.children_of(compile.id);
    assert_eq!(kids[0].name, "mine");
    assert_eq!(kids[1].name, "generate");
    // A parent's wall time covers its children.
    assert!(compile.duration_ns >= mine.duration_ns + generate.duration_ns);
}

#[test]
fn counters_aggregate_across_threads() {
    let _lock = fresh();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..1000 {
                    counter("stress.increments", 1);
                }
                observe("stress.values", 2.5);
            });
        }
    });
    let snap = snapshot();
    set_enabled(false);
    assert_eq!(snap.counters["stress.increments"], 8000);
    let h = &snap.histograms["stress.values"];
    assert_eq!(h.count, 8);
    assert!((h.sum - 20.0).abs() < 1e-12);
    assert_eq!(h.min, 2.5);
    assert_eq!(h.max, 2.5);
}

#[test]
fn spans_on_different_threads_do_not_adopt_each_other() {
    let _lock = fresh();
    let _outer = span("outer");
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let _worker = span("worker");
        });
    });
    drop(_outer);
    let snap = snapshot();
    set_enabled(false);
    let worker = snap.spans_named("worker")[0];
    assert_eq!(worker.parent, None, "span stacks are per-thread");
    let outer = snap.spans_named("outer")[0];
    assert_ne!(worker.thread, outer.thread);
}

#[test]
fn jsonl_lines_parse_back_to_the_snapshot() {
    let _lock = fresh();
    {
        let _a = span("alpha \"quoted\"\n");
        counter("beta.count", 7);
        observe("gamma.hist", 1.5);
        observe("gamma.hist", 2.5);
    }
    let snap = snapshot();
    set_enabled(false);

    let jsonl = snap.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 4);
    let parsed: Vec<Value> = lines
        .iter()
        .map(|l| parse(l).expect("every JSONL line parses"))
        .collect();

    let meta_line = &parsed[0];
    assert_eq!(
        meta_line.get("type").and_then(Value::as_str),
        Some("trace_meta")
    );
    assert_eq!(
        meta_line.get("trace_schema").and_then(Value::as_num),
        Some(paqoc_telemetry::TRACE_SCHEMA as f64)
    );

    let span_line = &parsed[1];
    assert_eq!(span_line.get("type").and_then(Value::as_str), Some("span"));
    assert_eq!(
        span_line.get("name").and_then(Value::as_str),
        Some("alpha \"quoted\"\n"),
        "escaping must round-trip"
    );
    assert_eq!(
        span_line.get("duration_ns").and_then(Value::as_num),
        Some(snap.spans[0].duration_ns as f64)
    );

    let counter_line = &parsed[2];
    assert_eq!(
        counter_line.get("name").and_then(Value::as_str),
        Some("beta.count")
    );
    assert_eq!(counter_line.get("value").and_then(Value::as_num), Some(7.0));

    let hist_line = &parsed[3];
    assert_eq!(hist_line.get("count").and_then(Value::as_num), Some(2.0));
    assert_eq!(hist_line.get("sum").and_then(Value::as_num), Some(4.0));
    assert_eq!(hist_line.get("min").and_then(Value::as_num), Some(1.5));
    assert_eq!(hist_line.get("max").and_then(Value::as_num), Some(2.5));
}

#[test]
fn disabled_collector_records_nothing() {
    let _lock = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    set_enabled(true);
    reset();
    set_enabled(false);
    {
        let _s = span("ghost");
        counter("ghost.count", 1);
        observe("ghost.hist", 1.0);
        event("ghost.event", &[("k", FieldValue::from(1u64))]);
        paqoc_telemetry::event!("ghost.macro_event", k = 2u64);
    }
    let snap = snapshot();
    assert!(snap.spans.is_empty(), "{:?}", snap.spans);
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
    assert!(snap.events.is_empty(), "{:?}", snap.events);
}

#[test]
fn report_renders_tree_counters_and_histograms() {
    let _lock = fresh();
    {
        let _c = span("compile");
        let _m = span("mine");
        counter("miner.patterns_found", 4);
        observe("table.group_qubits", 2.0);
    }
    let snap = snapshot();
    set_enabled(false);
    let report = snap.render_report();
    assert!(report.contains("compile"));
    assert!(
        report.contains("  mine"),
        "children are indented:\n{report}"
    );
    assert!(report.contains("miner.patterns_found"));
    assert!(report.contains("table.group_qubits"));
    assert!(report.contains('%'));
}

#[test]
fn events_carry_typed_fields_and_link_to_the_enclosing_span() {
    let _lock = fresh();
    {
        let _search = span("search");
        paqoc_telemetry::event!(
            "search.iteration",
            iter = 3u64,
            gain = -12.5f64,
            committed = true,
            reason = "top_k",
        );
    }
    event("orphan", &[]);
    let snap = snapshot();
    set_enabled(false);

    assert_eq!(snap.events.len(), 2);
    let e = &snap.events[0];
    assert_eq!(e.name, "search.iteration");
    assert_eq!(e.span, Some(snap.spans_named("search")[0].id));
    assert_eq!(e.fields[0], ("iter".to_string(), FieldValue::U64(3)));
    assert_eq!(e.fields[1], ("gain".to_string(), FieldValue::F64(-12.5)));
    assert_eq!(
        e.fields[2],
        ("committed".to_string(), FieldValue::Bool(true))
    );
    assert_eq!(
        e.fields[3],
        ("reason".to_string(), FieldValue::Str("top_k".to_string()))
    );

    let orphan = &snap.events[1];
    assert_eq!(orphan.span, None, "no enclosing span after the guard drops");
    assert!(orphan.seq > e.seq, "sequence numbers are monotone");
    assert!(orphan.ts_ns >= e.ts_ns, "timestamps are monotone");
    assert_eq!(snap.events_dropped, 0);
}

#[test]
fn event_journal_evicts_oldest_at_capacity() {
    let _lock = fresh();
    let extra = 10usize;
    for i in 0..EVENT_CAPACITY + extra {
        event("flood", &[("i", FieldValue::from(i as u64))]);
    }
    let snap = snapshot();
    set_enabled(false);
    assert_eq!(snap.events.len(), EVENT_CAPACITY);
    assert_eq!(snap.events_dropped, extra as u64);
    assert_eq!(
        snap.events[0].fields[0].1,
        FieldValue::U64(extra as u64),
        "the oldest events are the ones evicted"
    );
}

#[test]
fn reset_clears_per_thread_span_stacks() {
    let _lock = fresh();
    // A guard leaked across a reset must not leave a stale parent id on
    // this thread's stack, and must not record a span on drop.
    let stale = span("stale");
    reset();
    drop(stale);
    {
        let _fresh_span = span("fresh");
    }
    let snap = snapshot();
    set_enabled(false);
    let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["fresh"], "the pre-reset span must not be recorded");
    assert_eq!(
        snap.spans_named("fresh")[0].parent,
        None,
        "reset must clear the per-thread span stack"
    );
}

#[test]
fn gauges_set_add_and_land_in_every_export() {
    let _lock = fresh();
    set_gauge("exec.queue_depth", 17.0);
    assert_eq!(add_gauge("exec.queue_depth", -2.0), 15.0);
    assert_eq!(add_gauge("exec.workers_busy", 3.0), 3.0);
    assert_eq!(gauge("exec.queue_depth"), Some(15.0));
    let snap = snapshot();
    set_enabled(false);

    assert_eq!(snap.gauges["exec.queue_depth"], 15.0);
    assert_eq!(snap.gauges["exec.workers_busy"], 3.0);

    // JSONL: a typed gauge line that parses back.
    let jsonl = snap.to_jsonl();
    let line = jsonl
        .lines()
        .find(|l| l.contains("\"type\":\"gauge\"") && l.contains("exec.queue_depth"))
        .expect("gauge line present");
    let v = parse(line).expect("gauge line parses");
    assert_eq!(v.get("value").and_then(Value::as_num), Some(15.0));

    // Chrome: a final ph:"C" sample per gauge.
    let trace = parse(&snap.to_chrome_trace()).expect("chrome trace parses");
    let Some(Value::Arr(events)) = trace.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    let sample = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("exec.workers_busy"))
        .expect("gauge counter sample present");
    assert_eq!(sample.get("ph").and_then(Value::as_str), Some("C"));
    assert_eq!(
        sample
            .get("args")
            .and_then(|a| a.get("value"))
            .and_then(Value::as_num),
        Some(3.0)
    );

    // Human-readable report shows the level.
    assert!(snap.render_report().contains("exec.queue_depth"));
}

/// Regression mirror of `reset_clears_per_thread_span_stacks`: the
/// gauge map lives outside the main registry behind its own lock, so
/// `reset()` must wipe it explicitly — a stale level surviving a reset
/// would poison every later flight-recorder sample.
#[test]
fn reset_clears_the_gauge_map() {
    let _lock = fresh();
    set_gauge("stale.level", 42.0);
    add_gauge("stale.accum", 7.0);
    assert_eq!(gauge("stale.level"), Some(42.0));
    reset();
    assert_eq!(gauge("stale.level"), None, "reset must clear gauges");
    assert_eq!(
        add_gauge("stale.accum", 1.0),
        1.0,
        "post-reset adds start from zero, not the stale level"
    );
    let snap = snapshot();
    set_enabled(false);
    assert_eq!(snap.gauges.len(), 1);
    assert_eq!(snap.gauges["stale.accum"], 1.0);
}

/// Flight-recorder samples (`metrics.sample` events) render as counter
/// timelines in the Chrome export: one ph:"C" event per numeric field
/// per sample, named by the field — not as instant events.
#[test]
fn metrics_sample_events_become_counter_timelines() {
    let _lock = fresh();
    for tick in 0..3u64 {
        event(
            METRICS_SAMPLE_EVENT,
            &[
                ("rss_bytes", FieldValue::U64(1000 + tick)),
                ("exec.queue_depth", FieldValue::F64(5.0 - tick as f64)),
                ("host", FieldValue::Str("ignored".to_string())),
            ],
        );
    }
    let snap = snapshot();
    set_enabled(false);
    let trace = parse(&snap.to_chrome_trace()).expect("chrome trace parses");
    let Some(Value::Arr(events)) = trace.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    let series: Vec<&Value> = events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("exec.queue_depth"))
        .collect();
    assert_eq!(series.len(), 3, "one counter event per sample");
    assert!(series
        .iter()
        .all(|e| e.get("ph").and_then(Value::as_str) == Some("C")));
    let values: Vec<f64> = series
        .iter()
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("value"))
                .and_then(Value::as_num)
        })
        .collect();
    assert_eq!(values, vec![5.0, 4.0, 3.0]);
    assert_eq!(
        events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("rss_bytes"))
            .count(),
        3
    );
    assert!(
        !events
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some(METRICS_SAMPLE_EVENT)),
        "samples must not also render as instant events"
    );
    // The JSONL journal still carries the raw sample events.
    assert_eq!(
        snap.to_jsonl().matches(METRICS_SAMPLE_EVENT).count(),
        3,
        "journal keeps the raw records"
    );
}

#[test]
fn histogram_quantiles_track_a_known_distribution() {
    let _lock = fresh();
    for i in 1..=1000 {
        observe("latency", f64::from(i));
    }
    observe("signed", -40.0);
    observe("signed", 0.0);
    observe("signed", 40.0);
    let snap = snapshot();
    set_enabled(false);

    // The sketch guarantees ≤ ~9% relative error per bucket.
    let h = &snap.histograms["latency"];
    assert!((h.p50() - 500.0).abs() / 500.0 < 0.10, "p50 = {}", h.p50());
    assert!((h.p90() - 900.0).abs() / 900.0 < 0.10, "p90 = {}", h.p90());
    assert!((h.p99() - 990.0).abs() / 990.0 < 0.10, "p99 = {}", h.p99());
    assert!(h.quantile(0.0) >= h.min && h.quantile(1.0) <= h.max);

    // Negative and zero observations land on the correct side of zero.
    let s = &snap.histograms["signed"];
    assert!(
        (s.quantile(0.0) + 40.0).abs() / 40.0 < 0.10,
        "{}",
        s.quantile(0.0)
    );
    assert_eq!(s.p50(), 0.0);
    assert!(
        (s.quantile(1.0) - 40.0).abs() / 40.0 < 0.10,
        "{}",
        s.quantile(1.0)
    );
}

#[test]
fn jsonl_includes_events_and_drop_marker() {
    let _lock = fresh();
    event(
        "decision \"quoted\"\\",
        &[
            ("text", FieldValue::from("line\nbreak")),
            ("nan", FieldValue::from(f64::NAN)),
        ],
    );
    let snap = snapshot();
    set_enabled(false);
    let jsonl = snap.to_jsonl();
    let line = jsonl
        .lines()
        .find(|l| l.contains("\"type\":\"event\""))
        .expect("event line present");
    let v = parse(line).expect("event line parses");
    assert_eq!(
        v.get("name").and_then(Value::as_str),
        Some("decision \"quoted\"\\")
    );
    let fields = v.get("fields").expect("fields object");
    assert_eq!(
        fields.get("text").and_then(Value::as_str),
        Some("line\nbreak")
    );
    assert!(
        matches!(fields.get("nan"), Some(Value::Null)),
        "non-finite floats serialize as null"
    );
}

#[test]
fn chrome_trace_escapes_names_and_parses() {
    let _lock = fresh();
    {
        let _s = span("phase \"x\"\\\n");
        event("note\t", &[("msg", FieldValue::from("say \"hi\"\\"))]);
    }
    let snap = snapshot();
    set_enabled(false);
    let trace = snap.to_chrome_trace();
    let v = parse(&trace).expect("chrome trace is valid JSON");
    let Some(Value::Arr(events)) = v.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    assert!(events
        .iter()
        .any(|e| e.get("name").and_then(Value::as_str) == Some("phase \"x\"\\\n")));
    let note = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("note\t"))
        .expect("instant event present");
    assert_eq!(note.get("ph").and_then(Value::as_str), Some("i"));
    assert_eq!(
        note.get("args")
            .and_then(|a| a.get("msg"))
            .and_then(Value::as_str),
        Some("say \"hi\"\\")
    );
}

#[test]
fn chrome_trace_timestamps_are_monotone() {
    let _lock = fresh();
    for i in 0..5 {
        let _s = span("step");
        event("tick", &[("i", FieldValue::from(i as u64))]);
    }
    counter("steps", 5);
    let snap = snapshot();
    set_enabled(false);
    let v = parse(&snap.to_chrome_trace()).expect("chrome trace parses");
    let Some(Value::Arr(events)) = v.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    let ts: Vec<f64> = events
        .iter()
        .filter_map(|e| e.get("ts").and_then(Value::as_num))
        .collect();
    assert!(ts.len() >= 11, "5 spans + 5 instants + 1 counter");
    assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "trace events must be sorted by timestamp: {ts:?}"
    );
}

#[test]
fn macros_expand_to_the_collector_calls() {
    let _lock = fresh();
    {
        let _s = paqoc_telemetry::span!("macro_span");
        paqoc_telemetry::counter!("macro.default_delta");
        paqoc_telemetry::counter!("macro.explicit_delta", 5);
    }
    let snap = snapshot();
    set_enabled(false);
    assert_eq!(snap.spans_named("macro_span").len(), 1);
    assert_eq!(snap.counters["macro.default_delta"], 1);
    assert_eq!(snap.counters["macro.explicit_delta"], 5);
}

#[test]
fn kernel_probes_attribute_counts_dims_and_allocs() {
    let _lock = fresh();
    {
        let _s = span("compile");
        {
            paqoc_telemetry::kernel_probe!("test.expm", 4);
            {
                paqoc_telemetry::kernel_probe!("test.matmul", 4);
            }
            {
                paqoc_telemetry::kernel_probe!("test.matmul", 4);
            }
            paqoc_telemetry::kernel_alloc("test.expm", 9, 9 * 256);
        }
        {
            paqoc_telemetry::kernel_probe!("test.matmul", 8);
        }
    }
    let snap = snapshot();
    set_enabled(false);

    let expm = &snap.kernels["test.expm"];
    assert_eq!(expm.calls, 1);
    assert_eq!(expm.allocs, 9);
    assert_eq!(expm.alloc_bytes, 9 * 256);

    let matmul = &snap.kernels["test.matmul"];
    assert_eq!(matmul.calls, 3);
    assert_eq!(matmul.by_dim[&4].calls, 2);
    assert_eq!(matmul.by_dim[&8].calls, 1);
    assert_eq!(matmul.by_dim[&4].hist.count, 2, "per-dim latency sketch");

    // The 4×4 matmuls ran inside the expm probe; the 8×8 one did not.
    let nested = snap
        .kernel_sites
        .iter()
        .find(|s| s.name == "test.matmul" && s.dim == 4)
        .expect("nested matmul site");
    assert_eq!(nested.parent, Some(("test.expm".to_string(), 4)));
    let top = snap
        .kernel_sites
        .iter()
        .find(|s| s.name == "test.matmul" && s.dim == 8)
        .expect("top-level matmul site");
    assert_eq!(top.parent, None);

    // Self-time: expm total minus the nested matmul time, exactly.
    assert_eq!(
        expm.total_ns - expm.self_ns,
        matmul.by_dim[&4].total_ns,
        "nested kernel time subtracts from the parent's self time"
    );

    // Every probe ran under the compile span.
    let span_id = snap.spans_named("compile")[0].id;
    assert!(snap.kernel_sites.iter().all(|s| s.span == Some(span_id)));
}

#[test]
fn reset_clears_kernel_probe_state() {
    let _lock = fresh();
    {
        paqoc_telemetry::kernel_probe!("stale.kernel", 4);
    }
    paqoc_telemetry::kernel_alloc("stale.kernel", 1, 1024);
    assert!(
        snapshot().kernels.contains_key("stale.kernel"),
        "probe recorded before the reset"
    );
    // A guard held across a reset belongs to the wiped epoch: it must
    // record nothing (mirroring the span-stack generation guarantee).
    let held = paqoc_telemetry::kernel_enter("stale.held", 2);
    reset();
    drop(held);
    {
        paqoc_telemetry::kernel_probe!("fresh.kernel", 2);
    }
    let snap = snapshot();
    set_enabled(false);
    assert!(
        !snap.kernels.contains_key("stale.kernel"),
        "reset must clear kernel counters, histograms and alloc gauges"
    );
    assert!(
        !snap.kernels.contains_key("stale.held"),
        "a probe spanning a reset records nothing"
    );
    assert_eq!(
        snap.kernels["fresh.kernel"].calls, 1,
        "post-reset counts start from zero"
    );
    assert!(snap.kernel_sites.iter().all(|s| s.name == "fresh.kernel"));
}

#[test]
fn collapsed_stacks_fold_spans_and_kernels() {
    use paqoc_telemetry::{KernelSite, Snapshot, SpanRecord};
    // Synthetic snapshot: deterministic durations, hostile names.
    let spans = vec![
        SpanRecord {
            id: 1,
            parent: None,
            name: "compile".into(),
            thread: 0,
            start_ns: 0,
            duration_ns: 10_000_000,
        },
        SpanRecord {
            id: 2,
            parent: Some(1),
            name: "grape; evil\tname".into(),
            thread: 0,
            start_ns: 0,
            duration_ns: 8_000_000,
        },
    ];
    let kernel_sites = vec![
        KernelSite {
            span: Some(2),
            parent: None,
            name: "expm".into(),
            dim: 4,
            calls: 10,
            total_ns: 3_000_000,
        },
        KernelSite {
            span: Some(2),
            parent: Some(("expm".to_string(), 4)),
            name: "matmul".into(),
            dim: 4,
            calls: 30,
            total_ns: 2_000_000,
        },
    ];
    let snap = Snapshot {
        spans,
        kernel_sites,
        ..Default::default()
    };
    let out = snap.to_collapsed_stacks();
    let lines: Vec<&str> = out.lines().collect();
    // Span self-times: compile 10ms − 8ms child; the grape span sheds
    // its 3ms of top-level kernel time. Hostile `;`/whitespace become
    // `_` so they cannot forge frames.
    assert!(lines.contains(&"compile 2000"), "lines: {lines:?}");
    assert!(lines.contains(&"compile;grape__evil_name 5000"));
    // Kernel self-times nest under the span path and the parent probe.
    assert!(lines.contains(&"compile;grape__evil_name;expm(4x4) 1000"));
    assert!(lines.contains(&"compile;grape__evil_name;expm(4x4);matmul(4x4) 2000"));
    assert_eq!(lines.len(), 4);
    // Structural invariant: exactly one space per line, integer value.
    for line in &lines {
        let (path, value) = line.rsplit_once(' ').expect("frame/value separator");
        assert!(!path.contains(' '), "no whitespace inside frames: {line}");
        value.parse::<u64>().expect("integer self-microseconds");
    }
}

#[test]
fn chrome_trace_renders_kernel_counter_track() {
    let _lock = fresh();
    {
        let _s = span("compile");
        paqoc_telemetry::kernel_probe!("evil\"kernel;name", 4);
    }
    paqoc_telemetry::kernel_alloc("evil\"kernel;name", 2, 512);
    let snap = snapshot();
    set_enabled(false);

    let chrome = snap.to_chrome_trace();
    let doc = parse(&chrome).expect("chrome trace with kernel track parses");
    assert_eq!(
        doc.get("paqocTraceSchema").and_then(Value::as_num),
        Some(paqoc_telemetry::TRACE_SCHEMA as f64)
    );
    let Some(Value::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array");
    };
    let kernel_events: Vec<&Value> = events
        .iter()
        .filter(|e| e.get("cat").and_then(Value::as_str) == Some("kernel"))
        .collect();
    // One per-dimension sample plus one allocation sample.
    assert_eq!(kernel_events.len(), 2);
    let dim_sample = kernel_events
        .iter()
        .find(|e| e.get("args").and_then(|a| a.get("dim")).is_some())
        .expect("per-dim kernel counter");
    let args = dim_sample.get("args").expect("args");
    assert_eq!(
        args.get("kernel").and_then(Value::as_str),
        Some("evil\"kernel;name"),
        "the raw kernel name rides in args, JSON-escaped"
    );
    assert_eq!(args.get("dim").and_then(Value::as_num), Some(4.0));
    assert_eq!(args.get("calls").and_then(Value::as_num), Some(1.0));
    let alloc_sample = kernel_events
        .iter()
        .find(|e| e.get("args").and_then(|a| a.get("allocs")).is_some())
        .expect("alloc kernel counter");
    let args = alloc_sample.get("args").expect("args");
    assert_eq!(args.get("allocs").and_then(Value::as_num), Some(2.0));
    assert_eq!(args.get("alloc_bytes").and_then(Value::as_num), Some(512.0));
}
