//! Behavioural tests of the global collector. The registry is
//! process-wide, so every test serializes on one lock and resets the
//! state it depends on.

use paqoc_telemetry::json::{parse, Value};
use paqoc_telemetry::{counter, observe, reset, set_enabled, snapshot, span};
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

/// Locks out other tests, enables collection, and clears the registry.
fn fresh() -> std::sync::MutexGuard<'static, ()> {
    let guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    set_enabled(true);
    reset();
    guard
}

#[test]
fn spans_nest_and_record_in_completion_order() {
    let _lock = fresh();
    {
        let _compile = span("compile");
        {
            let _mine = span("mine");
        }
        {
            let _generate = span("generate");
        }
    }
    let snap = snapshot();
    set_enabled(false);

    // Children complete before the parent.
    let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["mine", "generate", "compile"]);

    let compile = snap.spans_named("compile")[0];
    let mine = snap.spans_named("mine")[0];
    let generate = snap.spans_named("generate")[0];
    assert_eq!(compile.parent, None);
    assert_eq!(mine.parent, Some(compile.id));
    assert_eq!(generate.parent, Some(compile.id));
    // Sibling ordering by start time: mine entered first.
    let kids = snap.children_of(compile.id);
    assert_eq!(kids[0].name, "mine");
    assert_eq!(kids[1].name, "generate");
    // A parent's wall time covers its children.
    assert!(compile.duration_ns >= mine.duration_ns + generate.duration_ns);
}

#[test]
fn counters_aggregate_across_threads() {
    let _lock = fresh();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..1000 {
                    counter("stress.increments", 1);
                }
                observe("stress.values", 2.5);
            });
        }
    });
    let snap = snapshot();
    set_enabled(false);
    assert_eq!(snap.counters["stress.increments"], 8000);
    let h = &snap.histograms["stress.values"];
    assert_eq!(h.count, 8);
    assert!((h.sum - 20.0).abs() < 1e-12);
    assert_eq!(h.min, 2.5);
    assert_eq!(h.max, 2.5);
}

#[test]
fn spans_on_different_threads_do_not_adopt_each_other() {
    let _lock = fresh();
    let _outer = span("outer");
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let _worker = span("worker");
        });
    });
    drop(_outer);
    let snap = snapshot();
    set_enabled(false);
    let worker = snap.spans_named("worker")[0];
    assert_eq!(worker.parent, None, "span stacks are per-thread");
    let outer = snap.spans_named("outer")[0];
    assert_ne!(worker.thread, outer.thread);
}

#[test]
fn jsonl_lines_parse_back_to_the_snapshot() {
    let _lock = fresh();
    {
        let _a = span("alpha \"quoted\"\n");
        counter("beta.count", 7);
        observe("gamma.hist", 1.5);
        observe("gamma.hist", 2.5);
    }
    let snap = snapshot();
    set_enabled(false);

    let jsonl = snap.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 3);
    let parsed: Vec<Value> = lines
        .iter()
        .map(|l| parse(l).expect("every JSONL line parses"))
        .collect();

    let span_line = &parsed[0];
    assert_eq!(span_line.get("type").and_then(Value::as_str), Some("span"));
    assert_eq!(
        span_line.get("name").and_then(Value::as_str),
        Some("alpha \"quoted\"\n"),
        "escaping must round-trip"
    );
    assert_eq!(
        span_line.get("duration_ns").and_then(Value::as_num),
        Some(snap.spans[0].duration_ns as f64)
    );

    let counter_line = &parsed[1];
    assert_eq!(
        counter_line.get("name").and_then(Value::as_str),
        Some("beta.count")
    );
    assert_eq!(counter_line.get("value").and_then(Value::as_num), Some(7.0));

    let hist_line = &parsed[2];
    assert_eq!(hist_line.get("count").and_then(Value::as_num), Some(2.0));
    assert_eq!(hist_line.get("sum").and_then(Value::as_num), Some(4.0));
    assert_eq!(hist_line.get("min").and_then(Value::as_num), Some(1.5));
    assert_eq!(hist_line.get("max").and_then(Value::as_num), Some(2.5));
}

#[test]
fn disabled_collector_records_nothing() {
    let _lock = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    set_enabled(true);
    reset();
    set_enabled(false);
    {
        let _s = span("ghost");
        counter("ghost.count", 1);
        observe("ghost.hist", 1.0);
    }
    let snap = snapshot();
    assert!(snap.spans.is_empty(), "{:?}", snap.spans);
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
}

#[test]
fn report_renders_tree_counters_and_histograms() {
    let _lock = fresh();
    {
        let _c = span("compile");
        let _m = span("mine");
        counter("miner.patterns_found", 4);
        observe("table.group_qubits", 2.0);
    }
    let snap = snapshot();
    set_enabled(false);
    let report = snap.render_report();
    assert!(report.contains("compile"));
    assert!(
        report.contains("  mine"),
        "children are indented:\n{report}"
    );
    assert!(report.contains("miner.patterns_found"));
    assert!(report.contains("table.group_qubits"));
    assert!(report.contains('%'));
}

#[test]
fn macros_expand_to_the_collector_calls() {
    let _lock = fresh();
    {
        let _s = paqoc_telemetry::span!("macro_span");
        paqoc_telemetry::counter!("macro.default_delta");
        paqoc_telemetry::counter!("macro.explicit_delta", 5);
    }
    let snap = snapshot();
    set_enabled(false);
    assert_eq!(snap.spans_named("macro_span").len(), 1);
    assert_eq!(snap.counters["macro.default_delta"], 1);
    assert_eq!(snap.counters["macro.explicit_delta"], 5);
}
