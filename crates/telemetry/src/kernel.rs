//! Kernel-level probes: near-zero-overhead scoped timers for the numeric
//! hot loops (`expm`, complex `matmul`, gradient inner products) that
//! dominate GRAPE wall time.
//!
//! Spans are too coarse for kernel attribution — a single GRAPE call
//! runs tens of thousands of matrix products, and opening a span per
//! product would drown the registry lock. Kernel probes instead
//! accumulate into *thread-local* tables (no lock, no allocation on the
//! steady path) keyed by kernel name, matrix dimension, the innermost
//! live span, and the enclosing kernel probe (one nesting level, so
//! `matmul` time under `expm` is separable from `matmul` called
//! directly). The thread-local tables are merged into a global store
//! when a thread exits, when the owning thread takes a [`snapshot`],
//! or on an explicit [`kernel_flush`].
//!
//! Recorded per kernel: call counts, nanosecond totals, a per-dimension
//! latency [`Histogram`] (2×2 … 16×16 and beyond, keyed by the actual
//! dimension), and scratch-allocation counters ([`kernel_alloc`]) so
//! allocation churn in the Padé path is measurable.
//!
//! Probes are armed whenever tracing is on ([`crate::enabled`]), and can
//! be forced on or off independently — programmatically with
//! [`set_kernel_probes`] or via the `PAQOC_KERNEL_PROBES` environment
//! variable (`1`/`on` forces them on, `0`/`off` forces them off) — which
//! is what the probe-overhead gate in `verify.sh` uses to compare
//! probes-on against probes-off runs of the same workload. Compiling the
//! crate with `--no-default-features` (dropping the `kernel-probes`
//! feature) removes the probe bodies entirely; the disabled runtime path
//! costs a single relaxed atomic load per site.
//!
//! [`snapshot`]: crate::snapshot

use crate::{current_span_id, enabled, Histogram, RESET_GENERATION};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The environment variable that forces kernel probes on or off
/// independently of `PAQOC_TRACE` (`1`/`on`/`true` arms them, `0`/`off`/
/// `false` disarms them; unset, they follow [`crate::enabled`]).
pub const KERNEL_PROBES_ENV_VAR: &str = "PAQOC_KERNEL_PROBES";

// Tri-state + uninit, mirroring the main STATE machine: the env var is
// consulted once, and the steady-state check is one relaxed load.
const KSTATE_UNINIT: u8 = 0;
const KSTATE_FOLLOW: u8 = 1;
const KSTATE_ON: u8 = 2;
const KSTATE_OFF: u8 = 3;

static KERNEL_STATE: AtomicU8 = AtomicU8::new(KSTATE_UNINIT);

/// `true` when kernel probes are armed. Cost when disarmed: one relaxed
/// atomic load (plus the [`crate::enabled`] load in follow mode).
#[inline]
pub fn kernel_probes_enabled() -> bool {
    if !cfg!(feature = "kernel-probes") {
        return false;
    }
    match KERNEL_STATE.load(Ordering::Relaxed) {
        KSTATE_ON => true,
        KSTATE_OFF => false,
        KSTATE_FOLLOW => enabled(),
        _ => kernel_init_from_env(),
    }
}

#[cold]
fn kernel_init_from_env() -> bool {
    let target = match std::env::var(KERNEL_PROBES_ENV_VAR) {
        Ok(v) => match v.to_lowercase().as_str() {
            "1" | "on" | "true" | "yes" => KSTATE_ON,
            "0" | "off" | "false" | "no" => KSTATE_OFF,
            _ => KSTATE_FOLLOW,
        },
        Err(_) => KSTATE_FOLLOW,
    };
    // A concurrent set_kernel_probes wins: only replace the uninit state.
    let _ =
        KERNEL_STATE.compare_exchange(KSTATE_UNINIT, target, Ordering::Relaxed, Ordering::Relaxed);
    match KERNEL_STATE.load(Ordering::Relaxed) {
        KSTATE_ON => true,
        KSTATE_OFF => false,
        _ => enabled(),
    }
}

/// Forces kernel probes on (`Some(true)`), off (`Some(false)`), or back
/// to following [`crate::enabled`] (`None`). Overrides
/// `PAQOC_KERNEL_PROBES`.
pub fn set_kernel_probes(mode: Option<bool>) {
    let state = match mode {
        Some(true) => KSTATE_ON,
        Some(false) => KSTATE_OFF,
        None => KSTATE_FOLLOW,
    };
    KERNEL_STATE.store(state, Ordering::Relaxed);
}

/// Site key: (innermost span id or 0, parent kernel name or "", parent
/// kernel dim, kernel name, kernel dim). The single parent level keeps
/// `matmul`-under-`expm` separable from direct `matmul` calls without
/// storing full probe paths.
type SiteKey = (u64, &'static str, u32, &'static str, u32);

#[derive(Default, Clone, Copy)]
struct CallAgg {
    calls: u64,
    ns: u64,
}

#[derive(Default, Clone, Copy)]
struct AllocAgg {
    allocs: u64,
    bytes: u64,
}

/// Thread-local probe accumulation, generation-tagged like `SpanStack`:
/// a [`crate::reset`] since the last touch wipes it un-flushed, so
/// pre-reset samples can never leak into the post-reset store.
struct KernelTls {
    generation: u64,
    stack: Vec<(&'static str, u32)>,
    sites: HashMap<SiteKey, CallAgg>,
    hists: HashMap<(&'static str, u32), Histogram>,
    allocs: HashMap<&'static str, AllocAgg>,
}

impl KernelTls {
    fn sync(&mut self) {
        let generation = RESET_GENERATION.load(Ordering::Relaxed);
        if self.generation != generation {
            self.generation = generation;
            self.stack.clear();
            self.sites.clear();
            self.hists.clear();
            self.allocs.clear();
        }
    }

    fn flush_into_store(&mut self) {
        self.sync();
        if self.sites.is_empty() && self.hists.is_empty() && self.allocs.is_empty() {
            return;
        }
        let mut store = kernel_store().lock().expect("kernel store poisoned");
        // The store carries its own generation tag: a flush racing a
        // reset on another thread must not resurrect wiped samples.
        if store.generation != self.generation {
            if store.generation > self.generation {
                self.stack.clear();
                self.sites.clear();
                self.hists.clear();
                self.allocs.clear();
                return;
            }
            store.generation = self.generation;
            store.sites.clear();
            store.hists.clear();
            store.allocs.clear();
        }
        for (key, agg) in self.sites.drain() {
            let slot = store.sites.entry(key).or_default();
            slot.calls += agg.calls;
            slot.ns += agg.ns;
        }
        for (key, hist) in self.hists.drain() {
            store.hists.entry(key).or_default().merge(&hist);
        }
        for (name, agg) in self.allocs.drain() {
            let slot = store.allocs.entry(name).or_default();
            slot.allocs += agg.allocs;
            slot.bytes += agg.bytes;
        }
    }
}

impl Drop for KernelTls {
    fn drop(&mut self) {
        // Thread exit: merge what this thread accumulated. Worker-pool
        // threads die before their batch returns, so batch callers see
        // complete kernel data without any explicit flush.
        self.flush_into_store();
    }
}

thread_local! {
    static KERNEL_TLS: RefCell<KernelTls> = RefCell::new(KernelTls {
        generation: RESET_GENERATION.load(Ordering::Relaxed),
        stack: Vec::new(),
        sites: HashMap::new(),
        hists: HashMap::new(),
        allocs: HashMap::new(),
    });
}

#[derive(Default)]
struct KernelStoreState {
    generation: u64,
    sites: BTreeMap<SiteKey, CallAgg>,
    hists: BTreeMap<(&'static str, u32), Histogram>,
    allocs: BTreeMap<&'static str, AllocAgg>,
}

/// The merged cross-thread kernel store lives behind its own lock, like
/// the gauge map: probes never touch it on the hot path (thread-local
/// accumulation only), so flushes cannot contend with span recording.
fn kernel_store() -> &'static Mutex<KernelStoreState> {
    static STORE: OnceLock<Mutex<KernelStoreState>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(KernelStoreState::default()))
}

/// RAII guard returned by [`kernel_enter`]; records the kernel call when
/// dropped. Inert (and free) when probes are disarmed.
#[must_use = "a kernel probe measures the scope it lives in — bind it to a variable"]
pub struct KernelProbe {
    live: Option<LiveProbe>,
}

struct LiveProbe {
    name: &'static str,
    dim: u32,
    span: u64,
    parent_name: &'static str,
    parent_dim: u32,
    start: Instant,
}

/// Opens a kernel probe: a scoped timer attributed to the innermost
/// live span and the enclosing kernel probe on this thread. Prefer the
/// [`kernel_probe!`](crate::kernel_probe) macro. `dim` is the matrix
/// dimension (histograms are bucketed per dimension).
pub fn kernel_enter(name: &'static str, dim: usize) -> KernelProbe {
    if !kernel_probes_enabled() {
        return KernelProbe { live: None };
    }
    let span = current_span_id().unwrap_or(0);
    let dim = dim.min(u32::MAX as usize) as u32;
    let (parent_name, parent_dim) = KERNEL_TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        tls.sync();
        let parent = tls.stack.last().copied().unwrap_or(("", 0));
        tls.stack.push((name, dim));
        parent
    });
    KernelProbe {
        live: Some(LiveProbe {
            name,
            dim,
            span,
            parent_name,
            parent_dim,
            start: Instant::now(),
        }),
    }
}

impl Drop for KernelProbe {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let ns = live.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        // try_with: a probe dropped during thread teardown (after the
        // TLS table was destroyed) records nothing rather than aborting.
        let _ = KERNEL_TLS.try_with(|tls| {
            let mut tls = tls.borrow_mut();
            tls.sync();
            // A reset while this probe was live cleared the stack: the
            // sample belongs to the wiped epoch, record nothing.
            let Some(pos) = tls
                .stack
                .iter()
                .rposition(|&(n, d)| n == live.name && d == live.dim)
            else {
                return;
            };
            tls.stack.remove(pos);
            let key = (
                live.span,
                live.parent_name,
                live.parent_dim,
                live.name,
                live.dim,
            );
            let agg = tls.sites.entry(key).or_default();
            agg.calls += 1;
            agg.ns += ns;
            tls.hists
                .entry((live.name, live.dim))
                .or_default()
                .record(ns as f64);
        });
    }
}

/// Counts `count` scratch allocations totalling `bytes` bytes against
/// the named kernel. Thread-local, lock-free; no-op when probes are
/// disarmed. These counters make allocation churn (e.g. the nine Padé
/// scratch matrices `expm` allocates per call) measurable, so scratch
/// reuse shows up as a falling byte count rather than a guess.
pub fn kernel_alloc(name: &'static str, count: u64, bytes: u64) {
    if !kernel_probes_enabled() {
        return;
    }
    KERNEL_TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        tls.sync();
        let agg = tls.allocs.entry(name).or_default();
        agg.allocs += count;
        agg.bytes += bytes;
    });
}

/// Merges this thread's accumulated kernel samples into the global
/// store. Called automatically at thread exit and by
/// [`crate::snapshot`] (for the snapshotting thread); call it manually
/// only when another thread needs this thread's samples mid-flight.
pub fn kernel_flush() {
    let _ = KERNEL_TLS.try_with(|tls| tls.borrow_mut().flush_into_store());
}

/// This thread's un-flushed per-kernel running totals, as
/// `name → (calls, total_ns)`. Monotone between flushes — the executor
/// reads it before and after each job to compute per-job kernel deltas
/// without touching any lock.
pub fn kernel_thread_totals() -> BTreeMap<&'static str, (u64, u64)> {
    let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let _ = KERNEL_TLS.try_with(|tls| {
        let mut tls = tls.borrow_mut();
        tls.sync();
        for (&(_, _, _, name, _), agg) in &tls.sites {
            let slot = totals.entry(name).or_insert((0, 0));
            slot.0 += agg.calls;
            slot.1 += agg.ns;
        }
    });
    totals
}

/// Wipes the global kernel store (called from [`crate::reset`] after the
/// generation bump, so thread-local tables self-clear too).
pub(crate) fn clear_store() {
    let mut store = kernel_store().lock().expect("kernel store poisoned");
    store.generation = RESET_GENERATION.load(Ordering::Relaxed);
    store.sites.clear();
    store.hists.clear();
    store.allocs.clear();
}

/// One aggregated kernel call site: a (span, parent kernel, kernel,
/// dimension) cell of the attribution table.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelSite {
    /// Innermost live span at probe entry, if any.
    pub span: Option<u64>,
    /// Enclosing kernel probe (name, dim) at entry, if any.
    pub parent: Option<(String, u32)>,
    /// Kernel name (e.g. `mathkit.matmul`).
    pub name: String,
    /// Matrix dimension.
    pub dim: u32,
    /// Number of calls recorded at this site.
    pub calls: u64,
    /// Total nanoseconds across those calls (inclusive of nested
    /// kernels).
    pub total_ns: u64,
}

/// Per-dimension aggregate of one kernel.
#[derive(Clone, Debug, Default)]
pub struct KernelDimStats {
    /// Calls at this dimension.
    pub calls: u64,
    /// Total nanoseconds at this dimension (inclusive of nested
    /// kernels).
    pub total_ns: u64,
    /// Self nanoseconds: total minus time spent in kernels probed
    /// *inside* this one at this dimension.
    pub self_ns: u64,
    /// Latency sketch of individual calls (nanoseconds).
    pub hist: Histogram,
}

/// Cross-dimension aggregate of one kernel.
#[derive(Clone, Debug, Default)]
pub struct KernelStats {
    /// Total calls.
    pub calls: u64,
    /// Total nanoseconds (inclusive of nested kernels).
    pub total_ns: u64,
    /// Self nanoseconds: total minus time spent in nested kernel
    /// probes.
    pub self_ns: u64,
    /// Scratch bytes allocated ([`kernel_alloc`]).
    pub alloc_bytes: u64,
    /// Scratch allocation count ([`kernel_alloc`]).
    pub allocs: u64,
    /// Per-dimension breakdown.
    pub by_dim: BTreeMap<u32, KernelDimStats>,
}

/// Builds the snapshot views (sorted site list + per-kernel aggregates)
/// from the global store. The caller flushed its own TLS first.
pub(crate) fn snapshot_kernels() -> (Vec<KernelSite>, BTreeMap<String, KernelStats>) {
    let store = kernel_store().lock().expect("kernel store poisoned");
    let mut sites: Vec<KernelSite> = Vec::with_capacity(store.sites.len());
    // Nested-kernel time per (name, dim): what self-time subtracts.
    let mut child_ns: BTreeMap<(&str, u32), u64> = BTreeMap::new();
    for (&(span, parent_name, parent_dim, name, dim), agg) in &store.sites {
        if !parent_name.is_empty() {
            *child_ns.entry((parent_name, parent_dim)).or_insert(0) += agg.ns;
        }
        sites.push(KernelSite {
            span: (span != 0).then_some(span),
            parent: (!parent_name.is_empty()).then(|| (parent_name.to_string(), parent_dim)),
            name: name.to_string(),
            dim,
            calls: agg.calls,
            total_ns: agg.ns,
        });
    }
    let mut kernels: BTreeMap<String, KernelStats> = BTreeMap::new();
    for (&(_, _, _, name, dim), agg) in &store.sites {
        let k = kernels.entry(name.to_string()).or_default();
        k.calls += agg.calls;
        k.total_ns += agg.ns;
        let d = k.by_dim.entry(dim).or_default();
        d.calls += agg.calls;
        d.total_ns += agg.ns;
    }
    for ((name, dim), hist) in &store.hists {
        if let Some(d) = kernels.get_mut(*name).and_then(|k| k.by_dim.get_mut(dim)) {
            d.hist = hist.clone();
        }
    }
    for (name, k) in kernels.iter_mut() {
        let mut nested = 0u64;
        for (dim, d) in k.by_dim.iter_mut() {
            let child = child_ns.get(&(name.as_str(), *dim)).copied().unwrap_or(0);
            d.self_ns = d.total_ns.saturating_sub(child);
            nested += child;
        }
        k.self_ns = k.total_ns.saturating_sub(nested);
    }
    for (&name, agg) in &store.allocs {
        let k = kernels.entry(name.to_string()).or_default();
        k.alloc_bytes += agg.bytes;
        k.allocs += agg.allocs;
    }
    sites.sort_by(|a, b| {
        (&a.name, a.dim, a.span, &a.parent).cmp(&(&b.name, b.dim, b.span, &b.parent))
    });
    (sites, kernels)
}

/// Opens a kernel probe; sugar for [`kernel_enter`]. The guard is bound
/// to a hidden local, so the probe measures the rest of the enclosing
/// scope:
///
/// ```
/// # fn matmul_inner() {}
/// pub fn matmul(n: usize) {
///     paqoc_telemetry::kernel_probe!("mathkit.matmul", n);
///     matmul_inner(); // timed
/// }
/// ```
#[macro_export]
macro_rules! kernel_probe {
    ($name:expr, $dim:expr) => {
        let _kernel_probe_guard = $crate::kernel_enter($name, $dim);
    };
}
