//! Snapshot exporters: the JSONL trace and the human-readable
//! span-tree / counter-table report printed by the `profile` bench bin.

use crate::json::write_escaped;
use crate::{FieldValue, Snapshot, SpanRecord, TRACE_SCHEMA};
use std::collections::BTreeMap;
use std::fmt::Write as _;

impl Snapshot {
    /// Serializes the snapshot as JSON Lines: a `trace_meta` header
    /// (carrying [`TRACE_SCHEMA`]), then one object per span (in
    /// completion order), one per counter, one per gauge, one per
    /// histogram (percentiles included), one per kernel-probe site /
    /// per-dimension aggregate / kernel total, and one per journal
    /// event, plus an `events_dropped` line when the ring buffer
    /// evicted anything. Every line parses back with
    /// [`crate::json::parse`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"trace_meta\",\"trace_schema\":{TRACE_SCHEMA}}}"
        );
        for s in &self.spans {
            out.push_str("{\"type\":\"span\",\"id\":");
            let _ = write!(out, "{}", s.id);
            out.push_str(",\"parent\":");
            match s.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":");
            write_escaped(&mut out, &s.name);
            let _ = writeln!(
                out,
                ",\"thread\":{},\"start_ns\":{},\"duration_ns\":{}}}",
                s.thread, s.start_ns, s.duration_ns
            );
        }
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_escaped(&mut out, name);
            let _ = writeln!(out, ",\"value\":{value}}}");
        }
        for (name, value) in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            write_escaped(&mut out, name);
            out.push_str(",\"value\":");
            write_f64(&mut out, *value);
            out.push_str("}\n");
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            write_escaped(&mut out, name);
            let _ = write!(out, ",\"count\":{},\"sum\":", h.count);
            write_f64(&mut out, h.sum);
            out.push_str(",\"min\":");
            write_f64(&mut out, h.min);
            out.push_str(",\"max\":");
            write_f64(&mut out, h.max);
            out.push_str(",\"p50\":");
            write_f64(&mut out, h.p50());
            out.push_str(",\"p90\":");
            write_f64(&mut out, h.p90());
            out.push_str(",\"p99\":");
            write_f64(&mut out, h.p99());
            out.push_str("}\n");
        }
        for site in &self.kernel_sites {
            out.push_str("{\"type\":\"kernel\",\"name\":");
            write_escaped(&mut out, &site.name);
            let _ = write!(out, ",\"dim\":{},\"span\":", site.dim);
            match site.span {
                Some(s) => {
                    let _ = write!(out, "{s}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"parent\":");
            match &site.parent {
                Some((name, dim)) => {
                    write_escaped(&mut out, name);
                    let _ = write!(out, ",\"parent_dim\":{dim}");
                }
                None => out.push_str("null,\"parent_dim\":null"),
            }
            let _ = writeln!(
                out,
                ",\"calls\":{},\"total_ns\":{}}}",
                site.calls, site.total_ns
            );
        }
        for (name, k) in &self.kernels {
            for (dim, d) in &k.by_dim {
                out.push_str("{\"type\":\"kernel_dim\",\"name\":");
                write_escaped(&mut out, name);
                let _ = write!(
                    out,
                    ",\"dim\":{dim},\"calls\":{},\"total_ns\":{},\"self_ns\":{},\"p50_ns\":",
                    d.calls, d.total_ns, d.self_ns
                );
                write_f64(&mut out, d.hist.p50());
                out.push_str(",\"p90_ns\":");
                write_f64(&mut out, d.hist.p90());
                out.push_str(",\"p99_ns\":");
                write_f64(&mut out, d.hist.p99());
                out.push_str("}\n");
            }
            out.push_str("{\"type\":\"kernel_total\",\"name\":");
            write_escaped(&mut out, name);
            let _ = writeln!(
                out,
                ",\"calls\":{},\"total_ns\":{},\"self_ns\":{},\"alloc_bytes\":{},\"allocs\":{}}}",
                k.calls, k.total_ns, k.self_ns, k.alloc_bytes, k.allocs
            );
        }
        for e in &self.events {
            out.push_str("{\"type\":\"event\",\"seq\":");
            let _ = write!(out, "{}", e.seq);
            let _ = write!(
                out,
                ",\"ts_ns\":{},\"thread\":{},\"span\":",
                e.ts_ns, e.thread
            );
            match e.span {
                Some(s) => {
                    let _ = write!(out, "{s}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":");
            write_escaped(&mut out, &e.name);
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in e.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(&mut out, k);
                out.push(':');
                match v {
                    FieldValue::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    FieldValue::I64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    FieldValue::F64(x) => write_f64(&mut out, *x),
                    FieldValue::Bool(b) => {
                        let _ = write!(out, "{b}");
                    }
                    FieldValue::Str(s) => write_escaped(&mut out, s),
                }
            }
            out.push_str("}}\n");
        }
        if self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "{{\"type\":\"events_dropped\",\"value\":{}}}",
                self.events_dropped
            );
        }
        out
    }

    /// Event names with their record counts, most frequent first (ties
    /// by name); the journal's table of contents.
    pub fn event_counts(&self) -> Vec<(String, u64)> {
        let mut by_name: BTreeMap<&str, u64> = BTreeMap::new();
        for e in &self.events {
            *by_name.entry(e.name.as_str()).or_insert(0) += 1;
        }
        let mut counts: Vec<(String, u64)> = by_name
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts
    }

    /// Renders the span tree (with per-phase wall time and the share of
    /// the root span) and the counter/histogram tables as plain text —
    /// the offline stand-in for the paper's Fig. 14 cost breakdown.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str("── span tree ──────────────────────────────────────────────\n");
        if self.spans.is_empty() {
            out.push_str("(no spans recorded — is tracing enabled?)\n");
        }
        let roots = self.root_spans();
        let total_ns: u64 = roots.iter().map(|s| s.duration_ns).sum();
        for root in &roots {
            self.render_span(&mut out, root, 0, total_ns);
        }
        if !self.counters.is_empty() {
            out.push_str("── counters ───────────────────────────────────────────────\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<44} {value:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("── gauges (final levels) ──────────────────────────────────\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "{name:<44} {value:>12.2}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("── histograms ─────────────────────────────────────────────\n");
            let _ = writeln!(
                out,
                "{:<32} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "mean", "min", "p50", "p90", "p99", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<32} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                    name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max
                );
            }
        }
        if !self.kernels.is_empty() {
            out.push_str("── kernel hotspots (self time) ────────────────────────────\n");
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>12} {:>12} {:>10} {:>10}",
                "kernel", "calls", "self ms", "total ms", "allocs", "alloc KB"
            );
            let mut ranked: Vec<(&String, &crate::KernelStats)> = self.kernels.iter().collect();
            ranked.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
            for (name, k) in ranked {
                let _ = writeln!(
                    out,
                    "{:<28} {:>10} {:>12.3} {:>12.3} {:>10} {:>10.1}",
                    name,
                    k.calls,
                    k.self_ns as f64 / 1e6,
                    k.total_ns as f64 / 1e6,
                    k.allocs,
                    k.alloc_bytes as f64 / 1024.0
                );
            }
        }
        if !self.events.is_empty() {
            out.push_str("── event journal (top 10 by count) ────────────────────────\n");
            for (name, count) in self.event_counts().into_iter().take(10) {
                let _ = writeln!(out, "{name:<44} {count:>12}");
            }
            let _ = writeln!(
                out,
                "{:<44} {:>12}",
                "(total events)",
                self.events.len() as u64 + self.events_dropped
            );
            if self.events_dropped > 0 {
                let _ = writeln!(out, "{:<44} {:>12}", "(dropped)", self.events_dropped);
            }
        }
        out
    }

    /// Spans with no recorded parent, in start order.
    pub fn root_spans(&self) -> Vec<&SpanRecord> {
        let mut roots: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| {
                s.parent
                    .is_none_or(|p| !self.spans.iter().any(|c| c.id == p))
            })
            .collect();
        roots.sort_by_key(|s| (s.start_ns, s.id));
        roots
    }

    /// Direct children of `parent`, in start order.
    pub fn children_of(&self, parent: u64) -> Vec<&SpanRecord> {
        let mut kids: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(parent))
            .collect();
        kids.sort_by_key(|s| (s.start_ns, s.id));
        kids
    }

    /// Every recorded span with the given name, in start order.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        let mut found: Vec<&SpanRecord> = self.spans.iter().filter(|s| s.name == name).collect();
        found.sort_by_key(|s| (s.start_ns, s.id));
        found
    }

    fn render_span(&self, out: &mut String, span: &SpanRecord, depth: usize, total_ns: u64) {
        let ms = span.duration_ns as f64 / 1e6;
        let share = if total_ns == 0 {
            0.0
        } else {
            100.0 * span.duration_ns as f64 / total_ns as f64
        };
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", span.name);
        let _ = writeln!(out, "{label:<40} {ms:>12.3} ms {share:>6.1}%");
        for child in self.children_of(span.id) {
            self.render_span(out, child, depth + 1, total_ns);
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}
