//! Snapshot exporters: the JSONL trace and the human-readable
//! span-tree / counter-table report printed by the `profile` bench bin.

use crate::json::write_escaped;
use crate::{Snapshot, SpanRecord};
use std::fmt::Write as _;

impl Snapshot {
    /// Serializes the snapshot as JSON Lines: one object per span (in
    /// completion order), then one per counter, then one per histogram.
    /// Every line parses back with [`crate::json::parse`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str("{\"type\":\"span\",\"id\":");
            let _ = write!(out, "{}", s.id);
            out.push_str(",\"parent\":");
            match s.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":");
            write_escaped(&mut out, &s.name);
            let _ = writeln!(
                out,
                ",\"thread\":{},\"start_ns\":{},\"duration_ns\":{}}}",
                s.thread, s.start_ns, s.duration_ns
            );
        }
        for (name, value) in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            write_escaped(&mut out, name);
            let _ = writeln!(out, ",\"value\":{value}}}");
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            write_escaped(&mut out, name);
            let _ = write!(out, ",\"count\":{},\"sum\":", h.count);
            write_f64(&mut out, h.sum);
            out.push_str(",\"min\":");
            write_f64(&mut out, h.min);
            out.push_str(",\"max\":");
            write_f64(&mut out, h.max);
            out.push_str("}\n");
        }
        out
    }

    /// Renders the span tree (with per-phase wall time and the share of
    /// the root span) and the counter/histogram tables as plain text —
    /// the offline stand-in for the paper's Fig. 14 cost breakdown.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str("── span tree ──────────────────────────────────────────────\n");
        if self.spans.is_empty() {
            out.push_str("(no spans recorded — is tracing enabled?)\n");
        }
        let roots = self.root_spans();
        let total_ns: u64 = roots.iter().map(|s| s.duration_ns).sum();
        for root in &roots {
            self.render_span(&mut out, root, 0, total_ns);
        }
        if !self.counters.is_empty() {
            out.push_str("── counters ───────────────────────────────────────────────\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<44} {value:>12}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("── histograms ─────────────────────────────────────────────\n");
            let _ = writeln!(
                out,
                "{:<32} {:>8} {:>10} {:>10} {:>10}",
                "name", "count", "mean", "min", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<32} {:>8} {:>10.2} {:>10.2} {:>10.2}",
                    name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                );
            }
        }
        out
    }

    /// Spans with no recorded parent, in start order.
    pub fn root_spans(&self) -> Vec<&SpanRecord> {
        let mut roots: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| {
                s.parent
                    .is_none_or(|p| !self.spans.iter().any(|c| c.id == p))
            })
            .collect();
        roots.sort_by_key(|s| (s.start_ns, s.id));
        roots
    }

    /// Direct children of `parent`, in start order.
    pub fn children_of(&self, parent: u64) -> Vec<&SpanRecord> {
        let mut kids: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(parent))
            .collect();
        kids.sort_by_key(|s| (s.start_ns, s.id));
        kids
    }

    /// Every recorded span with the given name, in start order.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        let mut found: Vec<&SpanRecord> = self.spans.iter().filter(|s| s.name == name).collect();
        found.sort_by_key(|s| (s.start_ns, s.id));
        found
    }

    fn render_span(&self, out: &mut String, span: &SpanRecord, depth: usize, total_ns: u64) {
        let ms = span.duration_ns as f64 / 1e6;
        let share = if total_ns == 0 {
            0.0
        } else {
            100.0 * span.duration_ns as f64 / total_ns as f64
        };
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", span.name);
        let _ = writeln!(out, "{label:<40} {ms:>12.3} ms {share:>6.1}%");
        for child in self.children_of(span.id) {
            self.render_span(out, child, depth + 1, total_ns);
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}
