//! # paqoc-telemetry
//!
//! Hand-rolled, zero-dependency tracing and metrics for the PAQOC
//! compilation stack. The paper's evaluation is a compilation-cost /
//! latency trade-off (Figs. 10–14); this crate makes that cost visible:
//!
//! * **Spans** — RAII scoped timers ([`span`]) that nest (`compile` >
//!   `mine` > …) and record wall time into a global thread-safe registry;
//! * **Counters and histograms** — [`counter`] / [`observe`] for the
//!   quantities the paper reasons about (merge candidates pruned, pulse
//!   table hits, GRAPE iterations, SABRE swaps, …);
//! * **Exports** — a JSONL trace ([`Snapshot::to_jsonl`], hand-rolled
//!   JSON, parseable back with [`json::parse`]) and a human-readable
//!   span-tree + counter-table report ([`Snapshot::render_report`]).
//!
//! Collection is off by default and costs a single relaxed atomic load
//! per instrumentation site when disabled. It is switched on
//! programmatically ([`set_enabled`]) or by setting the `PAQOC_TRACE`
//! environment variable (any value but `0`/`false`/empty; a value with a
//! path shape, e.g. `trace.jsonl`, additionally names a JSONL dump file
//! for [`write_env_trace`]).
//!
//! ## Example
//!
//! ```
//! paqoc_telemetry::set_enabled(true);
//! paqoc_telemetry::reset();
//! {
//!     let _outer = paqoc_telemetry::span("compile");
//!     let _inner = paqoc_telemetry::span("mine");
//!     paqoc_telemetry::counter("miner.patterns_found", 3);
//! }
//! let snap = paqoc_telemetry::snapshot();
//! assert_eq!(snap.counters["miner.patterns_found"], 3);
//! assert_eq!(snap.spans.len(), 2);
//! paqoc_telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod report;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The environment variable that switches tracing on.
pub const ENV_VAR: &str = "PAQOC_TRACE";

// Tri-state so the env var is consulted exactly once, lazily, and the
// steady-state check stays a single relaxed atomic load.
const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_INDEX: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

fn thread_index() -> u64 {
    THREAD_INDEX.with(|slot| match slot.get() {
        Some(i) => i,
        None => {
            let i = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            slot.set(Some(i));
            i
        }
    })
}

/// `true` when collection is on. Cost when off: one relaxed atomic load
/// (after the first call, which consults `PAQOC_TRACE` once).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = env_value().is_some();
    // A concurrent set_enabled wins: only replace the uninit state.
    let target = if on { STATE_ON } else { STATE_OFF };
    let _ = STATE.compare_exchange(STATE_UNINIT, target, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// The truthy value of `PAQOC_TRACE`, if any.
fn env_value() -> Option<String> {
    match std::env::var(ENV_VAR) {
        Ok(v) if !v.is_empty() && v != "0" && v.to_lowercase() != "false" => Some(v),
        _ => None,
    }
}

/// The JSONL dump path named by `PAQOC_TRACE`, when its value looks like
/// a file path (`trace.jsonl`, `/tmp/run1.jsonl`, …) rather than a bare
/// boolean flag.
pub fn env_trace_path() -> Option<std::path::PathBuf> {
    let v = env_value()?;
    if v.contains('/') || v.ends_with(".jsonl") || v.ends_with(".json") {
        Some(std::path::PathBuf::from(v))
    } else {
        None
    }
}

/// Turns collection on or off programmatically (overrides `PAQOC_TRACE`).
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Discards every recorded span, counter and histogram.
pub fn reset() {
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    *reg = Registry::default();
}

/// One completed span: a named scope with wall-clock timing and its
/// position in the span tree.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Unique id (process-wide, monotonically assigned at entry).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// The span's name (e.g. `compile`, `mine`).
    pub name: String,
    /// Small per-process index of the recording thread.
    pub thread: u64,
    /// Entry time, nanoseconds since the process's telemetry epoch.
    pub start_ns: u64,
    /// Wall time between entry and exit, nanoseconds.
    pub duration_ns: u64,
}

/// Aggregate of the values fed to [`observe`] under one name.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Histogram {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

#[derive(Default)]
struct Registry {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// An immutable copy of everything recorded so far. Spans appear in
/// completion order (children before their parents).
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Completed spans.
    pub spans: Vec<SpanRecord>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Copies the current telemetry state out of the global registry.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().expect("telemetry registry poisoned");
    Snapshot {
        spans: reg.spans.clone(),
        counters: reg.counters.clone(),
        histograms: reg.histograms.clone(),
    }
}

/// RAII guard returned by [`span`]; records the span when dropped.
#[must_use = "a span measures the scope it lives in — bind it to a variable"]
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Instant,
}

/// Opens a named span. The returned guard records wall time from this
/// call until it is dropped; spans opened while another guard is live on
/// the same thread become its children. No-op (and allocation-free) when
/// collection is disabled.
pub fn span(name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    let _ = epoch(); // pin the epoch no later than the first span's start
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    SpanGuard {
        live: Some(LiveSpan {
            id,
            parent,
            name: name.into(),
            start: Instant::now(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let duration_ns = live.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let start_ns = live
            .start
            .duration_since(epoch())
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards normally drop in LIFO order; tolerate manual
            // out-of-order drops by removing this id wherever it is.
            if let Some(pos) = stack.iter().rposition(|&s| s == live.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            id: live.id,
            parent: live.parent,
            name: live.name,
            thread: thread_index(),
            start_ns,
            duration_ns,
        };
        let mut reg = registry().lock().expect("telemetry registry poisoned");
        reg.spans.push(record);
    }
}

/// Adds `delta` to the named counter. No-op when collection is disabled.
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    *reg.counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Records one value into the named histogram. No-op when disabled.
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    reg.histograms
        .entry(name.to_string())
        .or_default()
        .record(value);
}

/// Writes the current snapshot as JSONL to the path named by
/// `PAQOC_TRACE`, if it names one. Returns the path written.
pub fn write_env_trace() -> std::io::Result<Option<std::path::PathBuf>> {
    let Some(path) = env_trace_path() else {
        return Ok(None);
    };
    std::fs::write(&path, snapshot().to_jsonl())?;
    Ok(Some(path))
}

/// Opens a span; sugar for [`span`]. `span!("mine")` must be bound
/// (`let _s = span!("mine");`) to measure the enclosing scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Adds to a counter; sugar for [`counter`]. Defaults to a delta of 1.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter($name, 1)
    };
    ($name:expr, $delta:expr) => {
        $crate::counter($name, $delta)
    };
}
