//! # paqoc-telemetry
//!
//! Hand-rolled, zero-dependency tracing and metrics for the PAQOC
//! compilation stack. The paper's evaluation is a compilation-cost /
//! latency trade-off (Figs. 10–14); this crate makes that cost visible:
//!
//! * **Spans** — RAII scoped timers ([`span`]) that nest (`compile` >
//!   `mine` > …) and record wall time into a global thread-safe registry;
//! * **Counters and histograms** — [`counter`] / [`observe`] for the
//!   quantities the paper reasons about (merge candidates pruned, pulse
//!   table hits, GRAPE iterations, SABRE swaps, …); histograms carry a
//!   fixed-size log-bucket sketch, so [`Histogram::quantile`] answers
//!   p50/p90/p99 without storing samples;
//! * **Gauges** — [`set_gauge`] / [`add_gauge`] for instantaneous
//!   levels (queue depth, live workers, RSS); last-write-wins, sampled
//!   periodically by the executor's flight recorder and rendered as
//!   Perfetto counter timelines;
//! * **Process resources** — a zero-dependency `/proc` reader
//!   ([`resources::sample`]) exposing CPU time and RSS on Linux,
//!   gracefully `None` elsewhere;
//! * **Events** — a structured decision journal ([`event`]): named
//!   records with typed fields ([`FieldValue`]), stamped with time,
//!   thread and enclosing span, ring-buffered so unbounded workloads
//!   keep the newest [`EVENT_CAPACITY`] records;
//! * **Exports** — a JSONL trace ([`Snapshot::to_jsonl`], hand-rolled
//!   JSON, parseable back with [`json::parse`]), a Chrome-trace /
//!   Perfetto JSON ([`Snapshot::to_chrome_trace`], open it in
//!   `chrome://tracing` or <https://ui.perfetto.dev>) and a
//!   human-readable span-tree + counter-table report
//!   ([`Snapshot::render_report`]).
//!
//! Collection is off by default and costs a single relaxed atomic load
//! per instrumentation site when disabled. It is switched on
//! programmatically ([`set_enabled`]) or by setting the `PAQOC_TRACE`
//! environment variable (any value but `0`/`false`/empty; a value with a
//! path shape additionally names a dump file for [`write_env_trace`] —
//! `.jsonl` gets the JSONL trace, `.json` the Chrome-trace export).
//!
//! ## Example
//!
//! ```
//! paqoc_telemetry::set_enabled(true);
//! paqoc_telemetry::reset();
//! {
//!     let _outer = paqoc_telemetry::span("compile");
//!     let _inner = paqoc_telemetry::span("mine");
//!     paqoc_telemetry::counter("miner.patterns_found", 3);
//! }
//! let snap = paqoc_telemetry::snapshot();
//! assert_eq!(snap.counters["miner.patterns_found"], 3);
//! assert_eq!(snap.spans.len(), 2);
//! paqoc_telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod flame;
pub mod json;
mod kernel;
mod report;
pub mod resources;

pub use kernel::{
    kernel_alloc, kernel_enter, kernel_flush, kernel_probes_enabled, kernel_thread_totals,
    set_kernel_probes, KernelDimStats, KernelProbe, KernelSite, KernelStats, KERNEL_PROBES_ENV_VAR,
};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The environment variable that switches tracing on.
pub const ENV_VAR: &str = "PAQOC_TRACE";

/// Journal-event name reserved for flight-recorder metric samples.
/// Events with this name carry one numeric field per sampled quantity
/// (process CPU/RSS plus every live gauge); the Chrome-trace exporter
/// renders each field as a counter-timeline series (`"ph":"C"`) instead
/// of an instant event, so Perfetto draws metric graphs alongside the
/// span slices.
pub const METRICS_SAMPLE_EVENT: &str = "metrics.sample";

// Tri-state so the env var is consulted exactly once, lazily, and the
// steady-state check stays a single relaxed atomic load.
const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);
// Bumped by `reset()`: per-thread span stacks compare their cached
// generation against this and self-clear when stale, so a reset wipes
// parent links on *every* thread without touching foreign thread-locals.
static RESET_GENERATION: AtomicU64 = AtomicU64::new(0);

/// Ring-buffer capacity of the event journal. When a run records more
/// events than this, the oldest are dropped (counted in
/// [`Snapshot::events_dropped`]).
pub const EVENT_CAPACITY: usize = 65_536;

/// Version of the exported trace formats (JSONL `trace_meta` line,
/// Chrome-trace `paqocTraceSchema` key). Readers must reject traces
/// stamped with a *newer* version instead of silently skipping the
/// lines they do not understand; unknown line types within the same
/// version remain skippable (additions bump the version).
pub const TRACE_SCHEMA: u64 = 1;

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Gauges live outside the main registry behind their own lock: they
/// are sampled by the flight-recorder thread at a fixed cadence, and a
/// separate stripe keeps that sampling from contending with span/event
/// recording on the hot compile path.
fn gauge_map() -> &'static Mutex<BTreeMap<String, f64>> {
    static GAUGES: OnceLock<Mutex<BTreeMap<String, f64>>> = OnceLock::new();
    GAUGES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Per-thread span stack, tagged with the reset generation it belongs
/// to. Accessors call [`SpanStack::sync`] first, which clears the stack
/// when a [`reset`] happened since the thread last touched it — a scope
/// that unwound across a reset can therefore never leave a stale parent
/// id behind.
#[derive(Default)]
struct SpanStack {
    generation: u64,
    ids: Vec<u64>,
}

impl SpanStack {
    fn sync(&mut self) {
        let generation = RESET_GENERATION.load(Ordering::Relaxed);
        if self.generation != generation {
            self.generation = generation;
            self.ids.clear();
        }
    }
}

thread_local! {
    static SPAN_STACK: RefCell<SpanStack> = RefCell::new(SpanStack::default());
    static THREAD_INDEX: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// Id of the innermost live span on this thread, if any.
fn current_span_id() -> Option<u64> {
    SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.sync();
        stack.ids.last().copied()
    })
}

fn thread_index() -> u64 {
    THREAD_INDEX.with(|slot| match slot.get() {
        Some(i) => i,
        None => {
            let i = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            slot.set(Some(i));
            i
        }
    })
}

/// `true` when collection is on. Cost when off: one relaxed atomic load
/// (after the first call, which consults `PAQOC_TRACE` once).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = env_value().is_some();
    // A concurrent set_enabled wins: only replace the uninit state.
    let target = if on { STATE_ON } else { STATE_OFF };
    let _ = STATE.compare_exchange(STATE_UNINIT, target, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// The truthy value of `PAQOC_TRACE`, if any.
fn env_value() -> Option<String> {
    match std::env::var(ENV_VAR) {
        Ok(v) if !v.is_empty() && v != "0" && v.to_lowercase() != "false" => Some(v),
        _ => None,
    }
}

/// The JSONL dump path named by `PAQOC_TRACE`, when its value looks like
/// a file path (`trace.jsonl`, `/tmp/run1.jsonl`, …) rather than a bare
/// boolean flag.
pub fn env_trace_path() -> Option<std::path::PathBuf> {
    let v = env_value()?;
    if v.contains('/') || v.ends_with(".jsonl") || v.ends_with(".json") {
        Some(std::path::PathBuf::from(v))
    } else {
        None
    }
}

/// Turns collection on or off programmatically (overrides `PAQOC_TRACE`).
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Discards every recorded span, counter, histogram, gauge and event,
/// and invalidates every thread's span stack (each stack self-clears on
/// its next use, so parent ids from before the reset cannot leak into
/// spans recorded after it).
pub fn reset() {
    RESET_GENERATION.fetch_add(1, Ordering::Relaxed);
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    *reg = Registry::default();
    drop(reg);
    // Gauges live outside the registry (see `gauge_map`), so they need
    // their own wipe — a stale `exec.jobs_pending` surviving a reset
    // would corrupt every later flight-recorder sample.
    gauge_map()
        .lock()
        .expect("telemetry gauge map poisoned")
        .clear();
    // Kernel-probe state also lives outside the registry (thread-local
    // tables + a dedicated store stripe): wipe the store, and let each
    // thread's table self-clear against the bumped generation.
    kernel::clear_store();
}

/// One completed span: a named scope with wall-clock timing and its
/// position in the span tree.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Unique id (process-wide, monotonically assigned at entry).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// The span's name (e.g. `compile`, `mine`).
    pub name: String,
    /// Small per-process index of the recording thread.
    pub thread: u64,
    /// Entry time, nanoseconds since the process's telemetry epoch.
    pub start_ns: u64,
    /// Wall time between entry and exit, nanoseconds.
    pub duration_ns: u64,
}

/// Log-bucket sketch geometry: buckets cover magnitudes from
/// [`SKETCH_MIN`] upward, 4 per doubling (relative quantile error
/// ≤ ~9%), in two mirrored arrays for positive and negative values plus
/// a near-zero bucket. 256 buckets × 4/doubling spans 64 doublings:
/// 2⁻²⁰ ≈ 9.5e-7 up to 2⁴⁴ ≈ 1.8e13, wide enough for nanosecond
/// latencies, iteration counts and cost units alike; magnitudes beyond
/// either end clamp into the boundary buckets (exact extremes are still
/// reported through `min`/`max`).
const SKETCH_BUCKETS: usize = 256;
const SKETCH_PER_DOUBLING: f64 = 4.0;
const SKETCH_MIN: f64 = 1.0 / (1u64 << 20) as f64;

fn sketch_index(magnitude: f64) -> usize {
    let idx = (magnitude / SKETCH_MIN).log2() * SKETCH_PER_DOUBLING;
    if idx < 0.0 {
        0
    } else {
        (idx as usize).min(SKETCH_BUCKETS - 1)
    }
}

/// Geometric midpoint of sketch bucket `i` (a magnitude).
fn sketch_value(i: usize) -> f64 {
    SKETCH_MIN * ((i as f64 + 0.5) / SKETCH_PER_DOUBLING).exp2()
}

/// Aggregate of the values fed to [`observe`] under one name: exact
/// count/sum/min/max plus a fixed-size log-bucket sketch answering
/// percentile queries ([`Histogram::quantile`]) without storing samples.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Observations with `|v| < SKETCH_MIN` (including exact zeros).
    zero: u64,
    /// Log-bucket counts of negative observations, by magnitude.
    neg: Box<[u32; SKETCH_BUCKETS]>,
    /// Log-bucket counts of positive observations, by magnitude.
    pos: Box<[u32; SKETCH_BUCKETS]>,
}

impl Histogram {
    /// Records one observation. This is what [`observe`] calls on the
    /// global store; it is public so callers holding their own
    /// `Histogram` (per-thread latency sketches in the load generator)
    /// can feed it directly and [`Histogram::merge`] the results.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v.abs() < SKETCH_MIN || !v.is_finite() {
            self.zero += 1;
        } else {
            let buckets = if v < 0.0 {
                &mut self.neg
            } else {
                &mut self.pos
            };
            let i = sketch_index(v.abs());
            buckets[i] = buckets[i].saturating_add(1);
        }
    }

    /// Folds another histogram into this one: counts, sums and sketch
    /// buckets add; min/max widen. Used to merge per-thread kernel
    /// latency sketches into the global store.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.zero += other.zero;
        for i in 0..SKETCH_BUCKETS {
            self.neg[i] = self.neg[i].saturating_add(other.neg[i]);
            self.pos[i] = self.pos[i].saturating_add(other.pos[i]);
        }
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) from the log-bucket sketch:
    /// exact rank selection over buckets, bucket midpoint as the value,
    /// with relative error bounded by the bucket width (≤ ~9%). Returns
    /// 0 when empty; the result is clamped into `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        // Ascending value order: most-negative magnitude first.
        for i in (0..SKETCH_BUCKETS).rev() {
            seen += u64::from(self.neg[i]);
            if seen > rank {
                return (-sketch_value(i)).clamp(self.min, self.max);
            }
        }
        seen += self.zero;
        if seen > rank {
            return 0.0f64.clamp(self.min, self.max);
        }
        for i in 0..SKETCH_BUCKETS {
            seen += u64::from(self.pos[i]);
            if seen > rank {
                return sketch_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile (see [`Histogram::quantile`]).
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile (see [`Histogram::quantile`]).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            zero: 0,
            neg: Box::new([0; SKETCH_BUCKETS]),
            pos: Box::new([0; SKETCH_BUCKETS]),
        }
    }
}

/// A typed value attached to an [`event`] field.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One journal entry: a named decision record with typed fields,
/// stamped with time, thread and the enclosing span.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Process-wide sequence number (monotonic within a reset epoch).
    pub seq: u64,
    /// Nanoseconds since the telemetry epoch.
    pub ts_ns: u64,
    /// Small per-process index of the recording thread.
    pub thread: u64,
    /// Id of the innermost live span on the recording thread, if any.
    pub span: Option<u64>,
    /// Event name (dotted taxonomy, e.g. `search.merge_commit`).
    pub name: String,
    /// Typed payload, in call order.
    pub fields: Vec<(String, FieldValue)>,
}

#[derive(Default)]
struct Registry {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    events: std::collections::VecDeque<EventRecord>,
    events_dropped: u64,
    next_event_seq: u64,
}

/// An immutable copy of everything recorded so far. Spans appear in
/// completion order (children before their parents); events in record
/// order.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Completed spans.
    pub spans: Vec<SpanRecord>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name (instantaneous values at snapshot time).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// The event journal, oldest retained record first.
    pub events: Vec<EventRecord>,
    /// Events evicted from the ring buffer ([`EVENT_CAPACITY`]).
    pub events_dropped: u64,
    /// Kernel-probe call sites (span × parent kernel × kernel × dim),
    /// deterministically sorted.
    pub kernel_sites: Vec<KernelSite>,
    /// Per-kernel aggregates (calls, ns, self-time, allocation
    /// counters, per-dimension breakdowns) by kernel name.
    pub kernels: BTreeMap<String, KernelStats>,
}

/// Copies the current telemetry state out of the global registry.
/// Flushes the calling thread's kernel-probe table first; foreign
/// threads flush theirs at exit (worker pools) or via [`kernel_flush`].
pub fn snapshot() -> Snapshot {
    kernel_flush();
    let (kernel_sites, kernels) = kernel::snapshot_kernels();
    let reg = registry().lock().expect("telemetry registry poisoned");
    Snapshot {
        spans: reg.spans.clone(),
        counters: reg.counters.clone(),
        gauges: gauges(),
        histograms: reg.histograms.clone(),
        events: reg.events.iter().cloned().collect(),
        events_dropped: reg.events_dropped,
        kernel_sites,
        kernels,
    }
}

/// RAII guard returned by [`span`]; records the span when dropped.
#[must_use = "a span measures the scope it lives in — bind it to a variable"]
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Instant,
}

/// Opens a named span. The returned guard records wall time from this
/// call until it is dropped; spans opened while another guard is live on
/// the same thread become its children. No-op (and allocation-free) when
/// collection is disabled.
pub fn span(name: impl Into<String>) -> SpanGuard {
    open_span(name, None)
}

/// Opens a named span whose parent is set *explicitly* instead of being
/// taken from this thread's span stack. This is the cross-thread linkage
/// primitive: a worker thread opens its root span with the id of the
/// submitting thread's batch span ([`SpanGuard::id`]), so the merged
/// journal keeps one connected span tree across the whole worker pool.
/// Spans opened on the worker thread while this guard is live nest under
/// it normally. With `parent = None` this is exactly [`span`].
pub fn span_with_parent(name: impl Into<String>, parent: Option<u64>) -> SpanGuard {
    open_span(name, parent)
}

fn open_span(name: impl Into<String>, explicit_parent: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    let _ = epoch(); // pin the epoch no later than the first span's start
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.sync();
        let parent = explicit_parent.or_else(|| stack.ids.last().copied());
        stack.ids.push(id);
        parent
    });
    SpanGuard {
        live: Some(LiveSpan {
            id,
            parent,
            name: name.into(),
            start: Instant::now(),
        }),
    }
}

impl SpanGuard {
    /// Id of this span, for linking child spans opened on *other*
    /// threads via [`span_with_parent`]. `None` when collection was
    /// disabled at open time (the guard records nothing).
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let duration_ns = live.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let start_ns = live
            .start
            .duration_since(epoch())
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        // If a `reset()` happened while this guard was live, its stack
        // entry is already gone (generation bump) and the span belongs
        // to the wiped epoch: clean up and record nothing.
        let stale = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.sync();
            // Guards normally drop in LIFO order; tolerate manual
            // out-of-order drops by removing this id wherever it is.
            match stack.ids.iter().rposition(|&s| s == live.id) {
                Some(pos) => {
                    stack.ids.remove(pos);
                    false
                }
                None => true,
            }
        });
        if stale {
            return;
        }
        let record = SpanRecord {
            id: live.id,
            parent: live.parent,
            name: live.name,
            thread: thread_index(),
            start_ns,
            duration_ns,
        };
        let mut reg = registry().lock().expect("telemetry registry poisoned");
        reg.spans.push(record);
    }
}

/// Adds `delta` to the named counter. No-op when collection is disabled.
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    *reg.counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Records one value into the named histogram. No-op when disabled.
pub fn observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    reg.histograms
        .entry(name.to_string())
        .or_default()
        .record(value);
}

/// Sets the named gauge to `value`. Gauges are *last-write-wins*
/// instantaneous levels (queue depth, live workers, RSS) — the
/// complement to monotone [`counter`]s — sampled periodically by the
/// flight recorder and exported as Chrome-trace counter timelines.
/// No-op when collection is disabled.
pub fn set_gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut map = gauge_map().lock().expect("telemetry gauge map poisoned");
    map.insert(name.to_string(), value);
}

/// Adds `delta` (possibly negative) to the named gauge, creating it at
/// zero first, and returns the new level. No-op (returning 0) when
/// collection is disabled.
pub fn add_gauge(name: &str, delta: f64) -> f64 {
    if !enabled() {
        return 0.0;
    }
    let mut map = gauge_map().lock().expect("telemetry gauge map poisoned");
    let slot = map.entry(name.to_string()).or_insert(0.0);
    *slot += delta;
    *slot
}

/// Current level of the named gauge, if it has ever been set.
pub fn gauge(name: &str) -> Option<f64> {
    gauge_map()
        .lock()
        .expect("telemetry gauge map poisoned")
        .get(name)
        .copied()
}

/// A copy of every gauge's current level — what the flight recorder
/// folds into each `metrics.sample` journal event.
pub fn gauges() -> BTreeMap<String, f64> {
    gauge_map()
        .lock()
        .expect("telemetry gauge map poisoned")
        .clone()
}

/// Records one journal event with typed fields. No-op (one relaxed
/// atomic load, no allocation beyond what the caller already built)
/// when collection is disabled — hot paths with expensive field values
/// should gate on [`enabled`] before building them.
///
/// The record is stamped with the current time, thread index and
/// innermost live span, and pushed into a ring buffer of
/// [`EVENT_CAPACITY`] records (oldest evicted first, eviction counted).
///
/// ```
/// use paqoc_telemetry::FieldValue;
/// paqoc_telemetry::set_enabled(true);
/// paqoc_telemetry::reset();
/// paqoc_telemetry::event(
///     "search.merge_commit",
///     &[("gates", FieldValue::U64(3)), ("gain_ns", FieldValue::F64(12.5))],
/// );
/// let snap = paqoc_telemetry::snapshot();
/// assert_eq!(snap.events[0].name, "search.merge_commit");
/// paqoc_telemetry::set_enabled(false);
/// ```
pub fn event(name: &str, fields: &[(&str, FieldValue)]) {
    if !enabled() {
        return;
    }
    let _ = epoch();
    let ts_ns = epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let record_span = current_span_id();
    let thread = thread_index();
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    let seq = reg.next_event_seq;
    reg.next_event_seq += 1;
    if reg.events.len() >= EVENT_CAPACITY {
        reg.events.pop_front();
        reg.events_dropped += 1;
    }
    reg.events.push_back(EventRecord {
        seq,
        ts_ns,
        thread,
        span: record_span,
        name: name.to_string(),
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    });
}

/// Writes the current snapshot to the path named by `PAQOC_TRACE`, if
/// it names one, and returns that path. A `.json` path gets the
/// Chrome-trace export ([`Snapshot::to_chrome_trace`], loadable in
/// `chrome://tracing` / Perfetto); anything else gets the JSONL trace.
pub fn write_env_trace() -> std::io::Result<Option<std::path::PathBuf>> {
    let Some(path) = env_trace_path() else {
        return Ok(None);
    };
    let snap = snapshot();
    let body = if path.extension().is_some_and(|e| e == "json") {
        snap.to_chrome_trace()
    } else {
        snap.to_jsonl()
    };
    std::fs::write(&path, body)?;
    Ok(Some(path))
}

/// Opens a span; sugar for [`span`]. `span!("mine")` must be bound
/// (`let _s = span!("mine");`) to measure the enclosing scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Records a journal event; sugar for [`event`].
/// `event!("name", key = value, …)` converts each value with
/// [`FieldValue::from`] — and only builds the field slice when
/// collection is enabled, so string/format values cost nothing on the
/// disabled path beyond the one relaxed atomic load.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::event(
                $name,
                &[$((stringify!($key), $crate::FieldValue::from($value))),*],
            );
        }
    };
}

/// Sets a gauge level; sugar for [`set_gauge`].
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        $crate::set_gauge($name, $value)
    };
}

/// Adds to a counter; sugar for [`counter`]. Defaults to a delta of 1.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter($name, 1)
    };
    ($name:expr, $delta:expr) => {
        $crate::counter($name, $delta)
    };
}
