//! Minimal hand-rolled JSON: string escaping for the JSONL exporter and
//! a small recursive-descent parser for round-trip checks and offline
//! trace tooling. Covers the JSON subset the exporter emits (objects,
//! arrays, strings, finite numbers, booleans, null) — not a general
//! standards-lab validator.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is not preserved.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes this value as a compact JSON document. The inverse of
    /// [`parse`] for everything the exporter emits: integers up to 2⁵³
    /// print without a fraction, other finite numbers use Rust's
    /// shortest round-trip `f64` formatting, and non-finite numbers
    /// (which JSON cannot represent) serialize as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Appends this value to `out` as compact JSON (see
    /// [`Value::to_json`]).
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a finite number compactly: integer-valued `f64`s within the
/// exact range print without a fraction; non-finite values become
/// `null`.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; rejects trailing non-whitespace.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, message: &'static str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self
                .literal("true", "expected 'true'")
                .map(|_| Value::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected 'false'")
                .map(|_| Value::Bool(false)),
            Some(b'n') => self.literal("null", "expected 'null'").map(|_| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs are not emitted by the
                            // exporter; accept lone BMP scalars only.
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // slice is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\r\u{1}é∎";
        let lit = escape(nasty);
        assert_eq!(parse(&lit), Ok(Value::Str(nasty.to_string())));
    }

    #[test]
    fn parses_the_exporter_shapes() {
        let line = r#"{"type":"span","id":3,"parent":null,"name":"mine","dur":1.5e3,"ok":true,"tags":[1,2]}"#;
        let v = parse(line).expect("parses");
        assert_eq!(v.get("type").and_then(Value::as_str), Some("span"));
        assert_eq!(v.get("id").and_then(Value::as_num), Some(3.0));
        assert_eq!(v.get("parent"), Some(&Value::Null));
        assert_eq!(v.get("dur").and_then(Value::as_num), Some(1500.0));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(
            v.get("tags"),
            Some(&Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)]))
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "\"abc", "12x", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn negative_and_fractional_numbers() {
        assert_eq!(parse("-2.5"), Ok(Value::Num(-2.5)));
        assert_eq!(parse("0.125"), Ok(Value::Num(0.125)));
    }

    #[test]
    fn to_json_round_trips_through_parse() {
        let mut obj = BTreeMap::new();
        obj.insert(
            "name".to_string(),
            Value::Str("a\"b\\c\nd\u{1}é".to_string()),
        );
        obj.insert("count".to_string(), Value::Num(42.0));
        obj.insert("frac".to_string(), Value::Num(-2.5));
        obj.insert("ok".to_string(), Value::Bool(true));
        obj.insert("none".to_string(), Value::Null);
        obj.insert(
            "arr".to_string(),
            Value::Arr(vec![Value::Num(1.0), Value::Str("x".to_string())]),
        );
        let v = Value::Obj(obj);
        assert_eq!(parse(&v.to_json()), Ok(v));
    }

    #[test]
    fn to_json_prints_integers_without_fractions() {
        assert_eq!(Value::Num(42.0).to_json(), "42");
        assert_eq!(Value::Num(-7.0).to_json(), "-7");
        assert_eq!(Value::Num(0.5).to_json(), "0.5");
    }

    #[test]
    fn to_json_maps_non_finite_numbers_to_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse(r#"{"a":{"b":[{"c":"d"}]}}"#).expect("parses");
        let inner = v.get("a").and_then(|a| a.get("b")).expect("b");
        match inner {
            Value::Arr(items) => {
                assert_eq!(items[0].get("c").and_then(Value::as_str), Some("d"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
}
