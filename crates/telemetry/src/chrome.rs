//! Chrome-trace / Perfetto export: serializes a [`Snapshot`] into the
//! Trace Event Format (JSON object with a `traceEvents` array) that
//! `chrome://tracing` and <https://ui.perfetto.dev> load directly.
//!
//! Mapping: every span becomes a complete event (`ph:"X"`) on its
//! thread's track, every journal event an instant event (`ph:"i"`,
//! thread scope) with its typed fields as `args`, and every counter and
//! gauge a final counter sample (`ph:"C"`). Flight-recorder samples —
//! journal events named [`METRICS_SAMPLE_EVENT`] — are special-cased:
//! each numeric field becomes its own timestamped counter event, so
//! Perfetto renders live metric timelines (queue depth, RSS, CPU ms)
//! alongside the span slices instead of a wall of instant arrows.
//! Timestamps are microseconds since the telemetry epoch, and the
//! emitted array is sorted by timestamp so the file is monotonic — some
//! viewers reject out-of-order traces.

use crate::json::write_escaped;
use crate::{FieldValue, Snapshot, METRICS_SAMPLE_EVENT, TRACE_SCHEMA};
use std::fmt::Write as _;

/// One pre-rendered trace event, keyed for the monotonic sort.
struct TraceEvent {
    ts_ns: u64,
    body: String,
}

fn write_ts(out: &mut String, ts_ns: u64) {
    // Microseconds with nanosecond precision kept as fractional digits.
    let _ = write!(out, "{}.{:03}", ts_ns / 1_000, ts_ns % 1_000);
}

fn write_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        FieldValue::Str(s) => write_escaped(out, s),
    }
}

impl Snapshot {
    /// Serializes the snapshot as Chrome-trace JSON. The returned
    /// document is a single JSON object; write it to a `.json` file and
    /// open it in `chrome://tracing` or Perfetto. Every string is
    /// escaped through the same writer as the JSONL export, and events
    /// appear in non-decreasing timestamp order.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<TraceEvent> = Vec::with_capacity(
            self.spans.len() + self.events.len() + self.counters.len() + self.gauges.len(),
        );
        for s in &self.spans {
            let mut body = String::new();
            body.push_str("{\"ph\":\"X\",\"pid\":0,\"tid\":");
            let _ = write!(body, "{}", s.thread);
            body.push_str(",\"ts\":");
            write_ts(&mut body, s.start_ns);
            body.push_str(",\"dur\":");
            write_ts(&mut body, s.duration_ns);
            body.push_str(",\"cat\":\"span\",\"name\":");
            write_escaped(&mut body, &s.name);
            body.push_str(",\"args\":{\"id\":");
            let _ = write!(body, "{}", s.id);
            body.push_str(",\"parent\":");
            match s.parent {
                Some(p) => {
                    let _ = write!(body, "{p}");
                }
                None => body.push_str("null"),
            }
            body.push_str("}}");
            events.push(TraceEvent {
                ts_ns: s.start_ns,
                body,
            });
        }
        for e in &self.events {
            // Flight-recorder samples become counter timelines: one
            // counter event per numeric field, named by the field, so
            // each metric draws as its own graph track.
            if e.name == METRICS_SAMPLE_EVENT {
                for (k, v) in &e.fields {
                    let value = match v {
                        FieldValue::U64(n) => *n as f64,
                        FieldValue::I64(n) => *n as f64,
                        FieldValue::F64(x) if x.is_finite() => *x,
                        _ => continue,
                    };
                    let mut body = String::new();
                    body.push_str("{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":");
                    write_ts(&mut body, e.ts_ns);
                    body.push_str(",\"cat\":\"metric\",\"name\":");
                    write_escaped(&mut body, k);
                    body.push_str(",\"args\":{\"value\":");
                    let _ = write!(body, "{value}");
                    body.push_str("}}");
                    events.push(TraceEvent {
                        ts_ns: e.ts_ns,
                        body,
                    });
                }
                continue;
            }
            let mut body = String::new();
            body.push_str("{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":");
            let _ = write!(body, "{}", e.thread);
            body.push_str(",\"ts\":");
            write_ts(&mut body, e.ts_ns);
            body.push_str(",\"cat\":\"event\",\"name\":");
            write_escaped(&mut body, &e.name);
            body.push_str(",\"args\":{\"seq\":");
            let _ = write!(body, "{}", e.seq);
            for (k, v) in &e.fields {
                body.push(',');
                write_escaped(&mut body, k);
                body.push(':');
                write_field_value(&mut body, v);
            }
            body.push_str("}}");
            events.push(TraceEvent {
                ts_ns: e.ts_ns,
                body,
            });
        }
        // Counter totals and gauge levels as one sample each, stamped
        // after everything else so they read as the run's final state.
        let last_ts = events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
        for (name, value) in &self.counters {
            let mut body = String::new();
            body.push_str("{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":");
            write_ts(&mut body, last_ts);
            body.push_str(",\"cat\":\"counter\",\"name\":");
            write_escaped(&mut body, name);
            body.push_str(",\"args\":{\"value\":");
            let _ = write!(body, "{value}");
            body.push_str("}}");
            events.push(TraceEvent {
                ts_ns: last_ts,
                body,
            });
        }
        for (name, value) in &self.gauges {
            if !value.is_finite() {
                continue;
            }
            let mut body = String::new();
            body.push_str("{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":");
            write_ts(&mut body, last_ts);
            body.push_str(",\"cat\":\"gauge\",\"name\":");
            write_escaped(&mut body, name);
            body.push_str(",\"args\":{\"value\":");
            let _ = write!(body, "{value}");
            body.push_str("}}");
            events.push(TraceEvent {
                ts_ns: last_ts,
                body,
            });
        }
        // Kernel-probe totals as a counter track: one final sample per
        // (kernel, dimension) plus an allocation sample per kernel. The
        // kernel name and dimension ride in args (not just the display
        // name), so readers recover them even for hostile names.
        for (name, k) in &self.kernels {
            for (dim, d) in &k.by_dim {
                let mut body = String::new();
                body.push_str("{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":");
                write_ts(&mut body, last_ts);
                body.push_str(",\"cat\":\"kernel\",\"name\":");
                write_escaped(&mut body, &format!("kernel.{name}.{dim}x{dim}"));
                body.push_str(",\"args\":{\"kernel\":");
                write_escaped(&mut body, name);
                let _ = write!(
                    body,
                    ",\"dim\":{dim},\"calls\":{},\"total_ns\":{},\"self_ns\":{}}}}}",
                    d.calls, d.total_ns, d.self_ns
                );
                events.push(TraceEvent {
                    ts_ns: last_ts,
                    body,
                });
            }
            if k.allocs > 0 {
                let mut body = String::new();
                body.push_str("{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":");
                write_ts(&mut body, last_ts);
                body.push_str(",\"cat\":\"kernel\",\"name\":");
                write_escaped(&mut body, &format!("kernel.{name}.alloc"));
                body.push_str(",\"args\":{\"kernel\":");
                write_escaped(&mut body, name);
                let _ = write!(
                    body,
                    ",\"allocs\":{},\"alloc_bytes\":{}}}}}",
                    k.allocs, k.alloc_bytes
                );
                events.push(TraceEvent {
                    ts_ns: last_ts,
                    body,
                });
            }
        }
        events.sort_by_key(|e| e.ts_ns);

        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"displayTimeUnit\":\"ns\",\"paqocTraceSchema\":{TRACE_SCHEMA},\"traceEvents\":["
        );
        // Thread-name metadata first (ph:"M" carries no timestamp
        // semantics, so it does not break monotonicity).
        let mut threads: Vec<u64> = self
            .spans
            .iter()
            .map(|s| s.thread)
            .chain(self.events.iter().map(|e| e.thread))
            .collect();
        threads.sort_unstable();
        threads.dedup();
        let mut first = true;
        for t in threads {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{t},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"paqoc-{t}\"}}}}"
            );
        }
        for e in &events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&e.body);
        }
        out.push_str("]}");
        out
    }
}
