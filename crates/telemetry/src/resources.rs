//! Zero-dependency process-resource reader.
//!
//! [`sample`] reads `/proc/self/stat` and `/proc/self/statm` — plain
//! text files the Linux kernel keeps per process — and returns CPU time
//! and memory levels without linking libc or any crate. On platforms
//! without procfs (macOS, Windows, BSDs) the reads fail and `sample`
//! returns `None`; callers degrade gracefully by omitting the resource
//! fields from their metric samples.
//!
//! Two kernel constants are assumed rather than queried (querying needs
//! `sysconf`, i.e. libc): `USER_HZ = 100` clock ticks per second for
//! the `utime`/`stime` fields, and a 4 KiB page size for the RSS page
//! counts. Both hold on every mainstream Linux configuration; the raw
//! tick counts are exposed too ([`ProcResources::cpu_user_ticks`]) so
//! downstream tooling on an exotic kernel can re-derive milliseconds.

/// Assumed `USER_HZ` (kernel clock ticks per second) for tick→ms
/// conversion. Linux has reported 100 to userspace since 2.6 regardless
/// of the scheduler's internal HZ.
pub const ASSUMED_CLK_TCK: u64 = 100;

/// Assumed page size in bytes for RSS page counts.
pub const ASSUMED_PAGE_SIZE: u64 = 4096;

/// One point-in-time reading of this process's resource usage.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProcResources {
    /// User-mode CPU time, milliseconds (ticks × 1000 / [`ASSUMED_CLK_TCK`]).
    pub cpu_user_ms: u64,
    /// Kernel-mode CPU time, milliseconds.
    pub cpu_sys_ms: u64,
    /// Raw user-mode tick count from `/proc/self/stat` field 14.
    pub cpu_user_ticks: u64,
    /// Raw kernel-mode tick count from `/proc/self/stat` field 15.
    pub cpu_sys_ticks: u64,
    /// Resident set size in bytes (statm `resident` × page size, with
    /// the stat `rss` field as fallback).
    pub rss_bytes: u64,
    /// Virtual memory size in bytes (`vsize`, already in bytes).
    pub vsize_bytes: u64,
    /// Kernel thread count of this process.
    pub threads: u64,
}

impl ProcResources {
    /// Total CPU time (user + system), milliseconds.
    pub fn cpu_total_ms(&self) -> u64 {
        self.cpu_user_ms + self.cpu_sys_ms
    }
}

/// Reads the current process's CPU and memory usage from procfs.
/// Returns `None` when `/proc/self/stat` is absent (non-Linux) or does
/// not parse; never panics and never blocks beyond the two file reads.
pub fn sample() -> Option<ProcResources> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let mut res = parse_stat(&stat)?;
    // statm's `resident` is the canonical RSS; stat's field 24 is a
    // fallback already folded in by parse_stat.
    if let Ok(statm) = std::fs::read_to_string("/proc/self/statm") {
        if let Some(resident_pages) = statm.split_whitespace().nth(1) {
            if let Ok(pages) = resident_pages.parse::<u64>() {
                res.rss_bytes = pages * ASSUMED_PAGE_SIZE;
            }
        }
    }
    Some(res)
}

/// Parses one `/proc/self/stat` line. The second field (`comm`) is the
/// executable name in parentheses and may itself contain spaces and
/// parentheses, so fields are counted from the *last* `)` — the kernel
/// guarantees everything after it is space-separated numbers/flags.
fn parse_stat(stat: &str) -> Option<ProcResources> {
    let after_comm = &stat[stat.rfind(')')? + 1..];
    // Token 0 after the comm is field 3 (`state`); field N overall is
    // token N - 3 here.
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let field = |n: usize| -> Option<u64> { fields.get(n - 3)?.parse::<u64>().ok() };
    let utime = field(14)?;
    let stime = field(15)?;
    let threads = field(20).unwrap_or(0);
    let vsize = field(23).unwrap_or(0);
    let rss_pages = field(24).unwrap_or(0);
    Some(ProcResources {
        cpu_user_ms: utime * 1000 / ASSUMED_CLK_TCK,
        cpu_sys_ms: stime * 1000 / ASSUMED_CLK_TCK,
        cpu_user_ticks: utime,
        cpu_sys_ticks: stime,
        rss_bytes: rss_pages * ASSUMED_PAGE_SIZE,
        vsize_bytes: vsize,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_canonical_stat_line() {
        // A comm with spaces and a nested ')' — the worst case the
        // last-paren scan must survive.
        let line = "1234 (my (weird) app) S 1 1234 1234 0 -1 4194304 500 0 0 0 \
                    250 75 0 0 20 0 9 0 12345 104857600 2048 18446744073709551615 \
                    0 0 0 0 0 0 0 0 0 0 0 0 17 3 0 0 0 0 0";
        let r = parse_stat(line).expect("parses");
        assert_eq!(r.cpu_user_ticks, 250);
        assert_eq!(r.cpu_sys_ticks, 75);
        assert_eq!(r.cpu_user_ms, 2500);
        assert_eq!(r.cpu_sys_ms, 750);
        assert_eq!(r.cpu_total_ms(), 3250);
        assert_eq!(r.threads, 9);
        assert_eq!(r.vsize_bytes, 104_857_600);
        assert_eq!(r.rss_bytes, 2048 * ASSUMED_PAGE_SIZE);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse_stat(""), None);
        assert_eq!(parse_stat("no parens here"), None);
        assert_eq!(parse_stat("1 (x) R"), None, "too few fields");
    }

    #[test]
    fn live_sample_is_plausible_on_linux() {
        let Some(r) = sample() else {
            // Non-Linux host: the graceful-None contract is the test.
            return;
        };
        assert!(r.rss_bytes > 0, "a running test has resident memory");
        assert!(r.threads >= 1);
        assert!(r.vsize_bytes >= r.rss_bytes);
    }
}
