//! Collapsed-stack flamegraph export: folds the span tree and the
//! kernel-probe attribution table into the `frame;frame;frame value`
//! text format that `inferno-flamegraph`, `flamegraph.pl` and
//! speedscope ("Brendan Gregg collapsed stacks") load directly.
//!
//! Each output line is one unique stack: span frames from root to leaf,
//! then kernel frames (`name(4x4)`) nested by their recorded parent
//! probe. Values are **self** microseconds — a span's own time minus
//! child spans and top-level kernel time under it, a kernel's time
//! minus nested kernel probes — so frame widths sum correctly instead
//! of double-counting inclusive time. `;` and whitespace are structural
//! in this format, so frames pass through [`sanitize_frame`]; identical
//! stacks collapse by summing, and lines are sorted for deterministic
//! output.

use crate::{Snapshot, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Replaces the characters that are structural in the collapsed-stack
/// format (`;`, whitespace) and control characters with `_`, so hostile
/// span/kernel names cannot forge extra frames or break the
/// one-stack-per-line invariant. Empty names become `_`.
pub(crate) fn sanitize_frame(name: &str) -> String {
    if name.is_empty() {
        return "_".to_string();
    }
    name.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

fn kernel_frame(name: &str, dim: u32) -> String {
    format!("{}({dim}x{dim})", sanitize_frame(name))
}

/// Resolves the span path (root-to-leaf frame list) for `id`, memoized.
fn span_path(
    id: u64,
    by_id: &BTreeMap<u64, &SpanRecord>,
    cache: &mut BTreeMap<u64, String>,
) -> String {
    if let Some(p) = cache.get(&id) {
        return p.clone();
    }
    let Some(span) = by_id.get(&id) else {
        return String::new();
    };
    // Walk up iteratively with a depth cap: parent links come from
    // runtime data, so a corrupt or cyclic chain must not recurse
    // forever.
    let mut chain: Vec<u64> = vec![id];
    let mut cursor = *span;
    while let Some(parent) = cursor.parent.and_then(|p| by_id.get(&p)) {
        if cache.contains_key(&parent.id) || chain.len() >= 64 || chain.contains(&parent.id) {
            break;
        }
        chain.push(parent.id);
        cursor = parent;
    }
    let mut path = match cursor.parent.and_then(|p| cache.get(&p)) {
        Some(prefix) => prefix.clone(),
        None => String::new(),
    };
    for &link in chain.iter().rev() {
        let frame = sanitize_frame(&by_id[&link].name);
        if !path.is_empty() {
            path.push(';');
        }
        path.push_str(&frame);
        cache.insert(link, path.clone());
    }
    path
}

/// Identifies a probe within a span: (span id, kernel name, dim).
/// Sites that differ only in their recorded parent collapse into one
/// ident — the heaviest parent wins for path reconstruction.
type SiteIdent = (Option<u64>, String, u32);

impl Snapshot {
    /// Serializes the span tree + kernel-probe table as collapsed
    /// stacks (one `frame;frame value` line per unique stack, values in
    /// self-microseconds). Feed the output to `inferno-flamegraph` /
    /// `flamegraph.pl`, or import it into <https://speedscope.app>.
    /// Stacks with zero accumulated self-time are omitted; lines are
    /// sorted, so equal snapshots render byte-identical files.
    pub fn to_collapsed_stacks(&self) -> String {
        let by_id: BTreeMap<u64, &SpanRecord> = self.spans.iter().map(|s| (s.id, s)).collect();
        // Child-span time per parent id, for span self-time.
        let mut child_span_ns: BTreeMap<u64, u64> = BTreeMap::new();
        for s in &self.spans {
            if let Some(p) = s.parent {
                if by_id.contains_key(&p) {
                    *child_span_ns.entry(p).or_insert(0) += s.duration_ns;
                }
            }
        }
        // Fold the site table: total per ident, top-level kernel time
        // per span (nested sites are already inside their parent's
        // total), nested time per parent ident, and each ident's
        // dominant parent.
        let mut ident_total: BTreeMap<SiteIdent, u64> = BTreeMap::new();
        let mut top_kernel_ns: BTreeMap<u64, u64> = BTreeMap::new();
        let mut nested_ns: BTreeMap<SiteIdent, u64> = BTreeMap::new();
        let mut heaviest: BTreeMap<SiteIdent, (u64, Option<SiteIdent>)> = BTreeMap::new();
        for site in &self.kernel_sites {
            let ident: SiteIdent = (site.span, site.name.clone(), site.dim);
            *ident_total.entry(ident.clone()).or_insert(0) += site.total_ns;
            let parent_ident: Option<SiteIdent> = site
                .parent
                .as_ref()
                .map(|(n, d)| (site.span, n.clone(), *d));
            match &parent_ident {
                None => {
                    if let Some(id) = site.span {
                        *top_kernel_ns.entry(id).or_insert(0) += site.total_ns;
                    }
                }
                Some(p) => {
                    *nested_ns.entry(p.clone()).or_insert(0) += site.total_ns;
                }
            }
            let slot = heaviest.entry(ident).or_insert((0, None));
            if site.total_ns >= slot.0 {
                *slot = (site.total_ns, parent_ident);
            }
        }
        let dominant_parent: BTreeMap<SiteIdent, Option<SiteIdent>> = heaviest
            .into_iter()
            .map(|(k, (_, parent))| (k, parent))
            .collect();

        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        let mut path_cache: BTreeMap<u64, String> = BTreeMap::new();
        for s in &self.spans {
            let children = child_span_ns.get(&s.id).copied().unwrap_or(0);
            let kernels = top_kernel_ns.get(&s.id).copied().unwrap_or(0);
            let self_ns = s
                .duration_ns
                .saturating_sub(children)
                .saturating_sub(kernels);
            if self_ns == 0 {
                continue;
            }
            let path = span_path(s.id, &by_id, &mut path_cache);
            *stacks.entry(path).or_insert(0) += self_ns;
        }
        for (ident, total) in &ident_total {
            let nested = nested_ns.get(ident).copied().unwrap_or(0);
            let self_ns = total.saturating_sub(nested);
            if self_ns == 0 {
                continue;
            }
            // Kernel frames, innermost-last, walking the dominant
            // parent chain (capped: the chain is runtime data).
            let mut frames: Vec<String> = vec![kernel_frame(&ident.1, ident.2)];
            let mut cursor = dominant_parent.get(ident).cloned().flatten();
            while let Some(key) = cursor {
                if frames.len() >= 16 {
                    break;
                }
                frames.push(kernel_frame(&key.1, key.2));
                cursor = dominant_parent.get(&key).cloned().flatten();
            }
            frames.reverse();
            let suffix = frames.join(";");
            let span_prefix = ident
                .0
                .filter(|id| by_id.contains_key(id))
                .map(|id| span_path(id, &by_id, &mut path_cache))
                .unwrap_or_default();
            let path = if span_prefix.is_empty() {
                suffix
            } else {
                format!("{span_prefix};{suffix}")
            };
            *stacks.entry(path).or_insert(0) += self_ns;
        }

        let mut out = String::new();
        for (path, ns) in &stacks {
            let us = ns / 1_000;
            if us == 0 || path.is_empty() {
                continue;
            }
            let _ = writeln!(out, "{path} {us}");
        }
        out
    }
}
