//! Deterministic overload and warm-restart tests (the acceptance
//! criterion of the serve subsystem): with queue capacity K and N ≫ K
//! concurrent requests, exactly the admitted requests complete and the
//! rest get typed `overloaded` responses — no hangs, no panics — and a
//! warm second run over the same corpus serves at least the cold run's
//! pulse-table hit rate via the persistent store.

use paqoc_device::FaultConfig;
use paqoc_exec::QueueConfig;
use paqoc_serve::{BindAddr, Client, Endpoint, Op, Request, Response, ServeOptions, Server};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paqoc-serve-overload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

/// A tiny per-request-unique circuit: the distinct rz angle gives every
/// request its own pulse keys, so the shared table cannot absorb the
/// load and the stall fault keeps each compile slow.
fn unique_qasm(i: usize) -> String {
    format!(
        "OPENQASM 2.0;\nqreg q[2];\nrz({}) q[0];\ncx q[0],q[1];\n",
        0.001 + i as f64 * 0.0137
    )
}

#[test]
fn overload_sheds_typed_and_accounts_exactly() {
    const N: usize = 32;
    let server = Server::start(ServeOptions {
        addr: BindAddr::Tcp("127.0.0.1:0".to_string()),
        workers: 1,
        queue: QueueConfig {
            per_tenant_cap: 4,
            total_cap: 4,
            max_tenants: 8,
        },
        // Every pulse generation stalls, so compiles are slow relative
        // to the admission burst and the queue genuinely fills.
        fault: Some(FaultConfig::stalling(Duration::from_millis(30))),
        ..ServeOptions::default()
    })
    .expect("server start");
    let endpoint = Endpoint::Tcp(server.local_addr().to_string());

    let outcomes: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let endpoint = endpoint.clone();
                scope.spawn(move || {
                    let mut client = Client::new(endpoint, Duration::from_secs(120));
                    let mut req = Request::compile(i as u64 + 1, "tenant-a", "unused");
                    req.benchmark = None;
                    req.qasm = Some(unique_qasm(i));
                    client.call(&req).expect("transport must not fail")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    let answered = outcomes
        .iter()
        .filter(|r| matches!(r, Response::Ok(_)))
        .count();
    let overloaded = outcomes
        .iter()
        .filter(|r| matches!(r, Response::Overloaded { .. }))
        .count();
    assert_eq!(
        answered + overloaded,
        N,
        "every request must get a compile result or a typed overloaded \
         response, got {outcomes:?}"
    );
    assert!(
        overloaded > 0,
        "with cap 4 and {N} concurrent requests some must be shed"
    );
    assert!(answered > 0, "admitted requests must complete");

    // The server's own accounting must match what clients observed.
    let stats = server.stats();
    assert_eq!(stats.accepted, answered as u64, "accepted == completed");
    assert_eq!(stats.completed, answered as u64);
    assert_eq!(stats.overloaded, overloaded as u64);
    assert_eq!(stats.shed, 0, "nothing expired or drained in this run");
    assert_eq!(stats.queue_depth, 0, "queue must be fully served");
    assert_eq!(stats.active, 0);

    let summary = server.drain();
    assert_eq!(summary.completed, answered as u64);
}

#[test]
fn per_tenant_cap_cannot_starve_other_tenants() {
    let server = Server::start(ServeOptions {
        addr: BindAddr::Tcp("127.0.0.1:0".to_string()),
        workers: 1,
        queue: QueueConfig {
            per_tenant_cap: 2,
            total_cap: 64,
            max_tenants: 8,
        },
        fault: Some(FaultConfig::stalling(Duration::from_millis(20))),
        ..ServeOptions::default()
    })
    .expect("server start");
    let endpoint = Endpoint::Tcp(server.local_addr().to_string());

    // Tenant "hog" floods; tenant "meek" sends one request. The hog's
    // surplus is rejected at ITS cap while the meek tenant is admitted.
    let outcomes: Vec<(String, Response)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..12usize {
            let endpoint = endpoint.clone();
            handles.push(scope.spawn(move || {
                let tenant = if i == 11 { "meek" } else { "hog" };
                let mut client = Client::new(endpoint, Duration::from_secs(60));
                let mut req = Request::compile(i as u64 + 1, tenant, "unused");
                req.benchmark = None;
                req.qasm = Some(unique_qasm(100 + i));
                (
                    tenant.to_string(),
                    client.call(&req).expect("transport must not fail"),
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    let meek_answered = outcomes
        .iter()
        .any(|(t, r)| t == "meek" && matches!(r, Response::Ok(_)));
    assert!(meek_answered, "the meek tenant must not be starved");
    let hog_overloaded = outcomes
        .iter()
        .filter(|(t, r)| t == "hog" && matches!(r, Response::Overloaded { .. }))
        .count();
    assert!(
        hog_overloaded > 0,
        "the hog must hit its per-tenant cap: {outcomes:?}"
    );
    server.drain();
}

#[test]
fn warm_restart_serves_store_hits() {
    let db = tmp("warm.pqps");
    let _ = std::fs::remove_file(&db);
    let _ = std::fs::remove_file(format!("{}.lock", db.display()));
    let corpus = ["mod5d2_64", "rd32_270", "bv"];

    // Cold run: everything is generated, nothing can come from a store.
    let cold = run_corpus(&db, &corpus);
    assert!(
        cold.iter().all(|r| r.store_hits == 0),
        "cold run cannot have store hits"
    );
    let cold_generated: u64 = cold.iter().map(|r| r.pulses_generated).sum();
    assert!(cold_generated > 0, "cold run must generate pulses");
    let cold_hits: u64 = cold.iter().map(|r| r.cache_hits).sum();
    let cold_rate = cold_hits as f64 / (cold_hits + cold_generated) as f64;

    // Warm run: a fresh server over the same store must serve the whole
    // corpus from persisted pulses.
    let warm = run_corpus(&db, &corpus);
    let warm_generated: u64 = warm.iter().map(|r| r.pulses_generated).sum();
    let warm_store_hits: u64 = warm.iter().map(|r| r.store_hits).sum();
    let warm_hits: u64 = warm.iter().map(|r| r.cache_hits).sum();
    let warm_rate = warm_hits as f64 / (warm_hits + warm_generated).max(1) as f64;
    assert_eq!(
        warm_generated, 0,
        "warm run must be fully served from the store"
    );
    assert!(warm_store_hits > 0, "warm hits must come from the store");
    assert!(
        warm_rate >= cold_rate,
        "warm hit rate {warm_rate:.3} must be at least cold {cold_rate:.3}"
    );
}

/// Starts a store-backed server, compiles `corpus` sequentially, drains
/// (syncing the table), and returns the per-request replies.
fn run_corpus(db: &Path, corpus: &[&str]) -> Vec<paqoc_serve::CompileReply> {
    let server = Server::start(ServeOptions {
        addr: BindAddr::Tcp("127.0.0.1:0".to_string()),
        workers: 2,
        pulse_db: Some(db.to_path_buf()),
        ..ServeOptions::default()
    })
    .expect("server start");
    assert_eq!(server.stats().store, "writer", "server must own the store");
    let endpoint = Endpoint::Tcp(server.local_addr().to_string());
    let mut client = Client::new(endpoint, Duration::from_secs(120));
    let mut replies = Vec::new();
    for (i, name) in corpus.iter().enumerate() {
        let req = Request::compile(i as u64 + 1, "default", name);
        match client.call(&req).expect("call") {
            Response::Ok(reply) => replies.push(reply),
            other => panic!("expected a compile result for {name}, got {other:?}"),
        }
    }
    // Ping exercises the inline control path while we are here.
    match client.call(&Request::control(99, Op::Ping)).expect("ping") {
        Response::Pong { draining } => assert!(!draining),
        other => panic!("expected pong, got {other:?}"),
    }
    let summary = server.drain();
    assert_eq!(summary.completed, corpus.len() as u64);
    replies
}

/// A head-of-line circuit with many distinct rz groups: every group is
/// a separate pulse generation, each paying the injected stall, so the
/// compile reliably outlasts the short-deadline requests queued behind.
fn slow_qasm() -> String {
    let mut q = String::from("OPENQASM 2.0;\nqreg q[2];\n");
    for k in 0..8 {
        q.push_str(&format!(
            "rz({}) q[0];\ncx q[0],q[1];\n",
            0.31 + k as f64 * 0.077
        ));
    }
    q
}

#[test]
fn expired_in_queue_requests_are_shed_before_compilation() {
    let server = Server::start(ServeOptions {
        addr: BindAddr::Tcp("127.0.0.1:0".to_string()),
        workers: 1,
        queue: QueueConfig {
            per_tenant_cap: 16,
            total_cap: 16,
            max_tenants: 4,
        },
        fault: Some(FaultConfig::stalling(Duration::from_millis(50))),
        ..ServeOptions::default()
    })
    .expect("server start");
    let endpoint = Endpoint::Tcp(server.local_addr().to_string());

    // A slow head-of-line request with no deadline, then short-deadline
    // requests that will expire while it compiles.
    let outcomes: Vec<Response> = std::thread::scope(|scope| {
        let head = {
            let endpoint = endpoint.clone();
            scope.spawn(move || {
                let mut client = Client::new(endpoint, Duration::from_secs(60));
                let mut req = Request::compile(1, "default", "unused");
                req.benchmark = None;
                req.qasm = Some(slow_qasm());
                client.call(&req).expect("head request")
            })
        };
        std::thread::sleep(Duration::from_millis(60));
        let mut handles = Vec::new();
        for i in 0..3usize {
            let endpoint = endpoint.clone();
            handles.push(scope.spawn(move || {
                let mut client = Client::new(endpoint, Duration::from_secs(60));
                let mut req = Request::compile(i as u64 + 2, "default", "unused");
                req.benchmark = None;
                req.qasm = Some(unique_qasm(2000 + i));
                req.deadline_ms = Some(1);
                client.call(&req).expect("deadline request")
            }));
        }
        let mut all = vec![head.join().expect("join")];
        all.extend(handles.into_iter().map(|h| h.join().expect("join")));
        all
    });

    assert!(
        matches!(outcomes[0], Response::Ok(_)),
        "the undeadlined head request must complete: {:?}",
        outcomes[0]
    );
    let expired = outcomes[1..]
        .iter()
        .filter(|r| matches!(r, Response::Expired { .. }))
        .count();
    assert!(
        expired > 0,
        "1 ms deadlines behind a stalled head must expire in queue: {outcomes:?}"
    );
    let stats = server.stats();
    assert_eq!(stats.shed as usize, expired, "sheds must be accounted");
    server.drain();
}
