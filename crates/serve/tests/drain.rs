//! Graceful-drain tests against the real `paqoc-serve` binary: SIGTERM
//! with requests in flight must answer or shed everything typed, sync
//! the pulse table to the store, and exit 0 — and a second start over
//! the same store must warm-hit the persisted pulses.

#![cfg(unix)]

use paqoc_serve::{Client, Endpoint, Op, Request, Response};
use paqoc_telemetry::json::{parse, Value};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paqoc-serve-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// Starts the daemon and blocks until its `ready` line appears.
fn spawn_daemon(args: &[&str]) -> (Child, BufReader<ChildStdout>, Value) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_paqoc-serve"))
        .args(args)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn paqoc-serve");
    let mut lines = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    lines.read_line(&mut line).expect("ready line");
    let ready = parse(line.trim()).expect("ready JSON");
    assert_eq!(
        ready.get("event").and_then(Value::as_str),
        Some("ready"),
        "first line must be the ready event: {line:?}"
    );
    (child, lines, ready)
}

/// Reads stdout until the `drained` line (the daemon's last words).
fn read_drained(lines: &mut BufReader<ChildStdout>) -> Value {
    let mut line = String::new();
    loop {
        line.clear();
        if lines.read_line(&mut line).expect("read stdout") == 0 {
            panic!("daemon exited without a drained line");
        }
        if let Ok(v) = parse(line.trim()) {
            if v.get("event").and_then(Value::as_str) == Some("drained") {
                return v;
            }
        }
    }
}

/// A multi-group circuit with per-call distinct angles: several pulse
/// generations per compile, each paying the daemon's injected stall.
fn slow_qasm(salt: usize) -> String {
    let mut q = String::from("OPENQASM 2.0;\nqreg q[2];\n");
    for k in 0..6 {
        q.push_str(&format!(
            "rz({}) q[0];\ncx q[0],q[1];\n",
            0.01 + salt as f64 * 0.101 + k as f64 * 0.013
        ));
    }
    q
}

#[test]
fn sigterm_drains_gracefully_and_restart_warm_hits() {
    let dir = tmp_dir();
    let db = dir.join("drain.pqps");
    let sock = dir.join("drain.sock");
    let _ = std::fs::remove_file(&db);
    let _ = std::fs::remove_file(format!("{}.lock", db.display()));
    let db_s = db.display().to_string();
    let sock_s = sock.display().to_string();
    let corpus = ["mod5d2_64", "rd32_270"];

    // ---- First life: compile, then SIGTERM with requests in flight.
    let (mut child, mut lines, ready) = spawn_daemon(&[
        "--uds",
        &sock_s,
        "--pulse-db",
        &db_s,
        "--workers",
        "1",
        "--chaos-stall-ms",
        "40",
    ]);
    assert_eq!(
        ready.get("store").and_then(Value::as_str),
        Some("writer"),
        "the first daemon must own the store"
    );
    let endpoint = Endpoint::Uds(sock.clone());

    // Seed the store with the fixed corpus (these complete).
    let mut client = Client::new(endpoint.clone(), Duration::from_secs(120));
    let mut cold_generated = 0u64;
    for (i, name) in corpus.iter().enumerate() {
        match client.call(&Request::compile(i as u64 + 1, "default", name)) {
            Ok(Response::Ok(reply)) => {
                assert_eq!(reply.store_hits, 0, "first life is cold");
                cold_generated += reply.pulses_generated;
            }
            other => panic!("seeding {name} got {other:?}"),
        }
    }
    assert!(cold_generated > 0, "seeding must generate pulses");

    // Slow in-flight traffic, then SIGTERM while it is being served.
    let pid = child.id().to_string();
    let outcomes: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6usize)
            .map(|i| {
                let endpoint = endpoint.clone();
                scope.spawn(move || {
                    let mut client = Client::new(endpoint, Duration::from_secs(120));
                    let mut req = Request::compile(i as u64 + 100, "default", "unused");
                    req.benchmark = None;
                    req.qasm = Some(slow_qasm(i));
                    client.call(&req).expect("in-flight request transport")
                })
            })
            .collect();
        // Let the first request reach a worker, then pull the plug.
        std::thread::sleep(Duration::from_millis(100));
        let killed = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("kill");
        assert!(killed.success(), "kill -TERM must succeed");
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    // Every in-flight request was answered typed: finished compiles as
    // ok, the shed backlog as draining. Nothing hung, nothing dropped.
    let mut completed_in_flight = 0u64;
    let mut drained_in_flight = 0u64;
    for resp in &outcomes {
        match resp {
            Response::Ok(_) => completed_in_flight += 1,
            Response::Draining => drained_in_flight += 1,
            other => panic!("in-flight request got untyped {other:?}"),
        }
    }
    assert!(
        drained_in_flight > 0,
        "SIGTERM mid-burst must shed part of the backlog: {outcomes:?}"
    );

    let drained = read_drained(&mut lines);
    let status = child.wait().expect("wait");
    assert!(status.success(), "drain must exit 0, got {status:?}");
    let completed = drained
        .get("completed")
        .and_then(Value::as_num)
        .unwrap_or(-1.0) as u64;
    let shed = drained.get("shed").and_then(Value::as_num).unwrap_or(-1.0) as u64;
    assert_eq!(
        completed,
        corpus.len() as u64 + completed_in_flight,
        "drained line must account for every completed request"
    );
    assert_eq!(shed, drained_in_flight, "drained line must count the shed");
    assert!(
        drained
            .get("table_len")
            .and_then(Value::as_num)
            .unwrap_or(0.0)
            > 0.0,
        "the pulse table must have entries at exit"
    );
    assert!(
        std::fs::metadata(&db).expect("store file must exist").len() > 0,
        "the synced store must be on disk"
    );
    assert!(!sock.exists(), "the daemon must remove its socket file");

    // ---- Second life: same store, no faults. The corpus must be
    // served from persisted pulses, and a client-sent drain op must
    // shut the daemon down as cleanly as SIGTERM did.
    let (mut child2, mut lines2, ready2) =
        spawn_daemon(&["--uds", &sock_s, "--pulse-db", &db_s, "--workers", "1"]);
    assert_eq!(ready2.get("store").and_then(Value::as_str), Some("writer"));
    let mut client = Client::new(endpoint, Duration::from_secs(120));
    for (i, name) in corpus.iter().enumerate() {
        match client.call(&Request::compile(i as u64 + 1, "default", name)) {
            Ok(Response::Ok(reply)) => {
                assert!(
                    reply.store_hits > 0,
                    "warm restart must hit the store for {name}: {reply:?}"
                );
                assert_eq!(
                    reply.pulses_generated, 0,
                    "warm restart must not regenerate {name}: {reply:?}"
                );
            }
            other => panic!("warm {name} got {other:?}"),
        }
    }
    match client.call(&Request::control(50, Op::Drain)) {
        Ok(Response::Pong { draining }) => assert!(draining, "drain op must take effect"),
        other => panic!("drain op got {other:?}"),
    }
    let drained2 = read_drained(&mut lines2);
    let status2 = child2.wait().expect("wait");
    assert!(status2.success(), "client-driven drain must exit 0");
    assert_eq!(
        drained2.get("completed").and_then(Value::as_num),
        Some(corpus.len() as f64),
        "second life completed exactly the warm corpus"
    );
}
