//! Seeded property tests for the wire protocol: truncated, oversized
//! and hostile frames must always produce typed errors — never a panic
//! and never an allocation proportional to an attacker-advertised
//! length.

use paqoc_math::Rng;
use paqoc_serve::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameError, Request, Response, DEFAULT_MAX_FRAME_BYTES,
};

const CASES: usize = 200;

fn sample_request(rng: &mut Rng, id: u64) -> Request {
    let mut req = Request::compile(id, "tenant-a", "mod5d2_64");
    if rng.random::<f64>() < 0.5 {
        req.deadline_ms = Some(rng.random_range(1u64..=10_000));
    }
    if rng.random::<f64>() < 0.5 {
        let backends = ["transmon-grid", "heavy-hex", "tunable-coupler"];
        req.backend = Some(backends[rng.random_range(0usize..=2)].to_string());
    }
    req.priority = rng.random::<f64>() * 10.0 - 5.0;
    req
}

/// Round-trip baseline: what `encode_request` emits, `read_frame` +
/// `decode_request` must accept byte-for-byte.
#[test]
fn roundtrip_survives_random_requests() {
    let mut rng = Rng::seed_from_u64(0xF4A3);
    for i in 0..CASES {
        let req = sample_request(&mut rng, i as u64 + 1);
        let frame = encode_request(&req);
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame, DEFAULT_MAX_FRAME_BYTES).expect("write");
        let got = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES)
            .expect("read")
            .expect("some");
        let back = decode_request(&got).expect("decode");
        assert_eq!(back.id, req.id);
        assert_eq!(back.tenant, req.tenant);
        assert_eq!(back.deadline_ms, req.deadline_ms);
        assert_eq!(back.backend, req.backend);
    }
}

/// Hostile backend names get the same decode-time rejection as hostile
/// tenant names — they reach logs, telemetry labels, and store paths.
#[test]
fn hostile_backend_names_rejected_at_decode() {
    let hostile = [
        String::new(),
        "a/b".to_string(),
        "a\0b".to_string(),
        "日本".to_string(),
        "x".repeat(10_000),
    ];
    for name in hostile {
        let mut req = Request::compile(1, "ok", "mod5d2_64");
        req.backend = Some(name.clone());
        let frame = encode_request(&req);
        match decode_request(&frame) {
            Err(FrameError::BadRequest(_)) => {}
            other => panic!("backend {name:?}: expected BadRequest, got {other:?}"),
        }
    }
    // A well-formed (if unknown) name passes decode; the server answers
    // it with a typed unknown_backend error instead.
    let mut req = Request::compile(1, "ok", "mod5d2_64");
    req.backend = Some("ion-trap".to_string());
    assert!(decode_request(&encode_request(&req)).is_ok());
}

/// Truncation at EVERY byte offset of a valid wire frame: offset 0 is a
/// clean EOF (`Ok(None)`), anything else is a typed error or — for a
/// cut inside the payload — a `Truncated` with an honest byte count.
#[test]
fn truncation_at_every_offset_is_typed() {
    let req = Request::compile(7, "tenant-a", "mod5d2_64");
    let frame = encode_request(&req);
    let mut wire = Vec::new();
    write_frame(&mut wire, &frame, DEFAULT_MAX_FRAME_BYTES).expect("write");
    for cut in 0..wire.len() {
        let result = read_frame(&mut &wire[..cut], DEFAULT_MAX_FRAME_BYTES);
        match (cut, result) {
            (0, Ok(None)) => {}
            (0, other) => panic!("empty stream must be clean EOF, got {other:?}"),
            (_, Err(FrameError::Truncated { missing })) => {
                assert!(missing > 0, "cut {cut}: missing must be positive");
                if cut >= 4 {
                    assert_eq!(
                        missing,
                        wire.len() - cut,
                        "cut {cut}: missing bytes must be honest"
                    );
                }
            }
            (_, other) => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
}

/// Advertised lengths far beyond the cap — including the 4 GiB prefix —
/// are rejected from the 4-byte header alone, before any payload
/// allocation. A hostile prefix must never OOM the server.
#[test]
fn oversized_advertisements_rejected_before_allocation() {
    let hostile: [u32; 6] = [
        DEFAULT_MAX_FRAME_BYTES as u32 + 1,
        1 << 24,
        1 << 30,
        u32::MAX / 2,
        u32::MAX - 1,
        u32::MAX, // the advertised-4GiB frame from the issue
    ];
    for advertised in hostile {
        let mut wire = advertised.to_be_bytes().to_vec();
        // A few payload bytes so rejection cannot be confused with EOF.
        wire.extend_from_slice(b"{}");
        match read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES) {
            Err(FrameError::TooLarge {
                advertised: got,
                cap,
            }) => {
                assert_eq!(got, advertised as u64);
                assert_eq!(cap, DEFAULT_MAX_FRAME_BYTES as u64);
            }
            other => panic!("advertised {advertised}: expected TooLarge, got {other:?}"),
        }
    }
}

/// Random garbage payloads under a correct length prefix: the frame
/// layer accepts them (framing is intact) and the JSON layer rejects
/// them with a typed error. No input may panic.
#[test]
fn garbage_payloads_decode_to_typed_errors() {
    let mut rng = Rng::seed_from_u64(0xBADF00D);
    for _ in 0..CASES {
        let len = rng.random_range(1usize..=256);
        let payload: Vec<u8> = (0..len)
            .map(|_| rng.random_range(0u32..=255) as u8)
            .collect();
        let mut wire = (payload.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&payload);
        let framed = read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME_BYTES)
            .expect("framing is intact")
            .expect("some");
        assert_eq!(framed, payload);
        // Almost surely not valid JSON; when it happens to parse, it is
        // still not a valid request object.
        if let Ok(req) = decode_request(&framed) {
            panic!("garbage decoded to a request: {req:?}");
        }
    }
}

/// Hostile tenant names — empty, oversized, control characters, path
/// separators, non-ASCII — are rejected at decode, before admission.
#[test]
fn hostile_tenant_names_rejected_at_decode() {
    let hostile = [
        String::new(),
        " ".to_string(),
        "a/b".to_string(),
        "a\0b".to_string(),
        "a\nb".to_string(),
        "日本".to_string(),
        "x".repeat(65),
        "x".repeat(10_000),
    ];
    for name in hostile {
        let mut req = Request::compile(1, "ok", "mod5d2_64");
        req.tenant = name.clone();
        let frame = encode_request(&req);
        match decode_request(&frame) {
            Err(FrameError::BadRequest(_)) => {}
            other => panic!("tenant {name:?}: expected BadRequest, got {other:?}"),
        }
    }
    // The boundary case stays valid.
    let mut req = Request::compile(1, "ok", "mod5d2_64");
    req.tenant = "x".repeat(64);
    let frame = encode_request(&req);
    assert!(decode_request(&frame).is_ok(), "64-char tenant is legal");
}

/// Responses survive the same random-mutation treatment: flipping any
/// single byte of an encoded response never panics the decoder.
#[test]
fn response_decoder_survives_single_byte_mutations() {
    let mut rng = Rng::seed_from_u64(0x5EED);
    let resp = Response::Overloaded {
        scope: "queue".to_string(),
        depth: 4,
        cap: 4,
    };
    let frame = encode_response(42, &resp);
    for _ in 0..CASES {
        let mut mutated = frame.clone();
        let at = rng.random_range(0usize..=mutated.len() - 1);
        mutated[at] ^= 1 << rng.random_range(0u32..=7);
        // Either it still decodes (the flip hit insignificant
        // whitespace or a value) or it fails typed — never a panic.
        let _ = decode_response(&mutated);
    }
}
