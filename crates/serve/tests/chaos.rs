//! Connection-chaos test: a seeded [`ConnChaos`] storm — mid-frame
//! disconnects, garbage frames, slow-loris dribbles — hammers the
//! daemon while well-behaved clients work through it. The daemon must
//! never panic, never leak a queue slot or tenant entry, and keep the
//! shared pulse table serving correct results throughout.

use paqoc_device::{ChaosAction, ConnChaos, FaultConfig};
use paqoc_exec::QueueConfig;
use paqoc_serve::{
    encode_request, read_frame, BindAddr, Client, Endpoint, Request, Response, ServeOptions,
    Server, DEFAULT_MAX_FRAME_BYTES,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Frames the request the way `write_frame` would, as one byte buffer
/// the chaos planner can mangle.
fn wire_bytes(req: &Request) -> Vec<u8> {
    let payload = encode_request(req);
    let mut wire = (payload.len() as u32).to_be_bytes().to_vec();
    wire.extend_from_slice(&payload);
    wire
}

/// Plays one planned chaos action against a fresh connection. Delivered
/// and dribbled frames are complete, so the server's response is read
/// back; mangled ones end with the connection dropped mid-stream.
fn play(addr: &str, chaos: &mut ConnChaos, req: &Request) -> Option<Response> {
    let wire = wire_bytes(req);
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(60))).ok();
    match chaos.next_action(wire.len()) {
        ChaosAction::Deliver => {
            sock.write_all(&wire).expect("deliver");
        }
        ChaosAction::Truncate(n) => {
            let _ = sock.write_all(&wire[..n]);
            return None;
        }
        ChaosAction::Garbage(n) => {
            let garbage = chaos.garbage_bytes(n);
            let _ = sock.write_all(&garbage);
            // The server answers typed or just closes; either way the
            // storm must not hang on it.
            let _ = read_frame(&mut sock, DEFAULT_MAX_FRAME_BYTES);
            return None;
        }
        ChaosAction::Dribble { chunk, delay } => {
            for piece in wire.chunks(chunk) {
                sock.write_all(piece).expect("dribble piece");
                sock.flush().ok();
                std::thread::sleep(delay);
            }
        }
        ChaosAction::Disconnect => return None,
    }
    let frame = read_frame(&mut sock, DEFAULT_MAX_FRAME_BYTES)
        .expect("read response")
        .expect("response frame");
    let (_, resp) = paqoc_serve::decode_response(&frame).expect("decode response");
    Some(resp)
}

#[test]
fn chaos_storm_never_corrupts_the_daemon() {
    const STORM_FRAMES: usize = 64;
    const GOOD_CLIENTS: usize = 4;
    const GOOD_REQUESTS: usize = 5;

    let server = Server::start(ServeOptions {
        addr: BindAddr::Tcp("127.0.0.1:0".to_string()),
        workers: 2,
        queue: QueueConfig {
            per_tenant_cap: 8,
            total_cap: 64,
            max_tenants: 16,
        },
        // A tight per-frame budget so even a capped dribble exercises
        // the governed reader, without slowing the storm down.
        read_timeout: Duration::from_secs(2),
        ..ServeOptions::default()
    })
    .expect("server start");
    let addr = server.local_addr().to_string();
    let endpoint = Endpoint::Tcp(addr.clone());

    let chaos_counts = std::thread::scope(|scope| {
        // The storm: one hostile connection per planned frame.
        let storm = {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut chaos = ConnChaos::new(FaultConfig::conn_chaos(0xC4A05, 0.45));
                for i in 0..STORM_FRAMES {
                    let req = Request::compile(i as u64 + 1, "chaos", "mod5d2_64");
                    if let Some(resp) = play(&addr, &mut chaos, &req) {
                        // Complete frames must get a typed answer —
                        // compile result or a typed rejection.
                        assert!(
                            matches!(
                                resp,
                                Response::Ok(_)
                                    | Response::Overloaded { .. }
                                    | Response::Error { .. }
                            ),
                            "unexpected storm response {resp:?}"
                        );
                    }
                }
                chaos.counts()
            })
        };
        // Honest tenants keep working through the storm.
        let good: Vec<_> = (0..GOOD_CLIENTS)
            .map(|c| {
                let endpoint = endpoint.clone();
                scope.spawn(move || {
                    let mut client = Client::new(endpoint, Duration::from_secs(60));
                    for r in 0..GOOD_REQUESTS {
                        let id = (c * GOOD_REQUESTS + r) as u64 + 1000;
                        let req = Request::compile(id, &format!("good-{c}"), "rd32_270");
                        match client.call(&req).expect("good client transport") {
                            Response::Ok(reply) => {
                                assert!(reply.latency_dt > 0, "result must be real")
                            }
                            other => panic!("good client got {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for h in good {
            h.join().expect("good client");
        }
        storm.join().expect("storm")
    });

    assert!(
        chaos_counts.hostile() > 0,
        "the storm must actually be hostile: {chaos_counts:?}"
    );
    assert!(
        chaos_counts.garbage + chaos_counts.truncated > 0,
        "seed must produce parse-breaking frames: {chaos_counts:?}"
    );

    // Quiesced: no leaked queue slots, tenant entries, or active jobs;
    // every admitted request accounted for; the mangled frames counted.
    let stats = server.stats();
    assert_eq!(stats.queue_depth, 0, "no leaked queue slots");
    assert_eq!(stats.active, 0, "no stuck workers");
    assert_eq!(stats.tenants, 0, "no leaked tenant entries");
    assert_eq!(
        stats.accepted,
        stats.completed + stats.shed,
        "every admitted request must be answered or shed: {stats:?}"
    );
    assert!(stats.bad_frames > 0, "garbage must be counted: {stats:?}");
    assert!(stats.table_len > 0, "the pulse table must have entries");

    // The table still serves correct results after the storm.
    let mut client = Client::new(endpoint, Duration::from_secs(60));
    match client
        .call(&Request::compile(9999, "after", "mod5d2_64"))
        .expect("post-storm call")
    {
        Response::Ok(reply) => assert!(
            reply.cache_hits > 0,
            "post-storm compile must hit the intact table: {reply:?}"
        ),
        other => panic!("post-storm compile got {other:?}"),
    }

    let summary = server.drain();
    assert_eq!(
        summary.completed + summary.shed,
        stats.accepted + 1,
        "drain must account for every admitted request"
    );
}
