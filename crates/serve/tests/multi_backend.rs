//! Multi-backend serving: one daemon, two tenants on two different
//! backends sharing one `pulse_db` path. Both must be answered
//! correctly, the per-backend pulse tables must never share entries,
//! and unknown backend names must get a typed error.

use paqoc_serve::{BindAddr, Client, Endpoint, Request, Response, ServeOptions, Server};
use std::path::PathBuf;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("paqoc-serve-mb-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

fn compile_on(client: &mut Client, id: u64, tenant: &str, backend: Option<&str>) -> Response {
    // mod5d2_64 is small enough for every backend (tunable-coupler has
    // the fewest qubits, 16).
    let mut req = Request::compile(id, tenant, "mod5d2_64");
    req.backend = backend.map(str::to_string);
    client.call(&req).expect("transport must not fail")
}

#[test]
fn two_backends_one_db_both_tenants_answered() {
    let db = tmp("multi.pqps");
    let _ = std::fs::remove_file(&db);
    let _ = std::fs::remove_file(format!("{}.lock", db.display()));
    let server = Server::start(ServeOptions {
        addr: BindAddr::Tcp("127.0.0.1:0".to_string()),
        workers: 2,
        pulse_db: Some(db),
        backend: "heavy-hex".to_string(),
        ..ServeOptions::default()
    })
    .expect("server start");
    let endpoint = Endpoint::Tcp(server.local_addr().to_string());
    let mut client = Client::new(endpoint, Duration::from_secs(120));

    // Tenant A compiles on the (default) heavy-hex backend, tenant B
    // names tunable-coupler explicitly; both get clean answers.
    let a = compile_on(&mut client, 1, "tenant-a", None);
    let Response::Ok(a) = a else {
        panic!("heavy-hex compile failed: {a:?}");
    };
    let b = compile_on(&mut client, 2, "tenant-b", Some("tunable-coupler"));
    let Response::Ok(b) = b else {
        panic!("tunable-coupler compile failed: {b:?}");
    };
    assert!(a.pulses_generated > 0);
    // The tunable-coupler compile generated its own pulses: nothing of
    // tenant A's heavy-hex work was reusable (the slots are isolated;
    // repeats *within* its own circuit may still hit, that's fine).
    assert!(
        b.pulses_generated > 0,
        "cross-backend reuse must not happen"
    );

    // Same circuit again on each backend: now the per-backend tables
    // are warm and serve hits — each from its own slot.
    let a2 = compile_on(&mut client, 3, "tenant-a", Some("heavy-hex"));
    let Response::Ok(a2) = a2 else {
        panic!("warm heavy-hex compile failed: {a2:?}");
    };
    let b2 = compile_on(&mut client, 4, "tenant-b", Some("tunable-coupler"));
    let Response::Ok(b2) = b2 else {
        panic!("warm tunable-coupler compile failed: {b2:?}");
    };
    assert!(a2.cache_hits > 0, "heavy-hex rerun must warm-hit");
    assert!(b2.cache_hits > 0, "tunable-coupler rerun must warm-hit");
    assert_eq!(a2.pulses_generated, 0, "warm rerun regenerates nothing");
    assert_eq!(b2.pulses_generated, 0);

    // An unknown backend gets a typed error, not a hang or a default.
    let bad = compile_on(&mut client, 5, "tenant-a", Some("ion-trap"));
    match bad {
        Response::Error { kind, message } => {
            assert_eq!(kind, "unknown_backend");
            assert!(message.contains("ion-trap"), "{message}");
        }
        other => panic!("expected unknown_backend error, got {other:?}"),
    }

    let summary = server.drain();
    assert_eq!(summary.completed, 4);
}
