//! The resident compilation daemon.
//!
//! One [`Server`] owns a listener (TCP or unix socket), a pool of
//! connection threads, a [`FairQueue`] of admitted compile jobs, and a
//! pool of compile workers sharing one [`SharedPulseTable`] — so every
//! request benefits from every earlier request's pulses, and a
//! persistent store attached at startup makes that reuse survive
//! restarts.
//!
//! ## Request lifecycle
//!
//! ```text
//! frame → parse → admit(FairQueue) ──reject──▶ overloaded/draining
//!                      │
//!                      ▼ (queued, deadline ticking)
//!                 worker pop ──expired──▶ expired (shed)
//!                      │     ──draining─▶ draining (shed)
//!                      ▼
//!              try_compile_batch(remaining budget)
//!                      │
//!                      ▼
//!                ok / degraded / error
//! ```
//!
//! Connection threads never compile and workers never touch sockets:
//! each admitted job carries a channel back to its connection thread,
//! which blocks on it (bounded by drain, which answers everything).
//!
//! ## Drain lifecycle
//!
//! [`Server::drain`] (SIGTERM in the binary, or a `drain` request):
//! stop accepting, close the queue (new pushes answer `draining`),
//! answer or shed everything already admitted, join the workers, sync
//! the pulse table to the store, release connection threads, and return
//! a [`DrainSummary`]. The binary exits 0 afterwards, and a restart
//! warm-loads the store.

use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, Budget, CompileReply, ConfigPreset,
    FrameError, Op, Request, Response, ServerStats, DEFAULT_MAX_FRAME_BYTES,
};
use paqoc_circuit::{parse_qasm, Circuit};
use paqoc_core::{try_compile_batch, Degradation, PipelineOptions};
use paqoc_device::{Device, FaultConfig};
use paqoc_exec::{
    AnalyticFactory, FairQueue, FaultyAnalyticFactory, Pop, PulseSourceFactory, PushError,
    QueueConfig, SharedPulseTable,
};
use paqoc_store::{PulseStore, StoreOptions, StoreRole};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum BindAddr {
    /// A TCP address (`"127.0.0.1:0"` picks a free port).
    Tcp(String),
    /// A unix-domain socket path (removed and re-created on bind).
    #[cfg(unix)]
    Uds(PathBuf),
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address.
    pub addr: BindAddr,
    /// Compile workers (each runs one single-threaded pipeline).
    pub workers: usize,
    /// Admission-queue capacity limits.
    pub queue: QueueConfig,
    /// Hard cap on a frame's payload size.
    pub max_frame_bytes: usize,
    /// Budget for receiving one complete frame once its first byte
    /// arrives — the slow-loris bound.
    pub read_timeout: Duration,
    /// Budget for writing one response frame.
    pub write_timeout: Duration,
    /// A connection with no traffic for this long is reaped.
    pub idle_timeout: Duration,
    /// Deadline applied to requests that do not carry one (`None`
    /// leaves them unbounded).
    pub default_deadline: Option<Duration>,
    /// Persistent pulse store to attach (warm reuse across restarts).
    pub pulse_db: Option<PathBuf>,
    /// Store-handle tuning (eviction budget, forced read-only, faults).
    pub store_options: StoreOptions,
    /// Pipeline preset applied when requests do not choose one.
    pub preset: ConfigPreset,
    /// Pulse-source fault injection (chaos tests). `None` serves the
    /// clean analytic source.
    pub fault: Option<FaultConfig>,
    /// Backend served when requests do not name one (a `paqoc-backend`
    /// registry name). Other registered backends are materialized
    /// lazily on first request.
    pub backend: String,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: BindAddr::Tcp("127.0.0.1:0".to_string()),
            workers: 2,
            queue: QueueConfig::default(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            default_deadline: None,
            pulse_db: None,
            store_options: StoreOptions::default(),
            preset: ConfigPreset::M0,
            fault: None,
            backend: "transmon-grid".to_string(),
        }
    }
}

/// What a completed drain did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Admitted requests answered with a result or error.
    pub completed: u64,
    /// Admitted requests shed (expired or drain).
    pub shed: u64,
    /// Requests rejected at admission over the server's lifetime.
    pub rejected: u64,
    /// Pulse-table entries flushed to the store by the final sync.
    pub synced: usize,
    /// Entries in the pulse table at exit.
    pub table_len: usize,
}

/// How often blocked loops re-check drain/stop flags. Short enough
/// that drain completes promptly, long enough to stay off profiles.
const TICK: Duration = Duration::from_millis(50);

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Conn {
    fn configure(&self, read: Duration, write: Duration) -> std::io::Result<()> {
        // Reads tick at TICK so the loop can observe stop flags and
        // enforce idle/slow-loris budgets itself; writes get the full
        // budget in one shot.
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(Some(read.min(TICK)))?;
                s.set_write_timeout(Some(write))
            }
            #[cfg(unix)]
            Conn::Uds(s) => {
                s.set_read_timeout(Some(read.min(TICK)))?;
                s.set_write_timeout(Some(write))
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Uds(s) => s.flush(),
        }
    }
}

/// One admitted compile job, queued between connection and worker.
struct Job {
    label: String,
    circuit: Circuit,
    preset: ConfigPreset,
    /// The backend the job compiles against (device + pulse table).
    slot: Arc<BackendSlot>,
    deadline_ms: Option<u64>,
    deadline_at: Option<Instant>,
    enqueued: Instant,
    resp: mpsc::Sender<Response>,
}

/// Everything backend-specific a worker needs: the device, the shared
/// pulse table keyed under that device's fingerprint, and the slot's
/// standing degradations (store read-only / unavailable).
///
/// Slots never share a pulse table: the table keys are
/// fingerprint-prefixed, but separate tables also keep per-backend
/// working sets independently evictable. All slots open the *same*
/// `pulse_db` path — the store's single-writer flock means the first
/// slot to open it writes and later slots attach read-only, and
/// namespaced fingerprints cohabit one file while legacy fingerprints
/// keep strict rotation.
struct BackendSlot {
    name: String,
    device: Device,
    table: Arc<SharedPulseTable>,
    base_degradations: Vec<Degradation>,
    store_state: &'static str,
}

/// Opens the slot for backend `name`: resolves the device and attaches
/// the persistent store (if configured). Errors only on an unknown
/// backend name; store failures degrade instead.
fn open_slot(name: &str, opts: &ServeOptions) -> Result<Arc<BackendSlot>, String> {
    let backend = paqoc_backend::resolve(name).map_err(|e| e.to_string())?;
    let device = backend.device();
    let table = Arc::new(SharedPulseTable::new());
    let mut base_degradations = Vec::new();
    let mut store_state = "none";
    if let Some(path) = &opts.pulse_db {
        match PulseStore::open_with(path, device.fingerprint(), opts.store_options.clone()) {
            Ok(store) => {
                if store.role() == StoreRole::ReadOnly {
                    let reason = if opts.store_options.read_only {
                        "requested"
                    } else {
                        "lock-held"
                    };
                    base_degradations.push(Degradation::StoreReadOnly {
                        reason: reason.to_string(),
                    });
                    store_state = "read-only";
                } else {
                    store_state = "writer";
                }
                table.attach_store(store);
            }
            Err(e) => {
                base_degradations.push(Degradation::StoreUnavailable {
                    reason: e.to_string(),
                });
                store_state = "unavailable";
            }
        }
    }
    Ok(Arc::new(BackendSlot {
        name: name.to_string(),
        device,
        table,
        base_degradations,
        store_state,
    }))
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    overloaded: AtomicU64,
    draining_rejects: AtomicU64,
    bad_frames: AtomicU64,
    active: AtomicU64,
}

struct Shared {
    queue: FairQueue<Job>,
    /// The slot for `opts.backend`, opened eagerly at startup.
    default_slot: Arc<BackendSlot>,
    /// Other backends' slots, materialized on first request.
    slots: Mutex<BTreeMap<String, Arc<BackendSlot>>>,
    factory: Arc<dyn PulseSourceFactory>,
    opts: ServeOptions,
    counters: Counters,
    /// Set by drain(): stop admitting.
    draining: AtomicBool,
    /// Set at the end of drain: connection threads exit.
    stopping: AtomicBool,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.counters.accepted.load(Ordering::SeqCst),
            completed: self.counters.completed.load(Ordering::SeqCst),
            shed: self.counters.shed.load(Ordering::SeqCst),
            overloaded: self.counters.overloaded.load(Ordering::SeqCst),
            draining_rejects: self.counters.draining_rejects.load(Ordering::SeqCst),
            bad_frames: self.counters.bad_frames.load(Ordering::SeqCst),
            queue_depth: self.queue.len() as u64,
            active: self.counters.active.load(Ordering::SeqCst),
            tenants: self.queue.tenant_count() as u64,
            table_len: self.default_slot.table.len() as u64,
            draining: self.draining.load(Ordering::SeqCst),
            store: self.default_slot.store_state.to_string(),
        }
    }

    /// Resolves the slot a request compiles against: the default slot
    /// when no backend is named, a lazily-opened slot otherwise.
    fn slot_for(&self, backend: Option<&str>) -> Result<Arc<BackendSlot>, String> {
        let name = match backend {
            None => return Ok(self.default_slot.clone()),
            Some(name) if name == self.default_slot.name => return Ok(self.default_slot.clone()),
            Some(name) => name,
        };
        let mut slots = lock(&self.slots);
        if let Some(slot) = slots.get(name) {
            return Ok(slot.clone());
        }
        let slot = open_slot(name, &self.opts)?;
        paqoc_telemetry::counter("serve.slots_opened", 1);
        slots.insert(name.to_string(), slot.clone());
        Ok(slot)
    }

    /// The default slot plus every lazily-opened one.
    fn all_slots(&self) -> Vec<Arc<BackendSlot>> {
        let mut all = vec![self.default_slot.clone()];
        all.extend(lock(&self.slots).values().cloned());
        all
    }
}

/// A running daemon (see the module docs for the lifecycle).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: String,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, attaches the store (if configured), and starts the
    /// accept loop and worker pool.
    pub fn start(opts: ServeOptions) -> std::io::Result<Server> {
        let listener = match &opts.addr {
            BindAddr::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Listener::Tcp(l)
            }
            #[cfg(unix)]
            BindAddr::Uds(path) => {
                // A stale socket file from a previous run blocks bind.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Listener::Uds(l)
            }
        };
        let local_addr = match &listener {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "tcp:?".to_string()),
            #[cfg(unix)]
            Listener::Uds(_) => match &opts.addr {
                #[cfg(unix)]
                BindAddr::Uds(p) => p.display().to_string(),
                _ => "uds:?".to_string(),
            },
        };

        let default_slot = open_slot(&opts.backend, &opts)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let factory: Arc<dyn PulseSourceFactory> = match opts.fault {
            Some(cfg) => Arc::new(FaultyAnalyticFactory::new(cfg)),
            None => Arc::new(AnalyticFactory),
        };

        let shared = Arc::new(Shared {
            queue: FairQueue::new(opts.queue),
            default_slot,
            slots: Mutex::new(BTreeMap::new()),
            factory,
            counters: Counters::default(),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            opts,
        });

        let workers = (0..shared.opts.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("paqoc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("paqoc-serve-accept".to_string())
                .spawn(move || accept_loop(listener, &shared, &conns))?
        };

        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
            workers,
            conns,
        })
    }

    /// The bound address: `host:port` for TCP, the socket path for UDS.
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// `true` once drain has begun (a `drain` request, or [`Server::drain`]).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Current counters (what the `stats` op answers).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Blocks until `should_stop` answers true or a client sends
    /// `drain`, then drains. The binary's main loop.
    pub fn run_until(mut self, should_stop: impl Fn() -> bool) -> DrainSummary {
        while !should_stop() && !self.shared.draining.load(Ordering::SeqCst) {
            std::thread::sleep(TICK);
        }
        self.drain_inner()
    }

    /// Gracefully shuts the server down (see the module docs) and
    /// returns what happened.
    pub fn drain(mut self) -> DrainSummary {
        self.drain_inner()
    }

    fn drain_inner(&mut self) -> DrainSummary {
        let shared = &self.shared;
        shared.draining.store(true, Ordering::SeqCst);
        shared.queue.drain();
        paqoc_telemetry::event!("serve.drain_begin");
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Everything admitted has now been answered or shed; flush the
        // write-behind of every backend slot so a restart warm-hits
        // these pulses.
        let synced = shared
            .all_slots()
            .iter()
            .map(|slot| slot.table.sync().unwrap_or(0))
            .sum();
        shared.stopping.store(true, Ordering::SeqCst);
        let handles = {
            let mut guard = lock(&self.conns);
            guard.drain(..).collect::<Vec<_>>()
        };
        for h in handles {
            let _ = h.join();
        }
        let summary = DrainSummary {
            completed: shared.counters.completed.load(Ordering::SeqCst),
            shed: shared.counters.shed.load(Ordering::SeqCst),
            rejected: shared.counters.overloaded.load(Ordering::SeqCst)
                + shared.counters.draining_rejects.load(Ordering::SeqCst),
            synced,
            table_len: shared.default_slot.table.len(),
        };
        paqoc_telemetry::event!(
            "serve.drain_done",
            completed = summary.completed,
            shed = summary.shed,
            synced = summary.synced as u64
        );
        summary
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn accept_loop(listener: Listener, shared: &Arc<Shared>, conns: &Arc<Mutex<Vec<JoinHandle<()>>>>) {
    while !shared.draining.load(Ordering::SeqCst) {
        let conn = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Uds(l) => l.accept().map(|(s, _)| Conn::Uds(s)),
        };
        match conn {
            Ok(conn) => {
                let shared = shared.clone();
                let spawned = std::thread::Builder::new()
                    .name("paqoc-serve-conn".to_string())
                    .spawn(move || conn_loop(conn, &shared));
                match spawned {
                    Ok(h) => lock(conns).push(h),
                    Err(_) => paqoc_telemetry::counter("serve.spawn_failures", 1),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(TICK),
            Err(_) => std::thread::sleep(TICK),
        }
    }
    // Dropping the listener closes the socket; for UDS also remove the
    // path so the next start binds cleanly even without our own unlink.
    #[cfg(unix)]
    if let BindAddr::Uds(path) = &shared.opts.addr {
        let _ = std::fs::remove_file(path);
    }
}

/// Reads one frame under the connection's idle and slow-loris budgets.
/// `Ok(None)` means the connection should close quietly (clean EOF,
/// idle reap, slow-loris reap, or server stop).
fn read_frame_governed(conn: &mut Conn, shared: &Shared) -> Result<Option<Vec<u8>>, FrameError> {
    let idle_deadline = Instant::now() + shared.opts.idle_timeout;
    // Phase 1: wait for the first byte (idle budget, stop-aware).
    let mut first = [0u8; 1];
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match conn.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= idle_deadline {
                    paqoc_telemetry::counter("serve.idle_reaped", 1);
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    // Phase 2: the rest of the frame under the per-frame budget. A
    // dribbling client gets until read_timeout in total, then is reaped.
    let frame_deadline = Instant::now() + shared.opts.read_timeout;
    let mut reader = GovernedReader {
        conn,
        first: Some(first[0]),
        deadline: frame_deadline,
    };
    match read_frame(&mut reader, shared.opts.max_frame_bytes) {
        Ok(None) => Ok(None),
        Ok(Some(frame)) => Ok(Some(frame)),
        Err(FrameError::Io(e))
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            paqoc_telemetry::counter("serve.slow_loris_reaped", 1);
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

/// Adapts a ticking socket to [`read_frame`]: retries short timeouts
/// until `deadline`, then lets the timeout error through (which
/// `read_frame_governed` maps to a quiet slow-loris reap).
struct GovernedReader<'a> {
    conn: &'a mut Conn,
    first: Option<u8>,
    deadline: Instant,
}

impl Read for GovernedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(b) = self.first.take() {
            buf[0] = b;
            return Ok(1);
        }
        loop {
            match self.conn.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) && Instant::now() < self.deadline => {}
                other => return other,
            }
        }
    }
}

fn conn_loop(mut conn: Conn, shared: &Arc<Shared>) {
    if conn
        .configure(shared.opts.read_timeout, shared.opts.write_timeout)
        .is_err()
    {
        return;
    }
    paqoc_telemetry::counter("serve.connections", 1);
    loop {
        let frame = match read_frame_governed(&mut conn, shared) {
            Ok(None) => return,
            Ok(Some(frame)) => frame,
            Err(e) => {
                // Hostile or broken input: answer typed (best-effort)
                // and close — one bad frame never takes a worker down.
                shared.counters.bad_frames.fetch_add(1, Ordering::SeqCst);
                paqoc_telemetry::counter("serve.bad_frames", 1);
                let resp = Response::Error {
                    kind: e.kind().to_string(),
                    message: e.to_string(),
                };
                let _ = write_frame(
                    &mut conn,
                    &encode_response(0, &resp),
                    shared.opts.max_frame_bytes,
                );
                return;
            }
        };
        let req = match decode_request(&frame) {
            Ok(req) => req,
            Err(e) => {
                shared.counters.bad_frames.fetch_add(1, Ordering::SeqCst);
                paqoc_telemetry::counter("serve.bad_frames", 1);
                let resp = Response::Error {
                    kind: e.kind().to_string(),
                    message: e.to_string(),
                };
                // Malformed-but-framed requests get an answer and the
                // connection stays open: the framing is intact.
                if write_frame(
                    &mut conn,
                    &encode_response(0, &resp),
                    shared.opts.max_frame_bytes,
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };
        let id = req.id;
        let resp = handle_request(req, shared);
        if write_frame(
            &mut conn,
            &encode_response(id, &resp),
            shared.opts.max_frame_bytes,
        )
        .is_err()
        {
            return;
        }
    }
}

fn handle_request(req: Request, shared: &Arc<Shared>) -> Response {
    match req.op {
        Op::Ping => Response::Pong {
            draining: shared.draining.load(Ordering::SeqCst),
        },
        Op::Stats => Response::Stats(shared.stats()),
        Op::Drain => {
            // Flag only: the owning thread (Server::run_until / the
            // test harness) observes is_draining and performs the
            // actual drain, exactly like SIGTERM.
            shared.draining.store(true, Ordering::SeqCst);
            shared.queue.drain();
            Response::Pong { draining: true }
        }
        Op::Compile => admit_compile(req, shared),
    }
}

fn admit_compile(req: Request, shared: &Arc<Shared>) -> Response {
    // Resolve the backend slot and build the circuit before admission:
    // an unknown backend, bad benchmark name, or bad QASM never costs
    // a queue slot.
    let slot = match shared.slot_for(req.backend.as_deref()) {
        Ok(slot) => slot,
        Err(message) => {
            return Response::Error {
                kind: "unknown_backend".to_string(),
                message,
            }
        }
    };
    let (label, circuit) = match (&req.benchmark, &req.qasm) {
        (Some(name), _) => match paqoc_workloads::benchmark(name) {
            Some(b) => (b.name.to_string(), (b.build)()),
            None => {
                return Response::Error {
                    kind: "unknown_benchmark".to_string(),
                    message: format!("no benchmark named {name:?}"),
                }
            }
        },
        (None, Some(qasm)) => match parse_qasm(qasm) {
            Ok(c) => ("qasm".to_string(), c),
            Err(e) => {
                return Response::Error {
                    kind: "bad_qasm".to_string(),
                    message: e.to_string(),
                }
            }
        },
        (None, None) => {
            return Response::Error {
                kind: "bad_request".to_string(),
                message: "compile needs a benchmark or qasm".to_string(),
            }
        }
    };
    let now = Instant::now();
    let deadline = req
        .deadline_ms
        .map(Duration::from_millis)
        .or(shared.opts.default_deadline);
    let (tx, rx) = mpsc::channel();
    let job = Job {
        label,
        circuit,
        preset: req.config,
        slot,
        deadline_ms: deadline.map(|d| d.as_millis() as u64),
        deadline_at: deadline.map(|d| now + d),
        enqueued: now,
        resp: tx,
    };
    match shared.queue.push(&req.tenant, req.priority, job) {
        Ok(_depth) => {
            shared.counters.accepted.fetch_add(1, Ordering::SeqCst);
            paqoc_telemetry::counter("serve.accepted", 1);
            paqoc_telemetry::set_gauge("serve.queue_depth", shared.queue.len() as f64);
            paqoc_telemetry::set_gauge("serve.tenants", shared.queue.tenant_count() as f64);
            // Blocks until a worker answers. Drain guarantees every
            // admitted job is answered or shed, so this always ends.
            match rx.recv() {
                Ok(resp) => resp,
                Err(_) => Response::Error {
                    kind: "internal".to_string(),
                    message: "worker dropped the request".to_string(),
                },
            }
        }
        Err(PushError::Draining) => {
            shared
                .counters
                .draining_rejects
                .fetch_add(1, Ordering::SeqCst);
            paqoc_telemetry::counter("serve.draining_rejects", 1);
            Response::Draining
        }
        Err(e) => {
            shared.counters.overloaded.fetch_add(1, Ordering::SeqCst);
            paqoc_telemetry::counter("serve.overloaded", 1);
            let (scope, depth, cap) = match e {
                PushError::TenantFull { depth, cap } => ("tenant", depth, cap),
                PushError::QueueFull { depth, cap } => ("queue", depth, cap),
                PushError::TooManyTenants { tenants, cap } => ("tenants", tenants, cap),
                PushError::Draining => unreachable!("handled above"),
            };
            Response::Overloaded {
                scope: scope.to_string(),
                depth: depth as u64,
                cap: cap as u64,
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        match shared.queue.pop(TICK) {
            Pop::TimedOut => continue,
            Pop::Drained => return,
            Pop::Item(job) => {
                paqoc_telemetry::set_gauge("serve.queue_depth", shared.queue.len() as f64);
                let resp = serve_job(&job, shared);
                let shed = matches!(resp, Response::Draining | Response::Expired { .. });
                if shed {
                    shared.counters.shed.fetch_add(1, Ordering::SeqCst);
                    paqoc_telemetry::counter("serve.shed", 1);
                } else {
                    shared.counters.completed.fetch_add(1, Ordering::SeqCst);
                    paqoc_telemetry::counter("serve.completed", 1);
                }
                let _ = job.resp.send(resp);
            }
        }
    }
}

fn serve_job(job: &Job, shared: &Arc<Shared>) -> Response {
    let now = Instant::now();
    let queue_ms = now.duration_since(job.enqueued).as_millis() as u64;
    // During drain the backlog is shed, not compiled: admitted clients
    // get a prompt typed answer and the daemon exits quickly.
    if shared.draining.load(Ordering::SeqCst) {
        return Response::Draining;
    }
    // Expired in the queue: shed before any compilation work.
    if let (Some(at), Some(ms)) = (job.deadline_at, job.deadline_ms) {
        if now >= at {
            paqoc_telemetry::counter("serve.expired", 1);
            return Response::Expired {
                queue_ms,
                deadline_ms: ms,
            };
        }
    }
    shared.counters.active.fetch_add(1, Ordering::SeqCst);
    let remaining = job.deadline_at.map(|at| at.saturating_duration_since(now));
    let mut opts = match job.preset {
        ConfigPreset::M0 => PipelineOptions::m0(),
        ConfigPreset::Tuned => PipelineOptions::m_tuned(),
        ConfigPreset::Inf => PipelineOptions::m_inf(),
    };
    opts.threads = Some(1);
    opts.shared_table = Some(job.slot.table.clone());
    opts.deadline = remaining;
    // Belt and braces: the pipeline's own guard re-checks that the
    // slot's device really belongs to the backend the job names.
    opts.backend = Some(job.slot.name.clone());
    let started = Instant::now();
    let result = try_compile_batch(
        &job.circuit,
        &job.slot.device,
        shared.factory.clone(),
        &opts,
    );
    let compile_ms = started.elapsed().as_millis() as u64;
    shared.counters.active.fetch_sub(1, Ordering::SeqCst);
    match result {
        Ok(r) => {
            let mut degradations = job.slot.base_degradations.clone();
            degradations.extend(r.degradations);
            Response::Ok(CompileReply {
                benchmark: job.label.clone(),
                latency_ns: r.latency_ns,
                latency_dt: r.latency_dt,
                esp: r.esp,
                partial: r.partial,
                pulses_generated: r.stats.pulses_generated as u64,
                cache_hits: r.stats.cache_hits as u64,
                store_hits: r.stats.store_hits as u64,
                cost_units: r.stats.cost_units,
                degradations,
                queue_ms,
                compile_ms,
                budget: job.deadline_ms.map(|deadline_ms| Budget {
                    deadline_ms,
                    queue_ms,
                    remaining_ms: remaining.map(|d| d.as_millis() as u64).unwrap_or(0),
                }),
            })
        }
        Err(e) => Response::Error {
            kind: e.kind().to_string(),
            message: e.to_string(),
        },
    }
}
