//! Blocking client, retry policy, and the QPS replay driver.
//!
//! [`Client`] speaks one framed connection; [`Client::call_retrying`]
//! adds jittered exponential backoff with reconnect — the polite way to
//! meet an overloaded or restarting server. [`replay`] is the load
//! generator: it drives the Table-I benchmark corpus at a configured
//! QPS from a pool of worker threads (each its own connection and
//! tenant), collects latency percentiles in per-thread
//! [`Histogram`] sketches, and merges them into a [`LoadReport`].

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ConfigPreset, FrameError, Request,
    Response, DEFAULT_MAX_FRAME_BYTES,
};
use paqoc_math::Rng;
use paqoc_telemetry::json::Value;
use paqoc_telemetry::Histogram;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Where the server lives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address (`host:port`).
    Tcp(String),
    /// A unix-domain socket path.
    #[cfg(unix)]
    Uds(PathBuf),
}

impl Endpoint {
    /// Parses `"unix:/path/to.sock"` or `"host:port"`.
    pub fn parse(s: &str) -> Endpoint {
        #[cfg(unix)]
        if let Some(path) = s.strip_prefix("unix:") {
            return Endpoint::Uds(PathBuf::from(path));
        }
        Endpoint::Tcp(s.to_string())
    }
}

/// Why a call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or reconnecting failed.
    Connect(std::io::Error),
    /// The conversation broke mid-call.
    Frame(FrameError),
    /// The server answered a different request id than asked.
    IdMismatch {
        /// The id sent.
        sent: u64,
        /// The id received.
        got: u64,
    },
    /// Retries exhausted; holds the last error's description.
    RetriesExhausted(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Frame(e) => write!(f, "protocol failure: {e}"),
            ClientError::IdMismatch { sent, got } => {
                write!(f, "response id {got} does not match request id {sent}")
            }
            ClientError::RetriesExhausted(last) => write!(f, "retries exhausted; last: {last}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// Retry-with-backoff configuration for [`Client::call_retrying`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts after the first (0 disables retry).
    pub retries: u32,
    /// First backoff; doubles per attempt.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
    /// Whether a typed `overloaded` response is retried (with backoff)
    /// or returned to the caller as-is.
    pub retry_overloaded: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            base: Duration::from_millis(25),
            max: Duration::from_secs(2),
            retry_overloaded: false,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry attempt `attempt` (0-based):
    /// `base * 2^attempt`, capped at `max`, scaled by a uniform factor
    /// in `[0.5, 1.0)` so a thundering herd decorrelates.
    pub fn backoff(&self, attempt: u32, rng: &mut Rng) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max);
        exp.mul_f64(0.5 + 0.5 * rng.random::<f64>())
    }
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Uds(s) => s.flush(),
        }
    }
}

/// A blocking framed connection to a [`crate::Server`].
pub struct Client {
    endpoint: Endpoint,
    timeout: Duration,
    max_frame_bytes: usize,
    stream: Option<Stream>,
}

impl Client {
    /// Creates a client for `endpoint` (lazily connected) with the
    /// given per-call socket timeout.
    pub fn new(endpoint: Endpoint, timeout: Duration) -> Client {
        Client {
            endpoint,
            timeout,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            stream: None,
        }
    }

    fn connect(&mut self) -> Result<&mut Stream, ClientError> {
        if self.stream.is_none() {
            let stream = match &self.endpoint {
                Endpoint::Tcp(addr) => {
                    let s = TcpStream::connect(addr).map_err(ClientError::Connect)?;
                    s.set_read_timeout(Some(self.timeout))
                        .map_err(ClientError::Connect)?;
                    s.set_write_timeout(Some(self.timeout))
                        .map_err(ClientError::Connect)?;
                    Stream::Tcp(s)
                }
                #[cfg(unix)]
                Endpoint::Uds(path) => {
                    let s = UnixStream::connect(path).map_err(ClientError::Connect)?;
                    s.set_read_timeout(Some(self.timeout))
                        .map_err(ClientError::Connect)?;
                    s.set_write_timeout(Some(self.timeout))
                        .map_err(ClientError::Connect)?;
                    Stream::Uds(s)
                }
            };
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Sends one request and waits for its response. A broken
    /// conversation drops the connection (the next call reconnects).
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let max = self.max_frame_bytes;
        let result = (|| {
            let stream = self.connect()?;
            write_frame(stream, &encode_request(req), max)?;
            let frame = read_frame(stream, max)?.ok_or(FrameError::Truncated { missing: 4 })?;
            let (id, resp) = decode_response(&frame)?;
            if id != req.id {
                return Err(ClientError::IdMismatch {
                    sent: req.id,
                    got: id,
                });
            }
            Ok(resp)
        })();
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    /// [`Client::call`] with jittered exponential backoff: transport
    /// failures always retry (reconnecting); `overloaded` responses
    /// retry when the policy says so.
    pub fn call_retrying(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
        rng: &mut Rng,
    ) -> Result<Response, ClientError> {
        let mut last = String::new();
        for attempt in 0..=policy.retries {
            match self.call(req) {
                Ok(Response::Overloaded { scope, depth, cap })
                    if policy.retry_overloaded && attempt < policy.retries =>
                {
                    last = format!("overloaded ({scope} {depth}/{cap})");
                }
                Ok(resp) => return Ok(resp),
                Err(ClientError::IdMismatch { sent, got }) => {
                    // A desynchronized stream will not heal by retrying
                    // the same conversation.
                    return Err(ClientError::IdMismatch { sent, got });
                }
                Err(e) if attempt < policy.retries => last = e.to_string(),
                Err(e) => return Err(e),
            }
            std::thread::sleep(policy.backoff(attempt, rng));
        }
        Err(ClientError::RetriesExhausted(last))
    }
}

/// Load-generation configuration for [`replay`].
#[derive(Clone, Debug)]
pub struct ReplayOptions {
    /// Total requests to send.
    pub requests: usize,
    /// Target send rate, requests per second (0 = as fast as possible).
    pub qps: f64,
    /// Sender threads (each with its own connection).
    pub concurrency: usize,
    /// Distinct tenants to spread requests over (`t0`, `t1`, …).
    pub tenants: usize,
    /// Per-request deadline forwarded to the server.
    pub deadline_ms: Option<u64>,
    /// Seed for backoff jitter and benchmark shuffling.
    pub seed: u64,
    /// `true` replays only the quick corpus (the smallest benchmarks);
    /// `false` cycles the full 17-benchmark Table-I suite.
    pub quick: bool,
    /// Pipeline preset for every request.
    pub preset: ConfigPreset,
    /// Backend every request names (`None` uses the server default).
    pub backend: Option<String>,
    /// Retry policy per request.
    pub retry: RetryPolicy,
    /// Per-call socket timeout.
    pub timeout: Duration,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            requests: 34,
            qps: 0.0,
            concurrency: 4,
            tenants: 2,
            deadline_ms: None,
            seed: 0x10AD,
            quick: true,
            preset: ConfigPreset::M0,
            backend: None,
            retry: RetryPolicy::default(),
            timeout: Duration::from_secs(30),
        }
    }
}

/// The corpus `--quick` replays: the bench harness's 3-benchmark CI
/// subset (its `QUICK_SUBSET`) plus the next-smallest Table-I entries,
/// so a smoke replay exercises several distinct pulse-key families.
pub const QUICK_CORPUS: [&str; 5] = ["mod5d2_64", "rd32_270", "bv", "decod24-v1_41", "qft"];

/// What a [`replay`] run observed.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests sent (after retries collapsed to one outcome each).
    pub sent: u64,
    /// Clean compile results.
    pub ok: u64,
    /// Degraded compile results (valid, with typed concessions).
    pub degraded: u64,
    /// Typed `overloaded` rejections.
    pub overloaded: u64,
    /// Typed `expired` sheds.
    pub expired: u64,
    /// Typed `draining` answers.
    pub draining: u64,
    /// Typed server `error` responses.
    pub errors: u64,
    /// Transport failures that exhausted retries.
    pub transport_errors: u64,
    /// End-to-end latency sketch, milliseconds (answered requests only).
    pub latency_ms: Histogram,
    /// Pulses the server generated across answered requests.
    pub pulses_generated: u64,
    /// Pulse-table hits across answered requests.
    pub cache_hits: u64,
    /// Store-served hits across answered requests.
    pub store_hits: u64,
}

impl LoadReport {
    /// Requests that got a compile result (clean or degraded).
    pub fn answered(&self) -> u64 {
        self.ok + self.degraded
    }

    /// Requests shed or rejected with a typed response.
    pub fn shed(&self) -> u64 {
        self.overloaded + self.expired + self.draining
    }

    /// Pulse-table hit rate across answered requests: hits over
    /// (hits + misses). 0 when nothing was answered.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.pulses_generated;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    fn absorb(&mut self, other: &LoadReport) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.overloaded += other.overloaded;
        self.expired += other.expired;
        self.draining += other.draining;
        self.errors += other.errors;
        self.transport_errors += other.transport_errors;
        self.latency_ms.merge(&other.latency_ms);
        self.pulses_generated += other.pulses_generated;
        self.cache_hits += other.cache_hits;
        self.store_hits += other.store_hits;
    }

    /// Serializes the report as one JSON object (the `paqoc-load`
    /// stdout contract consumed by verify.sh).
    pub fn to_json(&self) -> String {
        let mut obj = BTreeMap::new();
        let mut put = |k: &str, v: f64| {
            obj.insert(k.to_string(), Value::Num(v));
        };
        put("sent", self.sent as f64);
        put("ok", self.ok as f64);
        put("degraded", self.degraded as f64);
        put("overloaded", self.overloaded as f64);
        put("expired", self.expired as f64);
        put("draining", self.draining as f64);
        put("errors", self.errors as f64);
        put("transport_errors", self.transport_errors as f64);
        put("answered", self.answered() as f64);
        put("shed", self.shed() as f64);
        put("p50_ms", self.latency_ms.p50());
        put("p90_ms", self.latency_ms.p90());
        put("p99_ms", self.latency_ms.p99());
        put("mean_ms", self.latency_ms.mean());
        put("pulses_generated", self.pulses_generated as f64);
        put("cache_hits", self.cache_hits as f64);
        put("store_hits", self.store_hits as f64);
        put("hit_rate", self.hit_rate());
        Value::Obj(obj).to_json()
    }

    fn record(&mut self, resp: &Response, elapsed: Duration) {
        self.sent += 1;
        match resp {
            Response::Ok(r) => {
                if r.degraded() {
                    self.degraded += 1;
                } else {
                    self.ok += 1;
                }
                self.latency_ms.record(elapsed.as_secs_f64() * 1e3);
                self.pulses_generated += r.pulses_generated;
                self.cache_hits += r.cache_hits;
                self.store_hits += r.store_hits;
            }
            Response::Overloaded { .. } => self.overloaded += 1,
            Response::Expired { .. } => self.expired += 1,
            Response::Draining => self.draining += 1,
            Response::Error { .. } | Response::Pong { .. } | Response::Stats(_) => {
                self.errors += 1;
            }
        }
    }
}

/// Drives the benchmark corpus against a server at a configured QPS
/// and returns merged latency/outcome statistics (see [`ReplayOptions`]).
pub fn replay(endpoint: &Endpoint, opts: &ReplayOptions) -> LoadReport {
    let corpus: Vec<String> = if opts.quick {
        QUICK_CORPUS.iter().map(|s| s.to_string()).collect()
    } else {
        paqoc_workloads::all_benchmarks()
            .iter()
            .map(|b| b.name.to_string())
            .collect()
    };
    let start = Instant::now();
    let cursor = AtomicU64::new(0);
    let total = opts.requests as u64;
    let threads = opts.concurrency.clamp(1, 64);
    let mut reports: Vec<LoadReport> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let corpus = &corpus;
            let cursor = &cursor;
            let endpoint = endpoint.clone();
            handles.push(scope.spawn(move || {
                let mut report = LoadReport::default();
                let mut rng = Rng::seed_from_u64(opts.seed ^ (t as u64).wrapping_mul(0x9E37));
                let mut client = Client::new(endpoint, opts.timeout);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    // Open-loop pacing: request i is due at start + i/qps.
                    if opts.qps > 0.0 {
                        let due = start + Duration::from_secs_f64(i as f64 / opts.qps);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                    }
                    let mut req = Request::compile(
                        i + 1,
                        &format!("t{}", i as usize % opts.tenants.max(1)),
                        &corpus[i as usize % corpus.len()],
                    );
                    req.deadline_ms = opts.deadline_ms;
                    req.config = opts.preset;
                    req.backend = opts.backend.clone();
                    let sent_at = Instant::now();
                    match client.call_retrying(&req, &opts.retry, &mut rng) {
                        Ok(resp) => report.record(&resp, sent_at.elapsed()),
                        Err(_) => {
                            report.sent += 1;
                            report.transport_errors += 1;
                        }
                    }
                }
                report
            }));
        }
        for h in handles {
            if let Ok(r) = h.join() {
                reports.push(r);
            }
        }
    });
    let mut merged = LoadReport::default();
    for r in &reports {
        merged.absorb(r);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_corpus_names_exist() {
        for name in QUICK_CORPUS {
            assert!(
                paqoc_workloads::benchmark(name).is_some(),
                "quick-corpus benchmark {name:?} missing from Table I"
            );
        }
    }

    #[test]
    fn backoff_grows_jitters_and_caps() {
        let policy = RetryPolicy {
            retries: 8,
            base: Duration::from_millis(10),
            max: Duration::from_millis(200),
            retry_overloaded: true,
        };
        let mut rng = Rng::seed_from_u64(1);
        for attempt in 0..8 {
            let b = policy.backoff(attempt, &mut rng);
            let ceiling = Duration::from_millis(10 * (1 << attempt)).min(policy.max);
            assert!(b <= ceiling, "attempt {attempt}: {b:?} > {ceiling:?}");
            assert!(
                b >= ceiling.mul_f64(0.5),
                "attempt {attempt}: {b:?} under half of {ceiling:?}"
            );
        }
    }

    #[test]
    fn endpoint_parse_distinguishes_schemes() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:4500"),
            Endpoint::Tcp("127.0.0.1:4500".to_string())
        );
        #[cfg(unix)]
        assert_eq!(
            Endpoint::parse("unix:/tmp/paqoc.sock"),
            Endpoint::Uds(PathBuf::from("/tmp/paqoc.sock"))
        );
    }

    #[test]
    fn load_report_json_has_the_verify_contract_fields() {
        let mut report = LoadReport::default();
        report.record(
            &Response::Overloaded {
                scope: "tenant".to_string(),
                depth: 4,
                cap: 4,
            },
            Duration::from_millis(1),
        );
        let v = paqoc_telemetry::json::parse(&report.to_json()).expect("valid json");
        for key in [
            "sent",
            "answered",
            "shed",
            "overloaded",
            "p99_ms",
            "hit_rate",
        ] {
            assert!(v.get(key).is_some(), "report json missing {key}");
        }
        assert_eq!(v.get("overloaded").and_then(Value::as_num), Some(1.0));
    }
}
