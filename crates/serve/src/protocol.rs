//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message is a 4-byte **big-endian** length prefix followed by
//! exactly that many bytes of UTF-8 JSON (the hand-rolled
//! [`paqoc_telemetry::json`] dialect — objects, arrays, strings,
//! numbers, booleans, null). The parser is deliberately strict:
//!
//! * The advertised length is validated against a hard cap **before any
//!   allocation** — a hostile client advertising a 4 GiB frame is
//!   rejected with [`FrameError::TooLarge`] without the server ever
//!   reserving a byte for it.
//! * A clean EOF on a frame boundary is a normal close
//!   ([`read_frame`] returns `Ok(None)`); EOF anywhere inside a frame
//!   is [`FrameError::Truncated`].
//! * Payloads that are not valid JSON, or JSON that is not a valid
//!   request, are typed errors — never panics.
//!
//! Requests carry an `id` the server echoes back, so a client can
//! pipeline. Responses carry a `status` discriminant; compile results
//! distinguish `"ok"` from `"degraded"` (valid result, concessions
//! made) and every [`Degradation`] crosses the wire as a typed object
//! (`{"kind": "store_read_only", ...}`) with full-fidelity decode.

use paqoc_core::Degradation;
use paqoc_telemetry::json::{parse, Value};
use std::collections::BTreeMap;
use std::io::{Read, Write};

/// Default hard cap on a frame's payload size (1 MiB). Far above any
/// legitimate request — the 17-benchmark corpus serializes in tens of
/// kilobytes — and far below anything that could hurt the server.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Longest accepted tenant name.
pub const MAX_TENANT_LEN: usize = 64;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The advertised payload length exceeds the cap. Detected before
    /// any allocation.
    TooLarge {
        /// The length the prefix advertised.
        advertised: u64,
        /// The configured cap.
        cap: u64,
    },
    /// The peer closed the connection mid-frame.
    Truncated {
        /// Bytes the frame still owed when the stream ended.
        missing: usize,
    },
    /// An underlying socket error (including read timeouts).
    Io(std::io::Error),
    /// The payload is not valid JSON.
    BadJson(String),
    /// The payload is JSON but not a valid message.
    BadRequest(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge { advertised, cap } => {
                write!(f, "frame of {advertised} bytes exceeds the {cap}-byte cap")
            }
            FrameError::Truncated { missing } => {
                write!(f, "stream ended {missing} bytes short of the frame")
            }
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::BadJson(msg) => write!(f, "payload is not valid JSON: {msg}"),
            FrameError::BadRequest(msg) => write!(f, "invalid message: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// A stable machine-readable tag for this error (the `kind` field
    /// of an error response).
    pub fn kind(&self) -> &'static str {
        match self {
            FrameError::TooLarge { .. } => "frame_too_large",
            FrameError::Truncated { .. } => "truncated",
            FrameError::Io(_) => "io",
            FrameError::BadJson(_) => "bad_json",
            FrameError::BadRequest(_) => "bad_request",
        }
    }
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean close (EOF
/// exactly on a frame boundary); everything else that is not a complete
/// frame within `max_bytes` is a typed [`FrameError`]. The advertised
/// length is checked against `max_bytes` **before** the payload buffer
/// is allocated.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(FrameError::Truncated { missing: 4 - got });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_bytes {
        return Err(FrameError::TooLarge {
            advertised: len as u64,
            cap: max_bytes as u64,
        });
    }
    if len == 0 {
        return Err(FrameError::BadRequest("empty frame".to_string()));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    missing: len - filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(payload))
}

/// Writes one length-prefixed frame. Fails (without writing) when the
/// payload exceeds `max_bytes` or `u32::MAX`.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max_bytes: usize) -> Result<(), FrameError> {
    if payload.len() > max_bytes || payload.len() > u32::MAX as usize {
        return Err(FrameError::TooLarge {
            advertised: payload.len() as u64,
            cap: max_bytes.min(u32::MAX as usize) as u64,
        });
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// What a request asks the server to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Compile a benchmark or inline QASM circuit.
    Compile,
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Server counters snapshot; answered inline.
    Stats,
    /// Ask the server to drain and exit (the remote SIGTERM).
    Drain,
}

impl Op {
    fn as_str(self) -> &'static str {
        match self {
            Op::Compile => "compile",
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::Drain => "drain",
        }
    }

    fn parse(s: &str) -> Option<Op> {
        match s {
            "compile" => Some(Op::Compile),
            "ping" => Some(Op::Ping),
            "stats" => Some(Op::Stats),
            "drain" => Some(Op::Drain),
            _ => None,
        }
    }
}

/// Which pipeline preset a compile request runs under.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConfigPreset {
    /// `paqoc(M=0)` — no APA basis (the cheap default).
    #[default]
    M0,
    /// `paqoc(M=tuned)`.
    Tuned,
    /// `paqoc(M=inf)`.
    Inf,
}

impl ConfigPreset {
    /// The wire name of this preset.
    pub fn as_str(self) -> &'static str {
        match self {
            ConfigPreset::M0 => "m0",
            ConfigPreset::Tuned => "tuned",
            ConfigPreset::Inf => "inf",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<ConfigPreset> {
        match s {
            "m0" => Some(ConfigPreset::M0),
            "tuned" => Some(ConfigPreset::Tuned),
            "inf" => Some(ConfigPreset::Inf),
            _ => None,
        }
    }
}

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// What to do.
    pub op: Op,
    /// Tenant the request bills its queue slot to.
    pub tenant: String,
    /// Name of a Table-I benchmark to compile (exclusive with `qasm`).
    pub benchmark: Option<String>,
    /// Inline OpenQASM 2 source to compile (exclusive with `benchmark`).
    pub qasm: Option<String>,
    /// End-to-end budget in milliseconds, queue time included.
    pub deadline_ms: Option<u64>,
    /// Scheduling priority within the tenant (higher first).
    pub priority: f64,
    /// Pipeline preset.
    pub config: ConfigPreset,
    /// Device backend to compile for (a `paqoc-backend` registry
    /// name). `None` uses the server's default backend.
    pub backend: Option<String>,
}

impl Request {
    /// A compile request for a named benchmark.
    pub fn compile(id: u64, tenant: &str, benchmark: &str) -> Request {
        Request {
            id,
            op: Op::Compile,
            tenant: tenant.to_string(),
            benchmark: Some(benchmark.to_string()),
            qasm: None,
            deadline_ms: None,
            priority: 0.0,
            config: ConfigPreset::M0,
            backend: None,
        }
    }

    /// A bare control request (`ping` / `stats` / `drain`).
    pub fn control(id: u64, op: Op) -> Request {
        Request {
            id,
            op,
            tenant: "default".to_string(),
            benchmark: None,
            qasm: None,
            deadline_ms: None,
            priority: 0.0,
            config: ConfigPreset::M0,
            backend: None,
        }
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<String, Value>>(),
    )
}

fn num(n: f64) -> Value {
    Value::Num(n)
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    v.get(key)?.as_num().filter(|n| *n >= 0.0).map(|n| n as u64)
}

fn get_f64(v: &Value, key: &str) -> Option<f64> {
    v.get(key)?.as_num()
}

fn get_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    v.get(key)?.as_str()
}

/// Serializes a request to its wire JSON bytes.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut pairs = vec![
        ("id", num(req.id as f64)),
        ("op", s(req.op.as_str())),
        ("tenant", s(&req.tenant)),
        ("config", s(req.config.as_str())),
    ];
    if let Some(b) = &req.benchmark {
        pairs.push(("benchmark", s(b)));
    }
    if let Some(q) = &req.qasm {
        pairs.push(("qasm", s(q)));
    }
    if let Some(d) = req.deadline_ms {
        pairs.push(("deadline_ms", num(d as f64)));
    }
    if req.priority != 0.0 {
        pairs.push(("priority", num(req.priority)));
    }
    if let Some(b) = &req.backend {
        pairs.push(("backend", s(b)));
    }
    obj(pairs).to_json().into_bytes()
}

/// `true` when every character is fit for a tenant name: printable
/// ASCII with no quotes or control characters, so names survive logs,
/// JSON and file paths without surprises.
fn tenant_name_ok(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_LEN
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'))
}

/// Decodes and validates a request from wire bytes.
pub fn decode_request(bytes: &[u8]) -> Result<Request, FrameError> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| FrameError::BadJson(format!("not UTF-8: {e}")))?;
    let v = parse(text).map_err(|e| FrameError::BadJson(e.to_string()))?;
    if !matches!(v, Value::Obj(_)) {
        return Err(FrameError::BadRequest("request must be an object".into()));
    }
    let op_name =
        get_str(&v, "op").ok_or_else(|| FrameError::BadRequest("missing op".to_string()))?;
    let op = Op::parse(op_name)
        .ok_or_else(|| FrameError::BadRequest(format!("unknown op {op_name:?}")))?;
    let id = get_u64(&v, "id").unwrap_or(0);
    let tenant = get_str(&v, "tenant").unwrap_or("default").to_string();
    if !tenant_name_ok(&tenant) {
        return Err(FrameError::BadRequest(format!(
            "invalid tenant name ({} chars; [A-Za-z0-9._:-] only, max {MAX_TENANT_LEN})",
            tenant.len()
        )));
    }
    let benchmark = get_str(&v, "benchmark").map(str::to_string);
    let qasm = get_str(&v, "qasm").map(str::to_string);
    if op == Op::Compile && benchmark.is_none() == qasm.is_none() {
        return Err(FrameError::BadRequest(
            "compile needs exactly one of benchmark or qasm".to_string(),
        ));
    }
    let config = match get_str(&v, "config") {
        None => ConfigPreset::M0,
        Some(name) => ConfigPreset::parse(name)
            .ok_or_else(|| FrameError::BadRequest(format!("unknown config {name:?}")))?,
    };
    let priority = get_f64(&v, "priority").unwrap_or(0.0);
    if !priority.is_finite() {
        return Err(FrameError::BadRequest(
            "priority must be finite".to_string(),
        ));
    }
    let backend = get_str(&v, "backend").map(str::to_string);
    if let Some(b) = &backend {
        // Same shape rules as tenant names: backend names reach logs,
        // store paths and telemetry labels.
        if !tenant_name_ok(b) {
            return Err(FrameError::BadRequest(format!(
                "invalid backend name ({} chars; [A-Za-z0-9._:-] only, max {MAX_TENANT_LEN})",
                b.len()
            )));
        }
    }
    Ok(Request {
        id,
        op,
        tenant,
        benchmark,
        qasm,
        deadline_ms: get_u64(&v, "deadline_ms"),
        priority,
        config,
        backend,
    })
}

/// The deadline accounting echoed with a compile reply, so a client can
/// see where its budget went.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Budget {
    /// The end-to-end budget the request carried.
    pub deadline_ms: u64,
    /// Milliseconds spent queued before a worker picked the request up.
    pub queue_ms: u64,
    /// Milliseconds of budget left when compilation started (what
    /// `PipelineOptions::deadline` received).
    pub remaining_ms: u64,
}

/// A successful (possibly degraded) compile result on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileReply {
    /// What was compiled (benchmark name, or `"qasm"` for inline source).
    pub benchmark: String,
    /// Whole-circuit pulse latency, nanoseconds.
    pub latency_ns: f64,
    /// Whole-circuit pulse latency in device cycles.
    pub latency_dt: u64,
    /// Estimated success probability.
    pub esp: f64,
    /// `true` when a deadline or budget cut pulse work short.
    pub partial: bool,
    /// Pulses actually generated (table misses).
    pub pulses_generated: u64,
    /// Pulse-table hits (includes `store_hits`).
    pub cache_hits: u64,
    /// Hits served from the persistent store.
    pub store_hits: u64,
    /// Synthetic pulse-generation cost spent.
    pub cost_units: f64,
    /// Every concession the compilation made, typed.
    pub degradations: Vec<Degradation>,
    /// Milliseconds the request waited in the admission queue.
    pub queue_ms: u64,
    /// Milliseconds the compilation itself took.
    pub compile_ms: u64,
    /// Deadline accounting, when the request carried a deadline.
    pub budget: Option<Budget>,
}

impl CompileReply {
    /// `true` when the result is valid but made concessions — the wire
    /// status is then `"degraded"` instead of `"ok"`.
    pub fn degraded(&self) -> bool {
        self.partial || !self.degradations.is_empty()
    }
}

/// Server counters, answered by the `stats` op.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServerStats {
    /// Requests admitted to the queue since start.
    pub accepted: u64,
    /// Admitted requests answered with a compile result or error.
    pub completed: u64,
    /// Admitted requests shed (expired in queue, or drain).
    pub shed: u64,
    /// Requests rejected at admission with `overloaded`.
    pub overloaded: u64,
    /// Requests rejected because the server was draining.
    pub draining_rejects: u64,
    /// Frames that failed to parse.
    pub bad_frames: u64,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// Requests currently compiling.
    pub active: u64,
    /// Tenants with queued work.
    pub tenants: u64,
    /// Entries in the shared pulse table.
    pub table_len: u64,
    /// `true` once drain has begun.
    pub draining: bool,
    /// Persistent-store condition: `"writer"`, `"read-only"`,
    /// `"unavailable"` or `"none"`.
    pub store: String,
}

/// Everything the server can answer.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A compile result (wire status `"ok"` or `"degraded"`).
    Ok(CompileReply),
    /// Rejected at admission: a queue is full.
    Overloaded {
        /// Which limit tripped (`"tenant"`, `"queue"`, `"tenants"`).
        scope: String,
        /// Depth of the full queue.
        depth: u64,
        /// Its capacity.
        cap: u64,
    },
    /// Rejected or shed because the server is draining.
    Draining,
    /// Shed before compilation: the deadline expired in the queue.
    Expired {
        /// Milliseconds the request sat queued.
        queue_ms: u64,
        /// The budget it carried.
        deadline_ms: u64,
    },
    /// The request failed outright.
    Error {
        /// Machine-readable error tag ([`FrameError::kind`] or
        /// `CompileError::kind`).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to `ping`.
    Pong {
        /// `true` once drain has begun.
        draining: bool,
    },
    /// Answer to `stats`.
    Stats(ServerStats),
}

impl Response {
    /// The wire `status` discriminant.
    pub fn status(&self) -> &'static str {
        match self {
            Response::Ok(r) if r.degraded() => "degraded",
            Response::Ok(_) => "ok",
            Response::Overloaded { .. } => "overloaded",
            Response::Draining => "draining",
            Response::Expired { .. } => "expired",
            Response::Error { .. } => "error",
            Response::Pong { .. } => "pong",
            Response::Stats(_) => "stats",
        }
    }
}

/// Serializes one [`Degradation`] as a typed wire object. Every variant
/// round-trips through [`degradation_from_value`] without loss.
pub fn degradation_to_value(d: &Degradation) -> Value {
    let mut pairs: Vec<(&str, Value)> = vec![("kind", s(d.kind()))];
    match d {
        Degradation::MergeRolledBack {
            gates,
            qubits,
            reason,
        } => {
            pairs.push(("gates", num(*gates as f64)));
            pairs.push(("qubits", num(*qubits as f64)));
            pairs.push(("reason", s(reason)));
        }
        Degradation::EstimatorFallback { gates, reason } => {
            pairs.push(("gates", num(*gates as f64)));
            pairs.push(("reason", s(reason)));
        }
        Degradation::DeadlineHit { phase } => pairs.push(("phase", s(phase))),
        Degradation::CostBudgetExhausted { spent, budget } => {
            pairs.push(("spent", num(*spent)));
            pairs.push(("budget", num(*budget)));
        }
        Degradation::SourcePanic { gates, message } => {
            pairs.push(("gates", num(*gates as f64)));
            pairs.push(("message", s(message)));
        }
        Degradation::StoreUnavailable { reason } | Degradation::StoreReadOnly { reason } => {
            pairs.push(("reason", s(reason)));
        }
    }
    obj(pairs)
}

/// Decodes a typed degradation object (inverse of
/// [`degradation_to_value`]). `None` for unknown kinds or missing
/// fields — forward compatibility, not an error.
pub fn degradation_from_value(v: &Value) -> Option<Degradation> {
    let reason = || get_str(v, "reason").unwrap_or("").to_string();
    match get_str(v, "kind")? {
        "merge_rolled_back" => Some(Degradation::MergeRolledBack {
            gates: get_u64(v, "gates")? as usize,
            qubits: get_u64(v, "qubits")? as usize,
            reason: reason(),
        }),
        "estimator_fallback" => Some(Degradation::EstimatorFallback {
            gates: get_u64(v, "gates")? as usize,
            reason: reason(),
        }),
        "deadline_hit" => Some(Degradation::DeadlineHit {
            phase: get_str(v, "phase")?.to_string(),
        }),
        "cost_budget_exhausted" => Some(Degradation::CostBudgetExhausted {
            spent: get_f64(v, "spent")?,
            budget: get_f64(v, "budget")?,
        }),
        "source_panic" => Some(Degradation::SourcePanic {
            gates: get_u64(v, "gates")? as usize,
            message: get_str(v, "message")?.to_string(),
        }),
        "store_unavailable" => Some(Degradation::StoreUnavailable { reason: reason() }),
        "store_read_only" => Some(Degradation::StoreReadOnly { reason: reason() }),
        _ => None,
    }
}

/// Serializes a response (echoing `id`) to its wire JSON bytes.
pub fn encode_response(id: u64, resp: &Response) -> Vec<u8> {
    let mut pairs: Vec<(&str, Value)> = vec![("id", num(id as f64)), ("status", s(resp.status()))];
    match resp {
        Response::Ok(r) => {
            pairs.push(("benchmark", s(&r.benchmark)));
            pairs.push(("latency_ns", num(r.latency_ns)));
            pairs.push(("latency_dt", num(r.latency_dt as f64)));
            pairs.push(("esp", num(r.esp)));
            pairs.push(("partial", Value::Bool(r.partial)));
            pairs.push(("pulses_generated", num(r.pulses_generated as f64)));
            pairs.push(("cache_hits", num(r.cache_hits as f64)));
            pairs.push(("store_hits", num(r.store_hits as f64)));
            pairs.push(("cost_units", num(r.cost_units)));
            pairs.push((
                "degradations",
                Value::Arr(r.degradations.iter().map(degradation_to_value).collect()),
            ));
            pairs.push(("queue_ms", num(r.queue_ms as f64)));
            pairs.push(("compile_ms", num(r.compile_ms as f64)));
            if let Some(b) = r.budget {
                pairs.push((
                    "budget",
                    obj(vec![
                        ("deadline_ms", num(b.deadline_ms as f64)),
                        ("queue_ms", num(b.queue_ms as f64)),
                        ("remaining_ms", num(b.remaining_ms as f64)),
                    ]),
                ));
            }
        }
        Response::Overloaded { scope, depth, cap } => {
            pairs.push(("scope", s(scope)));
            pairs.push(("depth", num(*depth as f64)));
            pairs.push(("cap", num(*cap as f64)));
        }
        Response::Draining => {}
        Response::Expired {
            queue_ms,
            deadline_ms,
        } => {
            pairs.push(("queue_ms", num(*queue_ms as f64)));
            pairs.push(("deadline_ms", num(*deadline_ms as f64)));
        }
        Response::Error { kind, message } => {
            pairs.push(("kind", s(kind)));
            pairs.push(("message", s(message)));
        }
        Response::Pong { draining } => pairs.push(("draining", Value::Bool(*draining))),
        Response::Stats(st) => {
            pairs.push(("accepted", num(st.accepted as f64)));
            pairs.push(("completed", num(st.completed as f64)));
            pairs.push(("shed", num(st.shed as f64)));
            pairs.push(("overloaded", num(st.overloaded as f64)));
            pairs.push(("draining_rejects", num(st.draining_rejects as f64)));
            pairs.push(("bad_frames", num(st.bad_frames as f64)));
            pairs.push(("queue_depth", num(st.queue_depth as f64)));
            pairs.push(("active", num(st.active as f64)));
            pairs.push(("tenants", num(st.tenants as f64)));
            pairs.push(("table_len", num(st.table_len as f64)));
            pairs.push(("draining", Value::Bool(st.draining)));
            pairs.push(("store", s(&st.store)));
        }
    }
    obj(pairs).to_json().into_bytes()
}

/// Decodes a response from wire bytes, returning the echoed id with it.
pub fn decode_response(bytes: &[u8]) -> Result<(u64, Response), FrameError> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| FrameError::BadJson(format!("not UTF-8: {e}")))?;
    let v = parse(text).map_err(|e| FrameError::BadJson(e.to_string()))?;
    let id = get_u64(&v, "id").unwrap_or(0);
    let status = get_str(&v, "status")
        .ok_or_else(|| FrameError::BadRequest("missing status".to_string()))?;
    let missing = |f: &str| FrameError::BadRequest(format!("{status} response missing {f}"));
    let resp = match status {
        "ok" | "degraded" => {
            let degradations = v
                .get("degradations")
                .and_then(Value::as_arr)
                .map(|items| items.iter().filter_map(degradation_from_value).collect())
                .unwrap_or_default();
            let budget = v.get("budget").and_then(|b| {
                Some(Budget {
                    deadline_ms: get_u64(b, "deadline_ms")?,
                    queue_ms: get_u64(b, "queue_ms")?,
                    remaining_ms: get_u64(b, "remaining_ms")?,
                })
            });
            Response::Ok(CompileReply {
                benchmark: get_str(&v, "benchmark").unwrap_or("").to_string(),
                latency_ns: get_f64(&v, "latency_ns").ok_or_else(|| missing("latency_ns"))?,
                latency_dt: get_u64(&v, "latency_dt").unwrap_or(0),
                esp: get_f64(&v, "esp").unwrap_or(0.0),
                partial: v.get("partial").and_then(Value::as_bool).unwrap_or(false),
                pulses_generated: get_u64(&v, "pulses_generated").unwrap_or(0),
                cache_hits: get_u64(&v, "cache_hits").unwrap_or(0),
                store_hits: get_u64(&v, "store_hits").unwrap_or(0),
                cost_units: get_f64(&v, "cost_units").unwrap_or(0.0),
                degradations,
                queue_ms: get_u64(&v, "queue_ms").unwrap_or(0),
                compile_ms: get_u64(&v, "compile_ms").unwrap_or(0),
                budget,
            })
        }
        "overloaded" => Response::Overloaded {
            scope: get_str(&v, "scope").unwrap_or("queue").to_string(),
            depth: get_u64(&v, "depth").unwrap_or(0),
            cap: get_u64(&v, "cap").unwrap_or(0),
        },
        "draining" => Response::Draining,
        "expired" => Response::Expired {
            queue_ms: get_u64(&v, "queue_ms").unwrap_or(0),
            deadline_ms: get_u64(&v, "deadline_ms").unwrap_or(0),
        },
        "error" => Response::Error {
            kind: get_str(&v, "kind").unwrap_or("unknown").to_string(),
            message: get_str(&v, "message").unwrap_or("").to_string(),
        },
        "pong" => Response::Pong {
            draining: v.get("draining").and_then(Value::as_bool).unwrap_or(false),
        },
        "stats" => Response::Stats(ServerStats {
            accepted: get_u64(&v, "accepted").unwrap_or(0),
            completed: get_u64(&v, "completed").unwrap_or(0),
            shed: get_u64(&v, "shed").unwrap_or(0),
            overloaded: get_u64(&v, "overloaded").unwrap_or(0),
            draining_rejects: get_u64(&v, "draining_rejects").unwrap_or(0),
            bad_frames: get_u64(&v, "bad_frames").unwrap_or(0),
            queue_depth: get_u64(&v, "queue_depth").unwrap_or(0),
            active: get_u64(&v, "active").unwrap_or(0),
            tenants: get_u64(&v, "tenants").unwrap_or(0),
            table_len: get_u64(&v, "table_len").unwrap_or(0),
            draining: v.get("draining").and_then(Value::as_bool).unwrap_or(false),
            store: get_str(&v, "store").unwrap_or("none").to_string(),
        }),
        other => {
            return Err(FrameError::BadRequest(format!("unknown status {other:?}")));
        }
    };
    Ok((id, resp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"ping\"}", DEFAULT_MAX_FRAME_BYTES).expect("write");
        let mut r = Cursor::new(buf);
        let frame = read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES)
            .expect("read")
            .expect("frame");
        assert_eq!(frame, b"{\"op\":\"ping\"}");
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES)
            .expect("clean eof")
            .is_none());
    }

    #[test]
    fn oversized_advertised_length_is_rejected_before_allocation() {
        // A 4 GiB advertised frame: only the 4 prefix bytes exist.
        let mut r = Cursor::new(0xFFFF_FFF0u32.to_be_bytes().to_vec());
        match read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES) {
            Err(FrameError::TooLarge { advertised, cap }) => {
                assert_eq!(advertised, 0xFFFF_FFF0);
                assert_eq!(cap, DEFAULT_MAX_FRAME_BYTES as u64);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        // EOF mid-prefix.
        let mut r = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Truncated { missing: 2 })
        ));
        // EOF mid-payload: 10 advertised, 3 delivered.
        let mut buf = 10u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        let mut r = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::Truncated { missing: 7 })
        ));
    }

    #[test]
    fn request_round_trips() {
        let mut req = Request::compile(42, "tenant-a", "qft_8");
        req.deadline_ms = Some(1500);
        req.priority = 2.5;
        req.config = ConfigPreset::Tuned;
        let decoded = decode_request(&encode_request(&req)).expect("decode");
        assert_eq!(decoded, req);
    }

    #[test]
    fn hostile_tenant_names_are_rejected() {
        for tenant in [
            "",
            "a b",
            "x\"y",
            "emoji-🦀",
            "ctrl\u{7}",
            &"a".repeat(MAX_TENANT_LEN + 1),
        ] {
            let json = format!(
                "{{\"id\":1,\"op\":\"compile\",\"benchmark\":\"qft_8\",\"tenant\":{}}}",
                paqoc_telemetry::json::escape(tenant)
            );
            assert!(
                matches!(
                    decode_request(json.as_bytes()),
                    Err(FrameError::BadRequest(_))
                ),
                "tenant {tenant:?} should be rejected"
            );
        }
    }

    #[test]
    fn compile_without_circuit_or_with_both_is_rejected() {
        for json in [
            "{\"id\":1,\"op\":\"compile\"}",
            "{\"id\":1,\"op\":\"compile\",\"benchmark\":\"qft_8\",\"qasm\":\"x\"}",
        ] {
            assert!(matches!(
                decode_request(json.as_bytes()),
                Err(FrameError::BadRequest(_))
            ));
        }
    }

    fn roundtrip(d: Degradation) {
        let v = degradation_to_value(&d);
        assert_eq!(
            degradation_from_value(&v).expect("decode"),
            d,
            "variant {} must round-trip",
            d.kind()
        );
    }

    #[test]
    fn degradation_merge_rolled_back_round_trips() {
        roundtrip(Degradation::MergeRolledBack {
            gates: 7,
            qubits: 3,
            reason: "convergence failure".to_string(),
        });
    }

    #[test]
    fn degradation_estimator_fallback_round_trips() {
        roundtrip(Degradation::EstimatorFallback {
            gates: 2,
            reason: "nan estimate".to_string(),
        });
    }

    #[test]
    fn degradation_deadline_hit_round_trips() {
        roundtrip(Degradation::DeadlineHit {
            phase: "attach".to_string(),
        });
    }

    #[test]
    fn degradation_cost_budget_exhausted_round_trips() {
        roundtrip(Degradation::CostBudgetExhausted {
            spent: 123.5,
            budget: 100.0,
        });
    }

    #[test]
    fn degradation_source_panic_round_trips() {
        roundtrip(Degradation::SourcePanic {
            gates: 4,
            message: "injected pulse-source panic".to_string(),
        });
    }

    #[test]
    fn degradation_store_unavailable_round_trips() {
        roundtrip(Degradation::StoreUnavailable {
            reason: "open failed: permission denied".to_string(),
        });
    }

    #[test]
    fn degradation_store_read_only_round_trips() {
        roundtrip(Degradation::StoreReadOnly {
            reason: "lock-held".to_string(),
        });
    }

    #[test]
    fn unknown_degradation_kind_decodes_to_none() {
        let v = parse("{\"kind\":\"quantum_weather\"}").expect("parse");
        assert!(degradation_from_value(&v).is_none());
    }

    #[test]
    fn degraded_compile_reply_round_trips_with_status() {
        let reply = CompileReply {
            benchmark: "qft_8".to_string(),
            latency_ns: 1234.5,
            latency_dt: 5552,
            esp: 0.87,
            partial: true,
            pulses_generated: 9,
            cache_hits: 4,
            store_hits: 2,
            cost_units: 77.25,
            degradations: vec![
                Degradation::StoreReadOnly {
                    reason: "lock-held".to_string(),
                },
                Degradation::CostBudgetExhausted {
                    spent: 80.0,
                    budget: 75.0,
                },
            ],
            queue_ms: 12,
            compile_ms: 340,
            budget: Some(Budget {
                deadline_ms: 1000,
                queue_ms: 12,
                remaining_ms: 988,
            }),
        };
        let resp = Response::Ok(reply.clone());
        assert_eq!(resp.status(), "degraded");
        let bytes = encode_response(42, &resp);
        let (id, decoded) = decode_response(&bytes).expect("decode");
        assert_eq!(id, 42);
        assert_eq!(decoded, Response::Ok(reply));
    }

    #[test]
    fn control_responses_round_trip() {
        for resp in [
            Response::Overloaded {
                scope: "tenant".to_string(),
                depth: 4,
                cap: 4,
            },
            Response::Draining,
            Response::Expired {
                queue_ms: 250,
                deadline_ms: 200,
            },
            Response::Error {
                kind: "bad_request".to_string(),
                message: "missing op".to_string(),
            },
            Response::Pong { draining: true },
            Response::Stats(ServerStats {
                accepted: 10,
                completed: 7,
                shed: 3,
                store: "writer".to_string(),
                ..ServerStats::default()
            }),
        ] {
            let bytes = encode_response(7, &resp);
            let (id, decoded) = decode_response(&bytes).expect("decode");
            assert_eq!(id, 7);
            assert_eq!(decoded, resp);
        }
    }
}
