//! # paqoc-serve
//!
//! A fault-tolerant **resident compilation service** wrapping the PAQOC
//! batch pipeline: a long-lived daemon (`paqoc-serve`) that amortizes
//! pulse-generation cost across programs and tenants through the shared
//! pulse table and persistent store, plus a client/load-generator
//! (`paqoc-load`). AccQOC's observation — pulse cost pays off when
//! amortized across programs via a shared pulse database — is the whole
//! point of keeping the compiler resident instead of one-shot.
//!
//! The robustness contract, built from the primitives PRs 2–8 added:
//!
//! * **Admission control** — per-tenant bounded queues with round-robin
//!   fair share ([`paqoc_exec::FairQueue`]); overload answers a typed
//!   `overloaded` response instead of buffering unboundedly.
//! * **Deadline propagation** — the client's `deadline_ms` becomes the
//!   request budget; time spent queued is charged against it, requests
//!   that expire in the queue are shed *before* compilation starts, and
//!   the remainder flows into `PipelineOptions::deadline` so the
//!   pipeline degrades to a partial result rather than overrun.
//! * **A strict frame parser** — length-prefixed JSON over TCP or a
//!   unix socket, with the advertised length validated against a hard
//!   cap **before** any allocation ([`protocol`]).
//! * **Typed degradation surfacing** — every concession the pipeline
//!   records ([`paqoc_core::Degradation`]) crosses the wire as a typed
//!   JSON object, so clients distinguish "degraded result" from
//!   "error".
//! * **Graceful drain** — SIGTERM (or a `drain` request) stops
//!   admission, answers or sheds everything already accepted, syncs the
//!   pulse table to the store, and exits 0; a restart warm-loads the
//!   store and serves previous pulses as hits.
//!
//! [`protocol`] defines the wire format, [`server`] the daemon, and
//! [`client`] the blocking client plus the QPS replay driver.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, Endpoint, LoadReport, ReplayOptions, RetryPolicy};
pub use protocol::{
    decode_request, decode_response, degradation_from_value, degradation_to_value, encode_request,
    encode_response, read_frame, write_frame, Budget, CompileReply, ConfigPreset, FrameError, Op,
    Request, Response, ServerStats, DEFAULT_MAX_FRAME_BYTES, MAX_TENANT_LEN,
};
pub use server::{BindAddr, DrainSummary, ServeOptions, Server};
